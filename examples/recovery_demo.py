#!/usr/bin/env python
"""Failure and recovery walk-through (the scenario behind Figure 8).

A single-partition MRP-Store with three replicas runs under constant load.
One replica is terminated; the others keep serving.  While it is down, the
survivors keep checkpointing and the acceptors trim their logs — so when the
replica comes back it cannot simply replay the whole history: it downloads the
most recent checkpoint from a peer and fetches only the missing instances
from the acceptors (Section 5.2).

Run with:  python examples/recovery_demo.py
"""

from __future__ import annotations

import random

from repro.core import AtomicMulticast, MultiRingConfig
from repro.core.client import OpenLoopClient
from repro.kvstore import MRPStoreService
from repro.kvstore.client import kv_request_factory
from repro.workloads import preload_keys, update_only_workload


def main() -> None:
    config = MultiRingConfig(
        batching_enabled=True,
        rate_interval=None,
        checkpoint_interval=3.0,
        trim_interval=6.0,
    )
    system = AtomicMulticast(seed=99, config=config)
    service = MRPStoreService(
        system, partition_groups=[0], acceptors_per_partition=3, replicas_per_partition=3,
        config=config,
    )
    service.preload(preload_keys(500))

    rng = random.Random(99)
    client = OpenLoopClient(
        system.env, "load",
        frontends_by_group=service.frontend_map(),
        request_factory=kv_request_factory(service.commands, update_only_workload(rng, key_count=500)),
        rate_per_second=2000.0,
        metric_prefix="load",
    )

    victim = service.replicas[0][-1]
    survivor = service.replicas[0][0]

    def status(label):
        positions = [r.delivered_position(0) for r in service.all_replicas()]
        checkpoints = [r.checkpointer.checkpoints_taken if r.checkpointer else 0
                       for r in service.all_replicas()]
        acceptor = system.env.actor("kv0-node0").node(0).acceptor
        print(f"t={system.env.now:6.1f}s  {label}")
        print(f"    delivered instance per replica: {positions}")
        print(f"    checkpoints taken per replica:  {checkpoints}")
        print(f"    acceptor log trimmed up to:     {acceptor.trimmed_up_to}")

    system.start()
    system.run(until=5.0)
    status("steady state")

    system.crash_process(victim.name)
    print(f"\n>>> terminating {victim.name}")
    system.run(until=20.0)
    status(f"{victim.name} has been down for 15 s (service kept running)")

    print(f"\n>>> restarting {victim.name}; it recovers from a peer checkpoint + acceptor logs")
    system.restart_process(victim.name)
    system.run(until=30.0)
    status("after recovery")

    print(f"\nrecovery phase of {victim.name}: {victim.recovery_phase.value}")
    print(f"store sizes: victim={len(victim.store)} survivor={len(survivor.store)}")
    print(f"client observed {client.completed} completed requests "
          f"(offered {client.issued}) — the failure was masked")


if __name__ == "__main__":
    main()
