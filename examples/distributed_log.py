#!/usr/bin/env python
"""dLog example: multiple logs, atomic multi-append, trim.

Builds a dLog deployment with two logs (one ring each), appends records from
concurrent clients — every third request is an atomic multi-append touching
both logs — and finally trims one log.  Prints per-log tail positions on every
replica to show that replicas agree.

Run with:  python examples/distributed_log.py
"""

from __future__ import annotations

from repro.core import AtomicMulticast, MultiRingConfig
from repro.dlog import DLogService
from repro.sim.disk import StorageMode


def main() -> None:
    config = MultiRingConfig(
        storage_mode=StorageMode.ASYNC_SSD,
        batching_enabled=True,
        rate_interval=0.005,
        max_rate=1000.0,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(seed=11, config=config)
    service = DLogService(
        system,
        log_ids=[0, 1],
        acceptors_per_log=3,
        replica_count=2,
        dedicated_disks=True,
        config=config,
    )

    writer_a = service.create_append_client("writer-a", concurrency=4, append_bytes=1024,
                                            multi_append_every=3)
    writer_b = service.create_append_client("writer-b", concurrency=4, append_bytes=1024)

    print("appending from two concurrent writers for 5 simulated seconds...")
    system.start()
    system.run(until=5.0)

    print(f"writer-a completed {writer_a.completed} requests, "
          f"writer-b completed {writer_b.completed} requests")
    for replica in service.replicas:
        tails = {log_id: replica.log_for(log_id).next_position for log_id in service.log_ids}
        print(f"  {replica.name}: log tails = {tails}")
    first, second = service.replicas
    assert all(
        first.log_for(l).next_position == second.log_for(l).next_position
        for l in service.log_ids
    ), "replicas must agree on every log's contents"

    # Trim log 0 up to half of its current tail through the ordering layer.
    trim_position = first.log_for(0).next_position // 2
    trim_command = service.commands.trim(0, trim_position)

    from repro.net.message import ClientRequest
    frontend = service.frontend_map()[0]
    system.env.actor(frontend).deliver("example", ClientRequest(command=trim_command))
    system.run(until=6.0)
    print(f"\nafter trim(log 0, {trim_position}):")
    for replica in service.replicas:
        log = replica.log_for(0)
        print(f"  {replica.name}: trimmed_up_to={log.trimmed_up_to}, "
              f"segments={len(log.segments)}, cached={log.cached_entries}")


if __name__ == "__main__":
    main()
