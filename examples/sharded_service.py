#!/usr/bin/env python
"""Quickstart: read merged MRP-Store state while shards run on real cores.

The paper's service deployments couple independent rings through a *shared
learner*: every replica subscribes to all rings and serves clients from the
merged, deterministically interleaved state.  Sharded execution runs each
ring in its own worker process — so who answers clients?

This example shows the **reactive merge stage** doing exactly that:

* two MRP-Store partitions (ring 0 and ring 1), each with its own acceptors
  and a closed-loop client inserting keys, run as two shards under
  ``run_sharded(workers=N)``;
* at every barrier each shard ships the decision-stream segments its ring
  decided since the last barrier (skips included, with a watermark);
* a **real** :class:`~repro.kvstore.replica.MRPStoreReplica` hosted in the
  parent process — driven by :class:`~repro.core.smr.ReactiveReplicaHost` —
  applies the merged round-robin deliveries barrier by barrier, so this
  script can read merged cross-partition state *while the shards run*,
  with client-visible freshness accounting.

The reactively applied order is bit-identical to the offline
``replay_streams`` of the same streams and to any other worker count.

Run from the repository root with:

    PYTHONPATH=src python examples/sharded_service.py --workers 2

(`tests/examples/test_sharded_service.py` runs exactly that command and
asserts this script's output, so the quickstart stays green.)
"""

from __future__ import annotations

import argparse
import os
import sys

# Make the example work from a plain checkout (no install, no PYTHONPATH):
# the package lives in <repo>/src.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import AtomicMulticast, MultiRingConfig, ReactiveReplicaHost
from repro.core.client import Command
from repro.kvstore.replica import MRPStoreReplica
from repro.multiring import RingSegmentBuffer, replay_streams
from repro.sim import Environment, ShardSpec, run_sharded
from repro.sim.topology import single_datacenter
from repro.bench.runner import MeasurementWindow, ShardedMeasurement

PARTITIONS = 2
INSERTS_PER_PARTITION = 30
HORIZON = 1.0
SEGMENT_INTERVAL = 0.1
SEED = 42


def _config() -> MultiRingConfig:
    # Rate leveling keeps one partition's ring from stalling the other's turn
    # in the shared learner's round-robin while it has nothing to order.
    return MultiRingConfig(
        rate_interval=0.005,
        max_rate=1000.0,
        checkpoint_interval=None,
        trim_interval=None,
    )


def build_partition_shard(group: int) -> ShardedMeasurement:
    """One shard: a complete MRP-Store partition ring plus its client.

    Runs inside the worker process.  The shard's in-ring replica stands in
    for the shared learner's per-ring half; ``stream_segments`` ships the
    ring's ordered decision stream to the parent at every barrier.
    """
    from repro.core.client import ClosedLoopClient
    from repro.kvstore.client import MRPStoreCommands, kv_request_factory
    from repro.kvstore.partitioning import HashPartitioner
    from repro.kvstore.service import MRPStoreService

    config = _config()
    system = AtomicMulticast(
        topology=single_datacenter(), config=config, seed=SEED
    )
    service = MRPStoreService(
        system,
        partition_groups=[group],
        acceptors_per_partition=2,
        replicas_per_partition=1,
        config=config,
    )

    commands = MRPStoreCommands(HashPartitioner([group]))

    def workload(sequence: int):
        return ("insert", f"p{group}-k{sequence:03d}", 64, None)

    ClosedLoopClient(
        system.env,
        f"writer{group}",
        frontends_by_group=service.frontend_map(),
        request_factory=kv_request_factory(commands, workload),
        concurrency=2,
        max_requests=INSERTS_PER_PARTITION,
        metric_prefix=f"partition{group}",
    )

    harness = ShardedMeasurement(
        system, MeasurementWindow(warmup=0.1, duration=HORIZON - 0.1)
    )
    buffer = RingSegmentBuffer()
    for replica in service.all_replicas():
        replica.record_ring_segments(into=buffer)
    harness.stream_segments(buffer)
    return harness


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the two partition shards")
    args = parser.parse_args()

    # The parent-hosted shared learner: one REAL MRP-Store replica merging
    # both partition rings, fed at every barrier.
    config = _config()
    parent_env = Environment()
    merged_replica = MRPStoreReplica(
        parent_env, "merged-replica", config=config, respond_to_clients=False
    )
    host = ReactiveReplicaHost(
        merged_replica, group_ids=list(range(PARTITIONS)),
        messages_per_round=config.messages_per_round,
    )

    streams = {}  # parent-side accumulation, for the offline-replay anchor
    progress = []

    def sink(segments_by_shard):
        watermark = None
        barrier_segments = {}
        for shard_id in sorted(segments_by_shard):
            shard_watermark, rings = segments_by_shard[shard_id]
            watermark = shard_watermark if watermark is None else min(watermark, shard_watermark)
            for ring, segment in rings.items():
                # One shard per ring: each incarnation-tagged RingSegment
                # arrives exactly once.  No crashes here, so the whole-run
                # stream is just the concatenated entries.
                barrier_segments[ring] = segment
                streams.setdefault(ring, []).extend(segment.entries)
        host.ingest(barrier_segments, watermark=watermark,
                    covered=sorted(barrier_segments))
        # Merged state is live: a client could be answered right here.
        progress.append((host.watermark, host.commands_applied,
                         merged_replica.entry_count()))

    specs = [
        ShardSpec(group, build_partition_shard, group)
        for group in range(PARTITIONS)
    ]
    run = run_sharded(
        specs,
        workers=args.workers,
        until=HORIZON,
        segment_interval=SEGMENT_INTERVAL,
        segment_sink=sink,
    )

    print(f"sharded run: {run.workers} worker(s), {run.barrier_count} barriers, "
          f"{run.total_events} simulated events")
    for watermark, applied, entries in progress[:4]:
        print(f"  barrier t={watermark:.2f}: {applied} commands applied, "
              f"{entries} keys readable from merged state")

    # Client reads against the merged cross-partition state.
    for group in range(PARTITIONS):
        key = f"p{group}-k000"
        answer = merged_replica.apply_command(
            group, Command(op="read", args=(key,), group_id=group, size_bytes=32)
        )
        print(f"read {key!r} from merged state: found={answer['found']}")

    per_partition = [
        sum(1 for g, _, _ in host.deliveries if g == group)
        for group in range(PARTITIONS)
    ]
    print(f"merged deliveries per partition: {per_partition}")
    stats = host.latency_stats()
    print(f"merge freshness: mean {stats['mean_ms']:.1f} ms, "
          f"p95 {stats['p95_ms']:.1f} ms over {int(stats['count'])} commands")

    # The streaming merge is anchored to the offline replay: bit-identical.
    offline = replay_streams(streams, messages_per_round=config.messages_per_round)
    reactive_matches_offline = host.deliveries == offline
    both_partitions_present = all(count > 0 for count in per_partition)
    print(f"reactive merge matches offline replay: {reactive_matches_offline}")
    print(f"merged state spans both partitions: {both_partitions_present}")
    if not (reactive_matches_offline and both_partitions_present):
        return 1
    print("shared-learner service answered from live merged state — quickstart OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
