#!/usr/bin/env python
"""A geo-replicated MRP-Store deployment across EC2-like regions.

Reproduces the shape of the paper's horizontal-scalability scenario
(Section 8.4.2) at example scale: one partition per region, a global ring
subscribed by every replica, and per-region clients updating only their local
partition.  Prints per-region throughput and latency.

Run with:  python examples/geo_kvstore.py
"""

from __future__ import annotations

import random

from repro.core import AtomicMulticast, global_config
from repro.core.client import ClosedLoopClient
from repro.kvstore import HashPartitioner, MRPStoreService
from repro.kvstore.client import MRPStoreCommands, kv_request_factory
from repro.sim.topology import ec2_global
from repro.workloads import preload_keys, update_only_workload

REGIONS = ["us-west-2", "us-west-1", "us-east-1"]
GLOBAL_RING = 50


def main() -> None:
    config = global_config().with_(
        batching_enabled=True, checkpoint_interval=None, trim_interval=None
    )
    system = AtomicMulticast(topology=ec2_global(REGIONS), config=config, seed=7)

    service = MRPStoreService(
        system,
        partition_groups=list(range(len(REGIONS))),
        acceptors_per_partition=3,
        replicas_per_partition=1,
        site_for_partition={g: REGIONS[g] for g in range(len(REGIONS))},
        global_ring_id=GLOBAL_RING,
        config=config,
    )
    service.preload(preload_keys(1000))

    clients = []
    for group, region in enumerate(REGIONS):
        rng = random.Random(group)
        workload = update_only_workload(rng, key_count=1000, key_prefix=f"r{group}-key")
        commands = MRPStoreCommands(HashPartitioner([group]))
        clients.append(ClosedLoopClient(
            system.env,
            f"client-{region}",
            frontends_by_group=service.frontend_map(preferred_site=region),
            request_factory=kv_request_factory(commands, workload),
            concurrency=8,
            site=region,
            metric_prefix=f"client-{region}",
        ))

    print(f"running a {len(REGIONS)}-region deployment for 10 simulated seconds...")
    system.start()
    system.run(until=2.0)           # warm-up
    system.env.metrics.reset_all()
    start = system.env.now
    system.run(until=start + 8.0)   # measurement
    end = system.env.now

    total = 0.0
    print(f"{'region':>12}  {'ops/s':>10}  {'mean latency (ms)':>18}")
    for region in REGIONS:
        throughput = system.env.metrics.throughput(f"client-{region}.throughput").rate(start, end)
        latency = system.env.metrics.latency(f"client-{region}.latency").mean_ms()
        total += throughput
        print(f"{region:>12}  {throughput:>10.0f}  {latency:>18.1f}")
    print(f"{'aggregate':>12}  {total:>10.0f}")
    print("\nadding a region adds its own throughput; local latency stays flat —")
    print("this is the paper's horizontal-scalability argument (Figure 7).")


if __name__ == "__main__":
    main()
