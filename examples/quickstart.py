#!/usr/bin/env python
"""Quickstart: atomic multicast with Multi-Ring Paxos in a few lines.

Builds two multicast groups (rings) over four processes, multicasts a handful
of messages and shows that

* every subscriber of a group delivers every message of that group;
* processes subscribed to both groups deliver them in exactly the same order
  (the paper's "order" property), thanks to the deterministic merge.

Run from the repository root with:

    PYTHONPATH=src python examples/quickstart.py

(`tests/examples/test_quickstart.py` runs exactly that command and asserts
this script's output, so the README quickstart stays green.)
"""

from __future__ import annotations

import os
import sys

# Make the example work from a plain checkout (no install, no PYTHONPATH):
# the package lives in <repo>/src.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import AtomicMulticast, MultiRingConfig
from repro.multiring import MultiRingProcess
from repro.paxos.messages import ProposalValue


class PrintingLearner(MultiRingProcess):
    """A process that remembers everything it delivers."""

    def __init__(self, env, name):
        super().__init__(env, name)
        self.delivered = []

    def on_deliver(self, group_id: int, instance: int, value: ProposalValue) -> None:
        self.delivered.append((group_id, value.payload))


def main() -> dict:
    # Rate leveling keeps a lightly loaded ring from stalling the other one.
    config = MultiRingConfig(rate_interval=0.005, max_rate=1000.0,
                             checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(seed=42, config=config)

    # Four processes: two subscribe to both groups, one to each single group.
    both = [PrintingLearner(system.env, f"both{i}") for i in range(2)]
    only_a = PrintingLearner(system.env, "only-a")
    only_b = PrintingLearner(system.env, "only-b")

    # Group 0 ("a") and group 1 ("b"), each one ring.
    system.create_ring(0, [(p.name, "pal") for p in both] + [(only_a.name, "l")])
    system.create_ring(1, [(p.name, "pal") for p in both] + [(only_b.name, "l")])
    system.start()

    # Multicast interleaved messages to the two groups.
    for i in range(5):
        both[0].multicast(0, payload=f"a{i}", size_bytes=128)
        both[1].multicast(1, payload=f"b{i}", size_bytes=128)

    system.run(until=2.0)

    print("deliveries at a process subscribed to BOTH groups:")
    print("  ", both[0].delivered)
    print("deliveries at the process subscribed to group 0 only:")
    print("  ", only_a.delivered)
    print("deliveries at the process subscribed to group 1 only:")
    print("  ", only_b.delivered)

    assert both[0].delivered == both[1].delivered, "subscribers of the same groups must agree"
    assert [p for _, p in only_a.delivered] == [f"a{i}" for i in range(5)]
    assert [p for _, p in only_b.delivered] == [f"b{i}" for i in range(5)]
    print("\natomic multicast properties hold: agreement, validity, acyclic order")
    return {p.name: p.delivered for p in (*both, only_a, only_b)}


if __name__ == "__main__":
    main()
