"""Invariant oracle: the paper's atomic multicast properties as checks.

Section 2 defines atomic multicast by integrity, validity, uniform agreement
and acyclic order.  :func:`check_delivery_properties` evaluates all four over
the delivery traces a :class:`~repro.chaos.trace.TraceRecorder` captured,
generalising ``tests/integration/test_atomic_multicast_properties.py`` into
reusable library code the chaos runner (and any future test) can call:

* **integrity** — within one incarnation a learner delivers a message at most
  once, only if it was actually multicast, only in the group it was multicast
  to, and only if the learner subscribes to that group;
* **uniform agreement** — if *any* learner delivered m (even one that crashed
  afterwards), every correct subscriber of m's group delivers m;
* **validity** — a message multicast by a correct process is eventually
  delivered by every correct subscriber of its group;
* **acyclic order** — the union of all per-learner delivery orders (each
  incarnation contributes its total order) contains no cycle.  This subsumes
  the pairwise formulation: two learners disagreeing on the relative order of
  two messages form a 2-cycle.

"Correct" follows the classic definition: a process that never crashed during
the run.  A crashed-and-recovered learner still contributes to integrity and
acyclicity (per incarnation) and its deliveries still *trigger* uniform
agreement obligations for the correct learners.

Service-level checks (:func:`check_store_convergence`,
:func:`check_log_convergence`) verify that replicas of one partition end the
run in identical states — the observable consequence of ordered delivery at
the MRP-Store / dLog layer.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from .trace import TraceRecorder

__all__ = [
    "Violation",
    "check_delivery_properties",
    "check_store_convergence",
    "check_log_convergence",
]


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by the oracle."""

    prop: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.prop}] {self.detail}"


def _integrity(recorder: TraceRecorder, violations: List[Violation]) -> None:
    sent = recorder.sent
    for name, trace in recorder.traces.items():
        for incarnation, records in trace.sequences().items():
            seen: Set[Hashable] = set()
            for record in records:
                payload = record.payload
                if payload in seen:
                    violations.append(Violation(
                        "integrity",
                        f"{name} (incarnation {incarnation}) delivered {payload!r} twice",
                    ))
                seen.add(payload)
                origin = sent.get(payload)
                if origin is None:
                    violations.append(Violation(
                        "integrity",
                        f"{name} delivered {payload!r} which was never multicast",
                    ))
                    continue
                if origin.group != record.group:
                    violations.append(Violation(
                        "integrity",
                        f"{name} delivered {payload!r} in group {record.group}, "
                        f"but it was multicast to group {origin.group}",
                    ))
                if record.group not in trace.groups:
                    violations.append(Violation(
                        "integrity",
                        f"{name} delivered {payload!r} from group {record.group} "
                        f"it does not subscribe to",
                    ))


def _agreement_and_validity(
    recorder: TraceRecorder,
    violations: List[Violation],
    check_validity: bool,
) -> None:
    correct = recorder.never_crashed()
    delivered_by: Dict[str, Set[Hashable]] = {
        name: trace.payloads() for name, trace in recorder.traces.items()
    }
    anywhere = recorder.delivered_anywhere()
    for payload, origin in recorder.sent.items():
        group = origin.group
        delivered_somewhere = payload in anywhere
        if check_validity and not delivered_somewhere:
            # Nobody delivered it at all: validity is violated for every
            # correct subscriber at once; report it as one finding.
            subscribers = [
                name for name in correct if group in recorder.traces[name].groups
            ]
            if subscribers:
                violations.append(Violation(
                    "validity",
                    f"{payload!r} (multicast to group {group} by {origin.sender}, "
                    f"retries={origin.retries}) was never delivered by any learner",
                ))
            continue
        if not delivered_somewhere:
            continue
        for name in correct:
            trace = recorder.traces[name]
            if group not in trace.groups:
                continue
            if payload not in delivered_by[name]:
                violations.append(Violation(
                    "agreement",
                    f"{payload!r} (group {group}) was delivered by some learner "
                    f"but not by correct subscriber {name}",
                ))


def _acyclic_order(recorder: TraceRecorder, violations: List[Violation]) -> None:
    # Union precedence graph: each incarnation's delivery sequence contributes
    # edges between consecutive deliveries; a topological sort certifies the
    # "delivered before" relation acyclic (2-cycles are exactly pairwise
    # relative-order disagreements).
    edges: Dict[Hashable, Set[Hashable]] = defaultdict(set)
    indegree: Dict[Hashable, int] = defaultdict(int)
    nodes: Set[Hashable] = set()
    for trace in recorder.traces.values():
        for records in trace.sequences().values():
            previous = None
            for record in records:
                payload = record.payload
                nodes.add(payload)
                if previous is not None and previous != payload:
                    if payload not in edges[previous]:
                        edges[previous].add(payload)
                        indegree[payload] += 1
                previous = payload
    queue = [node for node in nodes if indegree[node] == 0]
    visited = 0
    while queue:
        node = queue.pop()
        visited += 1
        for succ in edges[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if visited != len(nodes):
        cyclic = sorted(
            (repr(node) for node in nodes if indegree[node] > 0), key=str
        )[:8]
        violations.append(Violation(
            "acyclic-order",
            "the cross-learner 'delivered before' relation has a cycle "
            f"involving {', '.join(cyclic)}",
        ))


def check_delivery_properties(
    recorder: TraceRecorder,
    check_validity: bool = True,
) -> List[Violation]:
    """Evaluate the four atomic multicast properties over recorded traces.

    Parameters
    ----------
    recorder:
        The trace recorder attached to every learner of the deployment, with
        its sent-message registry filled by the workload.
    check_validity:
        Validity ("every sent message is eventually delivered") only holds if
        the run quiesced with all faults healed and lost client submissions
        retried; runners that cannot guarantee that disable the check and
        still get integrity, agreement and acyclicity.
    """
    violations: List[Violation] = []
    _integrity(recorder, violations)
    _agreement_and_validity(recorder, violations, check_validity)
    _acyclic_order(recorder, violations)
    return violations


# --------------------------------------------------------------------------
# Service-level invariants
# --------------------------------------------------------------------------

def check_store_convergence(replicas_by_group: Dict[int, Sequence]) -> List[Violation]:
    """MRP-Store: replicas of one partition must hold identical databases."""
    violations: List[Violation] = []
    for group, replicas in replicas_by_group.items():
        if len(replicas) < 2:
            continue
        reference = replicas[0]
        ref_snapshot = reference.store.snapshot()
        for other in replicas[1:]:
            snapshot = other.store.snapshot()
            if snapshot != ref_snapshot:
                only_ref = set(ref_snapshot) - set(snapshot)
                only_other = set(snapshot) - set(ref_snapshot)
                differing = [
                    k for k in set(ref_snapshot) & set(snapshot)
                    if ref_snapshot[k] != snapshot[k]
                ]
                violations.append(Violation(
                    "store-convergence",
                    f"partition {group}: {reference.name} and {other.name} diverge "
                    f"(only in {reference.name}: {sorted(only_ref)[:5]}, "
                    f"only in {other.name}: {sorted(only_other)[:5]}, "
                    f"differing values: {sorted(differing)[:5]})",
                ))
    return violations


def check_log_convergence(replicas: Sequence, log_ids: Iterable[int]) -> List[Violation]:
    """dLog: per-stream prefixes must be gapless and identical across replicas.

    Each replica's cached entries for a log must cover positions
    ``0..next_position-1`` with no holes (gapless prefix), and all replicas
    hosting the log must agree on its length and on the per-position record
    sizes.
    """
    violations: List[Violation] = []
    for log_id in log_ids:
        lengths: Dict[str, int] = {}
        contents: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        for replica in replicas:
            log = replica.logs.get(log_id)
            if log is None:
                lengths[replica.name] = 0
                contents[replica.name] = ()
                continue
            entries = sorted(
                (entry.position, entry.size_bytes)
                for entry in log.snapshot()["cache"].values()
            )
            positions = [position for position, _ in entries]
            expected = list(range(log.trimmed_up_to + 1, log.next_position))
            if positions != expected:
                missing = sorted(set(expected) - set(positions))[:8]
                violations.append(Violation(
                    "dlog-gapless",
                    f"log {log_id} at {replica.name}: cached positions have gaps "
                    f"(missing {missing})",
                ))
            lengths[replica.name] = log.next_position
            contents[replica.name] = tuple(entries)
        if len(set(lengths.values())) > 1:
            violations.append(Violation(
                "dlog-agreement",
                f"log {log_id}: replicas disagree on length: {lengths}",
            ))
        elif len(set(contents.values())) > 1:
            violations.append(Violation(
                "dlog-agreement",
                f"log {log_id}: replicas agree on length but not contents",
            ))
    return violations
