"""Deterministic chaos harness for Multi-Ring Paxos deployments.

The chaos subsystem turns the simulator into a property-based
fault-injection harness:

* :mod:`repro.chaos.schedule` — a declarative fault-schedule DSL: a timeline
  of crash/restart, partition/heal, site isolation, disk-latency-spike and
  ring-reconfiguration events executed on the simulation clock;
* :mod:`repro.chaos.trace` — a delivery-trace recorder capturing every
  learner's application delivery stream (per crash/restart incarnation);
* :mod:`repro.chaos.oracle` — the invariant oracle checking the paper's
  atomic multicast properties (integrity, validity, uniform agreement,
  acyclic cross-group order) plus service-level invariants;
* :mod:`repro.chaos.scenario` — a seeded random scenario generator and
  runner: a single integer seed derives topology, deployment, workload and
  fault schedule, and a violation dumps a minimal repro artifact.

Replay a failing scenario from its printed seed with::

    PYTHONPATH=src python -m repro.chaos --seed <SEED>
"""

from .schedule import FaultEvent, FaultSchedule
from .trace import TraceRecorder
from .oracle import (
    Violation,
    check_delivery_properties,
    check_log_convergence,
    check_store_convergence,
)
from .scenario import ScenarioResult, generate_spec, run_scenario

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "TraceRecorder",
    "Violation",
    "check_delivery_properties",
    "check_store_convergence",
    "check_log_convergence",
    "ScenarioResult",
    "generate_spec",
    "run_scenario",
]
