"""Delivery-trace recording for the invariant oracle.

The oracle reasons about *what each learner delivered, in what order* —
:class:`TraceRecorder` captures exactly that.  It attaches to any
:class:`~repro.multiring.process.MultiRingProcess` (including service
replicas) by wrapping its ``on_deliver`` hook, and tracks crash/restart
*incarnations*: a process that crashes and recovers legitimately re-delivers
messages below its recovery point, so per-learner uniqueness and ordering are
judged within one incarnation, never across the crash boundary.

Message identity is the delivered payload (scenario workloads use globally
unique payloads), so traces compose directly with the sent-message registry:
``record_sent`` declares every multicast the workload performed, and the
oracle cross-checks deliveries against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set

__all__ = ["DeliveryRecord", "SentRecord", "ProcessTrace", "TraceRecorder"]


@dataclass(frozen=True)
class DeliveryRecord:
    """One application delivery observed at a learner."""

    time: float
    incarnation: int
    group: int
    instance: int
    payload: Hashable


@dataclass
class SentRecord:
    """One message the workload multicast (possibly retried by the runner)."""

    payload: Hashable
    sender: str
    group: int
    time: float
    retries: int = 0


class ProcessTrace:
    """Everything one process delivered, split by incarnation."""

    def __init__(self, name: str, groups: Set[int]) -> None:
        self.name = name
        #: groups the process subscribes to (its learner subscriptions)
        self.groups = set(groups)
        self.records: List[DeliveryRecord] = []
        self.incarnation = 0

    def sequences(self) -> Dict[int, List[DeliveryRecord]]:
        """Delivery records grouped by incarnation, in delivery order."""
        out: Dict[int, List[DeliveryRecord]] = {}
        for record in self.records:
            out.setdefault(record.incarnation, []).append(record)
        return out

    def payloads(self) -> Set[Hashable]:
        """Every payload this process delivered (any incarnation)."""
        return {record.payload for record in self.records}

    def tail(self, count: int = 50) -> List[DeliveryRecord]:
        """The last ``count`` records (for repro artifacts)."""
        return self.records[-count:]


class TraceRecorder:
    """Attaches to learner processes and records their delivery streams."""

    def __init__(self) -> None:
        self.traces: Dict[str, ProcessTrace] = {}
        self.sent: Dict[Hashable, SentRecord] = {}
        #: processes that crashed at least once during the run
        self.crashed_ever: Set[str] = set()

    # ------------------------------------------------------------ attachment
    def attach(self, process) -> ProcessTrace:
        """Start recording ``process``'s deliveries (and restarts).

        The process's ``on_deliver`` / ``on_restart`` hooks are wrapped via
        instance attributes, so subclass behaviour (service replicas applying
        commands) is preserved.
        """
        trace = ProcessTrace(process.name, set(process.subscribed_groups()))
        self.traces[process.name] = trace

        original_deliver = process.on_deliver
        original_crash = process.on_crash
        original_restart = process.on_restart

        def recording_deliver(group_id: int, instance: int, value) -> None:
            trace.records.append(
                DeliveryRecord(
                    time=process.now,
                    incarnation=trace.incarnation,
                    group=group_id,
                    instance=instance,
                    payload=value.payload,
                )
            )
            original_deliver(group_id, instance, value)

        def recording_crash() -> None:
            self.crashed_ever.add(process.name)
            original_crash()

        def recording_restart() -> None:
            trace.incarnation += 1
            original_restart()

        process.on_deliver = recording_deliver
        process.on_crash = recording_crash
        process.on_restart = recording_restart
        return trace

    # -------------------------------------------------------------- sending
    def record_sent(self, payload: Hashable, sender: str, group: int, time: float) -> None:
        """Declare a workload multicast (first send, not a retry)."""
        if payload in self.sent:
            raise ValueError(f"payload sent twice: {payload!r}")
        self.sent[payload] = SentRecord(payload=payload, sender=sender, group=group, time=time)

    def record_retry(self, payload: Hashable) -> None:
        """Declare that the runner re-multicast an undelivered message."""
        self.sent[payload].retries += 1

    # ------------------------------------------------------------ inspection
    def delivered_anywhere(self) -> Set[Hashable]:
        """Payloads delivered by at least one learner (any incarnation)."""
        out: Set[Hashable] = set()
        for trace in self.traces.values():
            out |= trace.payloads()
        return out

    def undelivered(self) -> List[SentRecord]:
        """Sent messages no learner has delivered yet."""
        delivered = self.delivered_anywhere()
        return [record for record in self.sent.values() if record.payload not in delivered]

    def never_crashed(self) -> Set[str]:
        """Traced processes that never crashed during the run."""
        return {name for name in self.traces if name not in self.crashed_ever}

    def subscriptions(self) -> Dict[str, Set[int]]:
        """Map of traced process name to its subscribed groups."""
        return {name: set(trace.groups) for name, trace in self.traces.items()}

    def delivery_counts(self) -> Dict[str, int]:
        """Per-process total delivery counts (all incarnations)."""
        return {name: len(trace.records) for name, trace in self.traces.items()}
