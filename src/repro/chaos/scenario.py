"""Seeded random chaos scenarios: generator, runner and repro artifacts.

A single integer seed deterministically derives an entire scenario — the
topology, the deployment (plain atomic multicast, MRP-Store or dLog), the
workload and the fault schedule — so any failure reproduces exactly from its
seed.  The runner executes the scenario in three phases:

1. **active phase** — the workload and the fault schedule run concurrently on
   the simulation clock;
2. **healing epilogue** — every partition is healed, every crashed process
   restarted, every disk spike cleared, and the system quiesces; workload
   messages that no learner delivered (lost in a crashed coordinator's queue
   or on a cut link) are re-submitted once, the way real clients retry on
   timeout;
3. **verdict** — the invariant oracle checks the recorded delivery traces
   (and service state) and the runner dumps a repro artifact if anything is
   violated.

Replay a failing scenario::

    PYTHONPATH=src python -m repro.chaos --seed <SEED>
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.amcast import AtomicMulticast
from ..core.client import Command
from ..core.config import MultiRingConfig
from ..core.packing import iter_payloads
from ..multiring.merge import (
    MergeCursor,
    MergeDivergenceError,
    RingSegment,
    effective_streams,
    replay_streams,
)
from ..multiring.process import MultiRingProcess
from ..multiring.sharding import ring_components
from ..net.message import ClientRequest, ClientResponse
from ..sim.actor import Actor, Environment
from ..sim.disk import StorageMode
from ..sim.parallel import ShardHarness, ShardSpec, run_sharded
from ..sim.topology import Topology, single_datacenter
from .oracle import (
    Violation,
    check_delivery_properties,
    check_log_convergence,
    check_store_convergence,
)
from .schedule import FaultSchedule
from .trace import TraceRecorder

__all__ = [
    "ScenarioResult",
    "generate_spec",
    "run_scenario",
    "shardable_components",
    "shared_merge_learners",
    "main",
]

#: Phase lengths shared by every family (simulated seconds).
SETTLE = 0.3
QUIESCE_HEAL = 1.2
QUIESCE_FINAL = 2.0

#: Fault knobs the generator draws from.
_CRASH_DURATION = (0.2, 0.8)
_PARTITION_DURATION = (0.1, 0.6)
_SPIKE_FACTOR = (4.0, 20.0)
_SPIKE_DURATION = (0.1, 0.5)


@dataclass
class ScenarioResult:
    """Outcome of one chaos scenario."""

    seed: int
    family: str
    violations: List[Violation]
    stats: Dict[str, Any] = field(default_factory=dict)
    artifact_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return not self.violations


# --------------------------------------------------------------------------
# Spec generation
# --------------------------------------------------------------------------

def generate_spec(seed: int) -> Dict[str, Any]:
    """Derive a scenario specification (plain data) from ``seed``."""
    rng = random.Random(seed ^ 0xC1A05)
    family = rng.choices(["amcast", "kvstore", "dlog"], weights=[3, 1, 1])[0]
    if family == "amcast":
        spec = _generate_amcast_spec(rng, seed)
    elif family == "kvstore":
        spec = _generate_kvstore_spec(rng, seed)
    else:
        spec = _generate_dlog_spec(rng, seed)
    spec["seed"] = seed
    spec["family"] = family
    return spec


def _pick_storage(rng: random.Random) -> str:
    return rng.choices(
        [StorageMode.IN_MEMORY.value, StorageMode.ASYNC_SSD.value, StorageMode.SYNC_SSD.value],
        weights=[6, 3, 1],
    )[0]


def _generate_amcast_spec(rng: random.Random, seed: int) -> Dict[str, Any]:
    site_count = rng.choice([1, 2, 2, 3])
    sites = [f"s{i}" for i in range(site_count)]
    ring_count = rng.choice([1, 2, 2, 3])
    # A quarter of the multi-ring scenarios use process-disjoint rings — the
    # paper's independent-rings shape with zero cross-ring traffic, which is
    # also what opts a scenario into sharded execution (--workers).
    disjoint = ring_count > 1 and rng.random() < 0.25
    if disjoint:
        process_count = 3 * ring_count + rng.randint(0, 2)
    else:
        process_count = rng.randint(4, 6)
    processes = {f"p{i}": rng.choice(sites) for i in range(process_count)}
    names = sorted(processes)

    rings: Dict[int, List[List[str]]] = {}
    shared_learner: Optional[str] = None
    if disjoint:
        pool = names[:]
        rng.shuffle(pool)
        share = len(pool) // ring_count
        for ring_id in range(ring_count):
            start = ring_id * share
            stop = start + share if ring_id < ring_count - 1 else len(pool)
            rings[ring_id] = [[name, "pal"] for name in sorted(pool[start:stop])]
        # Half of the disjoint draws add one shared learner-only subscriber
        # across every ring — the paper's Figure 6/7 shape (rings coupled by
        # a learner, not by traffic), which sharded execution handles with a
        # merge stage.  Drawn from a seed-derived secondary stream so the
        # other scenario families and the non-shared draws stay byte-for-byte
        # what they were before this shape existed.
        shared_rng = random.Random(seed ^ 0x57A6ED)
        if shared_rng.random() < 0.5:
            shared_learner = f"p{process_count}"
            processes[shared_learner] = shared_rng.choice(sites)
            for ring_id in rings:
                rings[ring_id].append([shared_learner, "l"])
    else:
        for ring_id in range(ring_count):
            core = rng.sample(names, k=min(len(names), rng.randint(3, 4)))
            members = [[name, "pal"] for name in core]
            for name in names:
                if name not in core and rng.random() < 0.3:
                    members.append([name, "l"])  # learner-only subscriber
            rings[ring_id] = members

    horizon = rng.uniform(1.2, 2.2)
    message_count = rng.randint(20, 60)
    messages = []
    for i in range(message_count):
        ring_id = rng.randrange(ring_count)
        proposers = [m[0] for m in rings[ring_id] if "p" in m[1]]
        messages.append({
            "at": round(rng.uniform(0.05, horizon), 6),
            "sender": rng.choice(proposers),
            "group": ring_id,
            "payload": f"g{ring_id}-m{i}",
            "size": rng.choice([64, 128, 512]),
        })

    schedule = _generate_faults(
        rng,
        horizon,
        crash_victims=names,
        sites=sites,
        allow_reconfig=True,
        rings=rings,
    )
    spec = {
        "sites": sites,
        "processes": processes,
        "rings": rings,
        "messages_per_round": rng.choice([1, 1, 2]),
        "storage_mode": _pick_storage(rng),
        "batching": rng.random() < 0.2,
        "horizon": horizon,
        "messages": messages,
        "schedule": schedule.to_dicts(),
    }
    if spec["batching"]:
        # Size-or-timeout assembly delay for the batched draws, from the
        # dedicated batching stream (see :func:`_draw_batching`).
        spec["batch_max_delay"] = round(
            random.Random(seed ^ 0xBA7C4).uniform(0.0002, 0.002), 6
        )
    # Fault families aimed at the fault-tolerant reactive merge, drawn from a
    # third seed-derived stream so every pre-existing draw — main and shared —
    # stays byte-for-byte identical.  They deliberately target the
    # shared-learner deployments: mid-run crash/restart of the shared learner
    # itself (its re-emitted stream prefixes exercise the incarnation dedup),
    # gray failures (the learner's disks turn slow-but-alive), and WAN
    # topologies with asymmetric link latency.
    fault_rng = random.Random(seed ^ 0xFA17B)
    if disjoint and len(sites) >= 2 and fault_rng.random() < 0.4:
        spec["wan_asymmetric"] = True
    if shared_learner is not None:
        reconfigured = {
            event["params"].get("process")
            for event in spec["schedule"]
            if event["action"] in ("remove_from_ring", "add_to_ring")
        }
        draw = fault_rng.random()
        if draw < 0.35 and shared_learner not in reconfigured:
            # Crash the shared learner mid-run.  Learner-only, so no quorum
            # is at risk even when the window overlaps another crash; restart
            # well before the horizon so gap repair can re-emit the prefix.
            start = round(fault_rng.uniform(0.2, horizon * 0.6), 6)
            duration = round(fault_rng.uniform(0.15, 0.35), 6)
            schedule.crash(start, shared_learner)
            schedule.restart(start + duration, shared_learner)
            spec["schedule"] = schedule.to_dicts()
        elif draw < 0.60:
            # Gray failure: the shared learner stays alive but its storage
            # crawls.  The trailing "." keeps p1 from matching p1x's disks.
            start = round(fault_rng.uniform(0.1, horizon * 0.7), 6)
            duration = round(fault_rng.uniform(0.2, 0.5), 6)
            schedule.disk_spike(
                start,
                factor=round(fault_rng.uniform(5.0, 40.0), 3),
                match=f"{shared_learner}.",
            )
            schedule.disk_restore(start + duration, match=f"{shared_learner}.")
            spec["schedule"] = schedule.to_dicts()
    return spec


def _draw_batching(spec: Dict[str, Any], seed: int, probability: float = 0.35) -> None:
    """Batched scenario family: draw coordinator-batching knobs into ``spec``.

    Drawn from a dedicated seed-derived stream (like the shared-learner and
    fault-family streams) so every pre-existing draw in the main stream stays
    byte-for-byte identical — old seeds reproduce exactly, batched variants
    only *add* keys.  A batched scenario runs the same workload through
    coordinator value batching with a random size-or-timeout delay, and the
    invariant oracle validates its delivery traces unchanged.
    """
    batch_rng = random.Random(seed ^ 0xBA7C4)
    if batch_rng.random() < probability:
        spec["batching"] = True
        spec["batch_max_delay"] = round(batch_rng.uniform(0.0002, 0.002), 6)


def _draw_swarm(spec: Dict[str, Any], seed: int, probability: float = 0.35) -> None:
    """Flash-crowd scenario family: draw a client-swarm layer into ``spec``.

    Drawn from its own seed-derived stream (like the batching and
    fault-family streams) so every pre-existing draw stays byte-for-byte
    identical — old seeds reproduce exactly; flash-crowd variants only *add*
    keys.  A swarm scenario runs the usual RYW clients and fault timeline
    with a :class:`~repro.core.swarm.ClientSwarm` of flyweight open-loop
    clients layered on top: offered load follows a flash-crowd arrival curve
    (a burst ramping to several times the base rate mid-run) while
    connection churn takes clients away and back.  The invariant oracles
    (read-your-writes, store convergence) must hold under the crowd.
    """
    swarm_rng = random.Random(seed ^ 0xF1A5C)
    if swarm_rng.random() >= probability:
        return
    horizon = spec["horizon"]
    flash_at = round(horizon * swarm_rng.uniform(0.25, 0.5), 3)
    spec["swarm"] = {
        "users": swarm_rng.choice([50, 200, 1000]),
        "key_count": swarm_rng.randint(50, 200),
        "base_rate": round(swarm_rng.uniform(80.0, 200.0), 1),
        "peak_factor": round(swarm_rng.uniform(3.0, 8.0), 2),
        "flash_at": flash_at,
        "ramp": round(horizon * 0.1, 3),
        "hold": round(horizon * swarm_rng.uniform(0.1, 0.25), 3),
        "decay": round(horizon * 0.1, 3),
        "churn_rate": round(swarm_rng.uniform(2.0, 10.0), 2),
        "downtime": round(swarm_rng.uniform(0.05, 0.3), 3),
    }


def _generate_kvstore_spec(rng: random.Random, seed: int) -> Dict[str, Any]:
    partitions = rng.choice([1, 1, 2])
    replicas = rng.randint(2, 3)
    horizon = rng.uniform(1.5, 2.5)
    victims = (
        [f"kv{g}-replica{i}" for g in range(partitions) for i in range(replicas)]
        + [f"kv{g}-node{i}" for g in range(partitions) for i in range(3)]
    )
    schedule = _generate_faults(rng, horizon, crash_victims=victims, sites=[], allow_reconfig=False)
    clients = []
    for c in range(rng.choice([1, 2])):
        clients.append({
            "name": f"ryw{c}",
            "keys": rng.randint(2, 4),
            "requests": rng.randint(20, 40),
        })
    spec = {
        "partitions": partitions,
        "replicas": replicas,
        "storage_mode": _pick_storage(rng),
        "horizon": horizon,
        "clients": clients,
        "schedule": schedule.to_dicts(),
    }
    _draw_batching(spec, seed)
    _draw_swarm(spec, seed)
    return spec


def _generate_dlog_spec(rng: random.Random, seed: int) -> Dict[str, Any]:
    logs = rng.choice([1, 2, 3])
    replicas = 2
    horizon = rng.uniform(1.5, 2.5)
    victims = (
        [f"dlog-replica{i}" for i in range(replicas)]
        + [f"dlog{log}-node{i}" for log in range(logs) for i in range(3)]
    )
    schedule = _generate_faults(rng, horizon, crash_victims=victims, sites=[], allow_reconfig=False)
    spec = {
        "logs": logs,
        "replicas": replicas,
        "storage_mode": _pick_storage(rng),
        "horizon": horizon,
        "append_requests": rng.randint(20, 40),
        "multi_append_every": rng.choice([0, 5, 8]),
        "schedule": schedule.to_dicts(),
    }
    _draw_batching(spec, seed)
    return spec


def _generate_faults(
    rng: random.Random,
    horizon: float,
    crash_victims: List[str],
    sites: List[str],
    allow_reconfig: bool,
    rings: Optional[Dict[int, List[List[str]]]] = None,
) -> FaultSchedule:
    """A random timeline of paired faults, everything healed before the end.

    Crash windows are kept sequential (at most one process down at a time) so
    that every ring always retains a quorum of live acceptors — the scenarios
    probe safety under faults the protocol is designed to survive, not
    unavailability.
    """
    schedule = FaultSchedule()
    fault_count = rng.randint(1, 4)
    next_crash_start = rng.uniform(0.1, 0.4)
    for _ in range(fault_count):
        kinds = ["crash", "spike"]
        if len(sites) >= 2:
            kinds += ["partition", "isolate"]
        if allow_reconfig and rings:
            kinds.append("reconfig")
        kind = rng.choice(kinds)
        if kind == "crash" and crash_victims:
            start = next_crash_start
            duration = rng.uniform(*_CRASH_DURATION)
            if start + duration > horizon + SETTLE:
                continue
            victim = rng.choice(crash_victims)
            schedule.crash(start, victim)
            schedule.restart(start + duration, victim)
            next_crash_start = start + duration + rng.uniform(0.1, 0.4)
        elif kind == "partition":
            start = rng.uniform(0.1, horizon)
            duration = rng.uniform(*_PARTITION_DURATION)
            site_a, site_b = rng.sample(sites, 2)
            schedule.partition(start, site_a, site_b)
            schedule.heal(min(start + duration, horizon + SETTLE), site_a, site_b)
        elif kind == "isolate":
            start = rng.uniform(0.1, horizon)
            duration = rng.uniform(*_PARTITION_DURATION)
            site = rng.choice(sites)
            schedule.isolate(start, site)
            schedule.rejoin(min(start + duration, horizon + SETTLE), site)
        elif kind == "spike":
            start = rng.uniform(0.1, horizon)
            duration = rng.uniform(*_SPIKE_DURATION)
            schedule.disk_spike(start, factor=rng.uniform(*_SPIKE_FACTOR))
            schedule.disk_restore(min(start + duration, horizon + SETTLE))
        elif kind == "reconfig" and rings:
            # A learner-only member voluntarily leaves a ring and rejoins.
            candidates = [
                (ring_id, member[0])
                for ring_id, members in rings.items()
                for member in members
                if member[1] == "l"
            ]
            if not candidates:
                continue
            ring_id, name = rng.choice(candidates)
            start = rng.uniform(0.1, horizon * 0.6)
            schedule.add(start, "remove_from_ring", ring_id=ring_id, process=name)
            schedule.add(
                start + rng.uniform(0.1, 0.4), "add_to_ring",
                ring_id=ring_id, process=name, roles="l",
            )
    if not schedule.events and crash_victims:
        # Every draw fell on a guard: still inject at least one fault — a
        # fault-free "chaos" scenario would silently test nothing.
        victim = rng.choice(crash_victims)
        schedule.crash(0.3, victim)
        schedule.restart(0.3 + rng.uniform(*_CRASH_DURATION), victim)
    return schedule


# --------------------------------------------------------------------------
# Runner
# --------------------------------------------------------------------------

def run_scenario(
    seed: int,
    artifacts_dir: Optional[str] = None,
    workers: int = 1,
) -> ScenarioResult:
    """Generate and execute the scenario of ``seed``; check every invariant.

    On violation a JSON repro artifact (seed, spec, fault timeline, trace
    tails) is written to ``artifacts_dir`` (default: ``./chaos-artifacts``,
    overridable through the ``CHAOS_ARTIFACT_DIR`` environment variable).

    ``workers > 1`` opts eligible scenarios into sharded execution: an
    atomic-multicast scenario whose rings form at least two components
    disjoint in their proposers/acceptors — zero cross-ring traffic — splits
    into per-component sub-scenarios executed in worker processes (see
    :func:`shardable_components`).  Learner-only subscribers may span
    components: they are mirrored into every shard hosting one of their
    rings, and a merge stage replays the recorded per-ring streams into
    their cross-component delivery digest (see :func:`_run_amcast_sharded`).
    The verdict is identical either way; the oracle runs per shard, and
    cross-shard acyclicity through a shared learner is exactly what the
    deterministic merge replay pins down.  Ineligible scenarios fall back to
    single-process execution (``stats["sharded"] = False``).
    """
    spec = generate_spec(seed)
    family = spec["family"]
    if workers > 1:
        components = shardable_components(spec)
        if components is not None:
            violations, stats, tails, _ = _run_amcast_sharded(spec, components, workers)
            result = ScenarioResult(
                seed=seed, family=family, violations=violations, stats=stats
            )
            if violations:
                result.artifact_path = _dump_artifact(spec, result, tails, artifacts_dir)
            return result
        stats_note = {"sharded": False}
    else:
        stats_note = {}
    if family == "amcast":
        violations, stats, recorder = _run_amcast(spec)
    elif family == "kvstore":
        violations, stats, recorder = _run_kvstore(spec)
    else:
        violations, stats, recorder = _run_dlog(spec)
    stats.update(stats_note)
    result = ScenarioResult(seed=seed, family=family, violations=violations, stats=stats)
    if violations:
        result.artifact_path = _dump_artifact(
            spec, result, _trace_tails(recorder), artifacts_dir
        )
    return result


def _chaos_config(spec: Dict[str, Any], **overrides: Any) -> MultiRingConfig:
    base = dict(
        messages_per_round=spec.get("messages_per_round", 1),
        rate_interval=0.005,
        max_rate=2000.0,
        storage_mode=StorageMode(spec["storage_mode"]),
        batching_enabled=spec.get("batching", False),
        batch_max_delay=spec.get("batch_max_delay", 0.0005),
        checkpoint_interval=None,
        trim_interval=None,
        gap_repair_interval=0.15,
    )
    base.update(overrides)
    return MultiRingConfig(**base)


def _build_topology(
    sites: List[str], rng: random.Random, asymmetric: bool = False
) -> Topology:
    if len(sites) <= 1:
        return single_datacenter(sites[0] if sites else "dc1")
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    for site in sites:
        topo.add_site(site)
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            latency = rng.uniform(0.001, 0.02)
            if asymmetric:
                # WAN shape: the two directions of a link draw independent
                # latencies (the extra draw only happens for specs carrying
                # the flag, so symmetric scenarios keep their exact draws).
                topo.set_link(a, b, one_way_latency=latency,
                              bandwidth_bps=1e9, symmetric=False)
                topo.set_link(b, a, one_way_latency=rng.uniform(0.001, 0.02),
                              bandwidth_bps=1e9, symmetric=False)
            else:
                topo.set_link(a, b, one_way_latency=latency, bandwidth_bps=1e9)
    return topo


def _run_epilogue(system, schedule: FaultSchedule, active_end: float) -> Tuple[float, float]:
    """Heal everything and let the system quiesce; returns the phase bounds."""
    system.run(until=active_end)
    system.network.heal_all()
    for actor in system.env.actors():
        if not actor.alive:
            system.restart_process(actor.name)
    for disk in system.env.disks():
        disk.clear_slowdown()
    heal_end = active_end + QUIESCE_HEAL
    system.run(until=heal_end)
    return heal_end, heal_end + QUIESCE_FINAL


def _run_amcast(
    spec: Dict[str, Any],
    active_end: Optional[float] = None,
    stream_sink: Optional[Dict[str, Dict[int, List]]] = None,
) -> Tuple[List[Violation], Dict[str, Any], TraceRecorder]:
    """Execute one amcast (sub-)spec start to finish.

    ``active_end`` overrides the end of the active phase; sharded execution
    passes the *full* scenario's phase boundary into every sub-spec so all
    shards run the same simulated timeline.  When the sub-spec names
    ``merge_learners`` (learners shared with other shards), their per-ring
    decision streams are recorded into ``stream_sink`` for the parent's
    merge stage — segmented by incarnation
    (:meth:`~repro.multiring.process.MultiRingProcess.record_ring_history`),
    so a learner that crashed and re-emitted stream prefixes still merges
    correctly at the parent.
    """
    rng = random.Random(spec["seed"] ^ 0x70B0)
    topology = _build_topology(
        spec["sites"], rng, asymmetric=spec.get("wan_asymmetric", False)
    )
    config = _chaos_config(spec)
    system = AtomicMulticast(topology=topology, config=config, seed=spec["seed"])
    processes = {
        name: MultiRingProcess(
            system.env, name, site=site,
            messages_per_round=config.messages_per_round,
        )
        for name, site in sorted(spec["processes"].items())
    }
    for ring_id, members in sorted(spec["rings"].items()):
        system.create_ring(int(ring_id), [(name, roles) for name, roles in members])

    recorder = TraceRecorder()
    for process in processes.values():
        if process.subscribed_groups():
            recorder.attach(process)
    if stream_sink is not None:
        for name in spec.get("merge_learners", ()):
            process = processes.get(name)
            if process is not None:
                process.record_ring_history(into=stream_sink.setdefault(name, {}))

    schedule = FaultSchedule.from_dicts(spec["schedule"])
    schedule.apply(system)

    sim = system.env.simulator

    def send(entry: Dict[str, Any]) -> None:
        sender = processes[entry["sender"]]
        if not sender.alive:
            return  # a crashed client does not submit; nothing was sent
        recorder.record_sent(entry["payload"], entry["sender"], entry["group"], sim.now)
        sender.multicast(entry["group"], payload=entry["payload"], size_bytes=entry["size"])

    for entry in spec["messages"]:
        sim.call_later(entry["at"], send, entry)

    system.start()
    if active_end is None:
        active_end = max(spec["horizon"], schedule.end_time) + SETTLE
    heal_end, final_end = _run_epilogue(system, schedule, active_end)

    # Retry what was genuinely lost (a real client's timeout + resubmit).
    retries = 0
    for record in recorder.undelivered():
        sender = processes[record.sender]
        if sender.alive and record.group in sender.ring_ids():
            recorder.record_retry(record.payload)
            sender.multicast(record.group, payload=record.payload, size_bytes=64)
            retries += 1
    system.run(until=final_end)

    violations = check_delivery_properties(recorder, check_validity=True)
    stats = {
        "sent": len(recorder.sent),
        "retries": retries,
        "deliveries": recorder.delivery_counts(),
        "faults": len(schedule.executed),
        "dropped_messages": system.network.stats.dropped,
    }
    return violations, stats, recorder


# --------------------------------------------------------------------------
# Sharded execution (zero cross-ring traffic scenarios)
# --------------------------------------------------------------------------

def shardable_components(spec: Dict[str, Any]) -> Optional[List[List[int]]]:
    """Ring components of a scenario eligible for sharded execution.

    A scenario can shard when its rings split into at least two components
    that are disjoint in their *traffic-generating* members — proposers and
    acceptors.  Learner-only subscribers may span components: they consume
    ring outputs but generate no ring traffic, so each shard hosts its own
    mirror of the learner and a deterministic merge stage
    (:func:`repro.multiring.merge.replay_streams`) reconstructs the learner's
    cross-component delivery order from the shards' recorded per-ring
    streams (see :func:`shared_merge_learners`).

    The fault schedule must contain no site-level faults: partitions and
    isolations act on sites, which may host processes of several components,
    and the resulting channel-state coupling is exactly what sharding
    assumes away.  Crash, restart, disk-spike and ring-reconfiguration
    faults route cleanly to the shard(s) owning their victim — a fault on a
    learner shared across shards is mirrored into each of them, exactly as
    one crash takes down all of that process's per-ring learners in the
    single-process run.

    Returns the components (sorted ring-id lists) or ``None``.
    """
    if spec.get("family") != "amcast":
        return None
    site_actions = {"partition", "heal", "isolate", "rejoin"}
    for event in spec.get("schedule", []):
        if event.get("action") in site_actions:
            return None
    components = ring_components(
        {
            int(rid): [m[0] for m in members if m[1] != "l"]
            for rid, members in spec["rings"].items()
        }
    )
    if len(components) < 2:
        return None
    return components


def shared_merge_learners(
    spec: Dict[str, Any], components: List[List[int]]
) -> List[str]:
    """Learner-only processes whose subscriptions span several components.

    These are the processes the merge stage reconstructs: each shard records
    their per-ring streams, and the parent replays the deterministic merge
    over the union (sorted names; empty for process-disjoint scenarios).
    """
    learner_rings: Dict[str, set] = {}
    for rid, members in spec["rings"].items():
        for name, roles in members:
            # Any membership with a learner role counts towards the merge —
            # a "pal" member's learner half feeds the same merger as an
            # "l"-only subscription does.
            if "l" in roles:
                learner_rings.setdefault(name, set()).add(int(rid))
    component_of = {
        int(ring): index
        for index, component in enumerate(components)
        for ring in component
    }
    return sorted(
        name
        for name, rings in learner_rings.items()
        if len({component_of[ring] for ring in rings if ring in component_of}) > 1
    )


def _split_amcast_spec(
    spec: Dict[str, Any],
    component: List[int],
    active_end: float,
    merge_learners: Sequence[str] = (),
) -> Dict[str, Any]:
    """The sub-spec of one ring component (same seed, sites and timeline)."""
    rings = {rid: spec["rings"][_ring_key(spec, rid)] for rid in component}
    members = {m[0] for ring in rings.values() for m in ring}
    schedule = []
    for event in spec["schedule"]:
        action = event.get("action")
        params = event.get("params", {})
        if action in ("crash", "restart"):
            if params.get("process") in members:
                schedule.append(event)
        elif action in ("remove_from_ring", "add_to_ring"):
            if int(params.get("ring_id", -1)) in component:
                schedule.append(event)
        else:  # disk spikes and anything site-free applies everywhere
            schedule.append(event)
    sub = dict(spec)
    sub["rings"] = rings
    sub["processes"] = {
        name: site for name, site in spec["processes"].items() if name in members
    }
    sub["messages"] = [m for m in spec["messages"] if m["group"] in component]
    sub["schedule"] = schedule
    sub["active_end"] = active_end
    sub["merge_learners"] = [name for name in merge_learners if name in members]
    return sub


def _ring_key(spec: Dict[str, Any], ring_id: int):
    """Ring keys survive a JSON round trip as strings; accept both."""
    return ring_id if ring_id in spec["rings"] else str(ring_id)


class _AmcastShard(ShardHarness):
    """One chaos sub-scenario executed inside a worker process.

    Chaos shards exchange no messages, so the whole phased scenario script
    (active phase, healing epilogue, retries, oracle) runs in the single
    window the engine hands over; the environment passed to the engine is a
    placeholder that never executes an event.
    """

    def __init__(self, subspec: Dict[str, Any]) -> None:
        super().__init__(Environment())
        self._subspec = subspec
        self._outcome: Optional[Tuple[List[Violation], Dict[str, Any], TraceRecorder]] = None
        self._streams: Dict[str, Dict[int, List]] = {}

    def run_window(self, end: Optional[float]) -> None:
        self._outcome = _run_amcast(
            self._subspec,
            active_end=self._subspec["active_end"],
            stream_sink=self._streams,
        )

    def finalize(self) -> Dict[str, Any]:
        violations, stats, recorder = self._outcome
        return {
            "violations": [(v.prop, v.detail) for v in violations],
            "stats": stats,
            "tails": _trace_tails(recorder),
            "digests": {
                name: [
                    (record.group, record.instance, record.payload)
                    for record in trace.records
                ]
                for name, trace in recorder.traces.items()
            },
            # Per-ring streams of learners shared with other shards (raw
            # ProposalValues, skips included), segmented by the learner's
            # incarnation, for the parent's merge stage.
            "streams": self._streams,
            "crashed": sorted(recorder.crashed_ever),
        }


def _build_amcast_shard(subspec: Dict[str, Any]) -> _AmcastShard:
    return _AmcastShard(subspec)


def _expected_ring_order(stream: List[Tuple[int, Any]]) -> List[Any]:
    """The application payloads a ring's recorded stream delivers, in order.

    Mirrors the merger's emit rules: skips deliver nothing, coordinator
    batches unpack in place.
    """
    expected: List[Any] = []
    for _instance, value in stream:
        # Shared recursive unpacker: skips deliver nothing, packed values
        # (packs of packs included) unpack to their leaf payloads in order.
        expected.extend(iter_payloads(value.payload))
    return expected


def _reactive_merge_check(
    name: str,
    history: Dict[int, List[RingSegment]],
    messages_per_round: int,
) -> Tuple[List[Tuple[int, int, Any]], List[Violation], Dict[str, Any]]:
    """Validate a shared learner's merge through the *reactive* subsystem.

    Instead of trusting an offline digest, the recorded per-ring streams —
    segmented by the producing learner's incarnation — are chunked into
    decision-stream segments (varying sizes, incarnation/resume tags and
    watermarks: the exact shape shards ship at barriers) and fed through a
    streaming :class:`~repro.multiring.merge.MergeCursor` driving a real
    MRP-Store replica: every merged delivery inserts its payload as a key,
    exactly as a reactive shared-learner service would make it readable.
    This holds for *every* shared-learner draw, fault-touched or not: a
    learner that crashed mid-run re-emits stream prefixes under its next
    incarnation, and the cursor's incarnation-aware dedup must absorb them.
    Four invariants are checked against that live state:

    * **read-your-writes** — every payload delivered by a barrier is
      readable from the store immediately after that barrier's ingest;
    * **kvstore convergence** — the final store holds exactly the distinct
      delivered payloads (nothing lost, nothing invented);
    * **merge-stream agreement** — the streaming delivery order is
      bit-identical to the offline :func:`replay_streams` of the deduped
      :func:`effective_streams`, and each delivered ring prefix appears in
      recorded-stream order (a ring's undelivered tail may legitimately stay
      pending when the streams end unevenly at the horizon cut);
    * **no divergence** — a re-emitted ``(ring, instance)`` deciding a
      *different* value than the original emission is consensus breakage;
      the cursor surfaces it as
      :class:`~repro.multiring.merge.MergeDivergenceError` and the oracle
      turns it into a hard violation.

    Returns ``(digest, violations, stats)`` where ``digest`` is the familiar
    ``(group, instance, payload)`` sequence (what the determinism tests
    compare across worker counts).
    """
    from ..kvstore.replica import MRPStoreReplica

    env = Environment()
    replica = MRPStoreReplica(env, f"{name}-reactive", respond_to_clients=False)
    merged: List[Tuple[int, int, Any]] = []

    def apply(group: int, instance: int, value: Any) -> None:
        payload = value.payload
        replica.apply_command(
            group,
            Command(
                op="insert",
                args=(repr(payload), None, 64),
                group_id=group,
                size_bytes=64,
            ),
        )
        merged.append((group, instance, payload))

    groups = sorted(history)
    cursor = MergeCursor(groups, messages_per_round=messages_per_round,
                         on_deliver=apply, retain_history=False)
    violations: List[Violation] = []
    #: Per-ring feed position: (incarnation-run index, offset into its entries).
    positions: Dict[int, Tuple[int, int]] = {group: (0, 0) for group in groups}

    def exhausted(group: int) -> bool:
        run, offset = positions[group]
        runs = history[group]
        while run < len(runs) and offset >= len(runs[run].entries):
            run, offset = run + 1, 0
        positions[group] = (run, offset)
        return run >= len(runs)

    barrier = 0
    while not all(exhausted(group) for group in groups):
        barrier += 1
        chunk = 1 + (barrier % 4)  # vary segment sizes: exercise incrementality
        segments: Dict[int, RingSegment] = {}
        for group in groups:
            if exhausted(group):
                continue
            run_index, offset = positions[group]
            run = history[group][run_index]
            entries = run.entries[offset:offset + chunk]
            segments[group] = RingSegment(
                incarnation=run.incarnation, start=offset, entries=entries
            )
            positions[group] = (run_index, offset + len(entries))
        before = len(merged)
        try:
            cursor.feed_segments(segments, watermark=float(barrier))
        except MergeDivergenceError as exc:
            violations.append(Violation("merge-stream-divergence", f"{name}: {exc}"))
            break
        for group, instance, payload in merged[before:]:
            entry = replica.store.read(repr(payload))
            if entry is None:
                violations.append(Violation(
                    "reactive-read-your-writes",
                    f"{name}: payload {payload!r} (ring {group}, instance "
                    f"{instance}) was applied at barrier {barrier} but is not "
                    "readable from the reactive store",
                ))

    distinct = {repr(payload) for _, _, payload in merged}
    if replica.entry_count() != len(distinct):
        violations.append(Violation(
            "reactive-store-convergence",
            f"{name}: reactive store holds {replica.entry_count()} entries, "
            f"expected {len(distinct)} distinct delivered payloads",
        ))
    try:
        streams = effective_streams(history)
    except MergeDivergenceError as exc:
        violations.append(Violation("merge-stream-divergence", f"{name}: {exc}"))
        streams = None
    if streams is not None:
        offline = [
            (group, instance, value.payload)
            for group, instance, value in replay_streams(
                streams, messages_per_round=messages_per_round
            )
        ]
        if merged != offline:
            violations.append(Violation(
                "merge-stream-divergence",
                f"{name}: streaming merge delivered {len(merged)} entries, "
                f"offline replay {len(offline)}; sequences diverge",
            ))
        for group in groups:
            observed = [payload for g, _, payload in merged if g == group]
            expected = _expected_ring_order(streams[group])
            # Prefix comparison: the round-robin legitimately leaves a ring's
            # tail pending when the streams end unevenly at the horizon cut
            # (the offline replay leaves it pending too, which the divergence
            # check above pins down) — only *reordering* within what was
            # delivered is a violation.
            if observed != expected[:len(observed)]:
                violations.append(Violation(
                    "reactive-merge-order",
                    f"{name}: ring {group} payloads left the merge out of "
                    "recorded-stream order",
                ))
    stats = {
        "barriers": barrier,
        "applied": len(merged),
        "store_entries": replica.entry_count(),
        "deduped": cursor.duplicates_dropped,
        "incarnations": {
            group: history[group][-1].incarnation if history[group] else 0
            for group in groups
        },
    }
    return merged, violations, stats


def _run_amcast_sharded(
    spec: Dict[str, Any],
    components: List[List[int]],
    workers: int,
) -> Tuple[List[Violation], Dict[str, Any], Dict[str, Any], Dict[str, Any]]:
    """Run one sub-scenario per ring component under the parallel engine.

    Returns merged ``(violations, stats, trace_tails, delivery_digests)``;
    the digests (full per-learner delivery sequences) are what the
    determinism tests compare across worker counts.

    Learners shared across components are mirrored into every shard that
    hosts one of their rings; their per-shard partial digests are keyed
    ``name@shard<id>``, and the *reactive* merge stage streams the shards'
    recorded per-ring streams — segmented by incarnation — through a
    :class:`~repro.multiring.merge.MergeCursor` into a live MRP-Store state
    machine, validating read-your-writes and store convergence against that
    merged state (see :func:`_reactive_merge_check`) and recording the
    learner's cross-component delivery digest under its plain name — exactly
    the round-robin order its single-process merger produces from those
    streams.  This holds for *every* shared-learner draw: a learner crashed,
    restarted or reconfigured mid-run re-emits stream prefixes, and the
    cursor's incarnation-aware dedup absorbs them (a re-emission deciding a
    different value is a hard ``merge-stream-divergence`` violation).
    """
    schedule = FaultSchedule.from_dicts(spec["schedule"])
    active_end = max(spec["horizon"], schedule.end_time) + SETTLE
    merge_learners = shared_merge_learners(spec, components)
    specs = [
        ShardSpec(
            shard_id=index,
            build=_build_amcast_shard,
            payload=_split_amcast_spec(spec, component, active_end, merge_learners),
            # Balance workers by component size (rings per shard).
            weight=float(len(component)),
        )
        for index, component in enumerate(components)
    ]
    run = run_sharded(specs, workers=workers)

    violations: List[Violation] = []
    tails: Dict[str, Any] = {}
    digests: Dict[str, Any] = {}
    streams_by_name: Dict[str, Dict[int, List]] = {}
    crashed: set = set()
    shared = set(merge_learners)
    stats: Dict[str, Any] = {
        "sent": 0,
        "retries": 0,
        "deliveries": {},
        "faults": 0,
        "dropped_messages": 0,
    }
    for shard_id in sorted(run.results):
        shard = run.results[shard_id]
        violations.extend(Violation(prop, detail) for prop, detail in shard["violations"])
        for name, tail in shard["tails"].items():
            tails[f"{name}@shard{shard_id}" if name in shared else name] = tail
        for name, digest in shard["digests"].items():
            digests[f"{name}@shard{shard_id}" if name in shared else name] = digest
        for name, ring_streams in shard["streams"].items():
            streams_by_name.setdefault(name, {}).update(ring_streams)
        crashed.update(shard["crashed"])
        shard_stats = shard["stats"]
        for key in ("sent", "retries", "dropped_messages"):
            stats[key] += shard_stats[key]
        for name, count in shard_stats["deliveries"].items():
            key = f"{name}@shard{shard_id}" if name in shared else name
            stats["deliveries"][key] = count

    # Merge stage: reconstruct each shared learner's cross-component delivery
    # order through the *reactive* subsystem — the recorded incarnation-
    # segmented streams are chunked into barrier segments, streamed through a
    # merge cursor into a live MRP-Store state machine, and read-your-writes
    # / store-convergence / stream-agreement are validated against that
    # merged state (see :func:`_reactive_merge_check`).  Fault-touched
    # learners get no special treatment: their re-emitted stream prefixes
    # are exactly what the incarnation-aware dedup exists for.
    messages_per_round = spec.get("messages_per_round", 1)
    reactive_stats: Dict[str, Any] = {}
    for name in merge_learners:
        history = streams_by_name.get(name)
        if history:
            merged, merge_violations, merge_stats = _reactive_merge_check(
                name, history, messages_per_round
            )
            digests[name] = merged
            violations.extend(merge_violations)
            reactive_stats[name] = merge_stats
    # Broadcast faults (disk spikes) execute in every shard's sub-schedule;
    # summing the per-shard counts would multiply them by the shard count.
    # The scenario's fault count is the full schedule's, exactly as in the
    # single-process run (the epilogue always runs past the last event).
    stats["faults"] = len(spec["schedule"])
    stats["sharded"] = {
        "workers": run.workers,
        "shards": [list(component) for component in components],
        "wall_clock_s": round(run.wall_clock, 4),
    }
    if merge_learners:
        stats["sharded"]["merge_learners"] = merge_learners
        if reactive_stats:
            stats["sharded"]["reactive_merge"] = reactive_stats
    if crashed:
        stats["sharded"]["crashed"] = sorted(crashed)
    return violations, stats, tails, digests


class _RywClient(Actor):
    """Closed-loop client checking read-your-writes on private keys.

    Alternates ``update`` and ``read`` on a small set of keys only it writes;
    every write uses a strictly larger value size, so a read answered with a
    smaller size than the client's last acknowledged write proves a replica
    served stale (out-of-order) state.
    """

    def __init__(self, env, name, frontends_by_group, group_for_key, keys, max_requests):
        super().__init__(env, name)
        self._frontends = dict(frontends_by_group)
        self._group_for_key = group_for_key
        self._keys = list(keys)
        self._max_requests = max_requests
        self._seq = 0
        self._outstanding: Dict[int, Tuple[str, str, int]] = {}
        self._acked_size: Dict[str, int] = {}
        self.violations: List[Violation] = []
        self.completed = 0

    def on_start(self) -> None:
        self._issue()

    def _issue(self) -> None:
        if self._seq >= self._max_requests or not self.alive:
            return
        seq = self._seq
        self._seq += 1
        key = self._keys[(seq // 2) % len(self._keys)]
        size = 64 + seq
        if seq % 2 == 0:
            command = Command(
                op="update" if key in self._acked_size else "insert",
                args=(key, None, size),
                group_id=self._group_for_key(key),
                size_bytes=size,
                command_id=seq,
                client=self.name,
            )
        else:
            command = Command(
                op="read",
                args=(key,),
                group_id=self._group_for_key(key),
                size_bytes=32,
                command_id=seq,
                client=self.name,
            )
        self._outstanding[seq] = (command.op, key, size)
        self.send(
            self._frontends[command.group_id],
            ClientRequest(payload_bytes=command.size_bytes, client=self.name, command=command),
        )

    def on_message(self, sender: str, message) -> None:
        if not isinstance(message, ClientResponse):
            return
        entry = self._outstanding.pop(message.request_id, None)
        if entry is None:
            return  # duplicate response from another replica
        op, key, size = entry
        value = message.result.get("value") if isinstance(message.result, dict) else None
        if op in ("update", "insert"):
            self._acked_size[key] = size
        elif op == "read" and key in self._acked_size:
            observed = value.get("size", -1) if isinstance(value, dict) else -1
            if not (isinstance(value, dict) and value.get("found")) or observed < self._acked_size[key]:
                self.violations.append(Violation(
                    "read-your-writes",
                    f"{self.name} read {key!r} and saw size {observed} after its "
                    f"write of size {self._acked_size[key]} was acknowledged",
                ))
        self.completed += 1
        self._issue()


def _run_kvstore(spec: Dict[str, Any]) -> Tuple[List[Violation], Dict[str, Any], TraceRecorder]:
    from ..kvstore.service import MRPStoreService

    config = _chaos_config(spec, checkpoint_interval=0.5)
    system = AtomicMulticast(config=config, seed=spec["seed"])
    groups = list(range(spec["partitions"]))
    service = MRPStoreService(
        system,
        partition_groups=groups,
        acceptors_per_partition=3,
        replicas_per_partition=spec["replicas"],
        config=config,
    )
    recorder = TraceRecorder()
    for replica in service.all_replicas():
        recorder.attach(replica)

    frontends = service.frontend_map()
    clients = [
        _RywClient(
            system.env,
            entry["name"],
            frontends_by_group=frontends,
            group_for_key=service.partitioner.group_for_key,
            keys=[f"{entry['name']}-k{i}" for i in range(entry["keys"])],
            max_requests=entry["requests"],
        )
        for entry in spec["clients"]
    ]

    swarm = None
    swarm_spec = spec.get("swarm")
    if swarm_spec:
        from ..core.swarm import ChurnSpec, ClientSwarm, shared_factory
        from ..kvstore.client import MRPStoreCommands, kv_request_factory
        from ..workloads.arrival import flash_crowd
        from ..workloads.kv import preload_keys, update_only_workload

        # The crowd writes its own prefixed keyspace so it can never collide
        # with the RYW clients' private keys (their oracle stays sound).
        service.preload(
            preload_keys(swarm_spec["key_count"], value_bytes=256, key_prefix="swarm-key")
        )
        workload = update_only_workload(
            random.Random(spec["seed"] ^ 0x5A3F),
            key_count=swarm_spec["key_count"],
            value_bytes=256,
            key_prefix="swarm-key",
        )
        swarm = ClientSwarm(
            system.env,
            "chaos-swarm",
            frontends_by_group=frontends,
            request_factory=shared_factory(
                kv_request_factory(MRPStoreCommands(service.partitioner), workload)
            ),
            clients=swarm_spec["users"],
            mode="open",
            arrival=flash_crowd(
                base=swarm_spec["base_rate"],
                peak=swarm_spec["base_rate"] * swarm_spec["peak_factor"],
                at=swarm_spec["flash_at"],
                ramp=swarm_spec["ramp"],
                hold=swarm_spec["hold"],
                decay=swarm_spec["decay"],
            ),
            churn=ChurnSpec(
                rate=swarm_spec["churn_rate"], downtime=swarm_spec["downtime"]
            ),
            metric_prefix="chaos.swarm",
        )

    schedule = FaultSchedule.from_dicts(spec["schedule"])
    schedule.apply(system)
    system.start()

    active_end = max(spec["horizon"], schedule.end_time) + SETTLE
    _, final_end = _run_epilogue(system, schedule, active_end)
    system.run(until=final_end)

    # Service-level invariants only: commands lack a hashable cross-replica
    # identity, so the ordering oracle does not run for this family — a
    # divergence in delivery order surfaces as store divergence or a stale
    # read instead.
    violations: List[Violation] = []
    for client in clients:
        violations.extend(client.violations)
    violations.extend(
        check_store_convergence({g: service.replicas[g] for g in groups})
    )
    stats = {
        "completed": {c.name: c.completed for c in clients},
        "faults": len(schedule.executed),
        "deliveries": recorder.delivery_counts(),
    }
    if swarm is not None:
        metrics = system.env.metrics
        stats["swarm"] = {
            "users": swarm.clients,
            "issued": swarm.issued,
            "completed": swarm.completed,
            "online": swarm.online,
            "disconnects": int(metrics.counter("chaos.swarm.churn.disconnects").value),
            "reconnects": int(metrics.counter("chaos.swarm.churn.reconnects").value),
        }
    return violations, stats, recorder


def _run_dlog(spec: Dict[str, Any]) -> Tuple[List[Violation], Dict[str, Any], TraceRecorder]:
    from ..dlog.service import DLogService

    config = _chaos_config(spec, checkpoint_interval=0.5)
    system = AtomicMulticast(config=config, seed=spec["seed"])
    log_ids = list(range(spec["logs"]))
    service = DLogService(
        system,
        log_ids=log_ids,
        acceptors_per_log=3,
        replica_count=spec["replicas"],
        config=config,
    )
    recorder = TraceRecorder()
    for replica in service.replicas:
        recorder.attach(replica)

    client = service.create_append_client(
        "chaos-appender",
        concurrency=2,
        append_bytes=256,
        max_requests=spec["append_requests"],
        multi_append_every=spec["multi_append_every"] or None,
    )

    schedule = FaultSchedule.from_dicts(spec["schedule"])
    schedule.apply(system)
    system.start()

    active_end = max(spec["horizon"], schedule.end_time) + SETTLE
    _, final_end = _run_epilogue(system, schedule, active_end)
    system.run(until=final_end)

    violations = check_log_convergence(service.replicas, log_ids)
    stats = {
        "completed": client.completed,
        "faults": len(schedule.executed),
        "deliveries": recorder.delivery_counts(),
    }
    return violations, stats, recorder


# --------------------------------------------------------------------------
# Repro artifacts
# --------------------------------------------------------------------------

def _trace_tails(recorder: TraceRecorder) -> Dict[str, Any]:
    """The last deliveries of every traced learner, as plain dicts."""
    return {
        name: [
            {
                "time": record.time,
                "incarnation": record.incarnation,
                "group": record.group,
                "instance": record.instance,
                "payload": repr(record.payload),
            }
            for record in trace.tail(50)
        ]
        for name, trace in recorder.traces.items()
    }


def _dump_artifact(
    spec: Dict[str, Any],
    result: ScenarioResult,
    trace_tails: Dict[str, Any],
    artifacts_dir: Optional[str],
) -> Optional[str]:
    directory = artifacts_dir or os.environ.get("CHAOS_ARTIFACT_DIR", "chaos-artifacts")
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"chaos-seed{result.seed}.json")
        payload = {
            "seed": result.seed,
            "family": result.family,
            "replay": f"PYTHONPATH=src python -m repro.chaos --seed {result.seed}",
            "violations": [{"prop": v.prop, "detail": v.detail} for v in result.violations],
            "stats": result.stats,
            "spec": spec,
            "trace_tails": trace_tails,
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=repr)
        return path
    except OSError:  # pragma: no cover - read-only filesystem etc.
        return None


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

_CLI_EPILOG = """\
examples:
  python -m repro.chaos --seed 7              replay the scenario of seed 7
  python -m repro.chaos --seed 0 --count 200  sweep seeds 0..199 (the CI matrix)
  python -m repro.chaos --seed 7 --workers 2  shard eligible scenarios over 2 cores

Every scenario is a pure function of its seed: the topology, deployment
family (atomic multicast / MRP-Store / dLog), workload and fault timeline
all derive from it, so a failure seen anywhere replays exactly from the
seed alone.  On a violation the runner prints the violated property and
writes chaos-artifacts/chaos-seed<SEED>.json (spec, fault timeline,
violations, per-learner trace tails) with the replay command inside.

--workers N opts eligible scenarios into sharded execution: an
atomic-multicast scenario whose rings form two or more components disjoint
in their proposers/acceptors runs one component per shard — including
shared-learner draws, where a learner-only subscriber spans every ring and
a merge stage replays the shards' recorded per-ring streams into its
cross-component delivery order.  The invariant verdict is identical to the
single-process run.  Scenarios with site-level faults or rings entangled by
traffic-generating processes fall back to one process.

Environment: CHAOS_ARTIFACT_DIR overrides the artifact directory.
Run with PYTHONPATH=src from the repository root."""


def main(argv: Optional[List[str]] = None) -> int:
    """Run one or more scenarios from the command line.

    ``python -m repro.chaos --seed 7`` replays seed 7;
    ``--count N`` sweeps seeds ``seed .. seed+N-1``;
    ``--workers N`` shards eligible scenarios over ``N`` processes.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run seeded chaos scenarios against the Multi-Ring Paxos "
        "reproduction and check the paper's atomic-multicast invariants.",
        epilog=_CLI_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=0, help="first scenario seed")
    parser.add_argument("--count", type=int, default=1, help="number of consecutive seeds")
    parser.add_argument("--artifacts", default=None, help="repro artifact directory")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for scenarios eligible for sharded execution",
    )
    args = parser.parse_args(argv)

    failures = 0
    failed_seeds: List[int] = []
    for seed in range(args.seed, args.seed + args.count):
        result = run_scenario(seed, artifacts_dir=args.artifacts, workers=args.workers)
        status = "PASS" if result.ok else "FAIL"
        print(f"{status} seed={seed} family={result.family} stats={result.stats}")
        if not result.ok:
            failures += 1
            failed_seeds.append(seed)
            for violation in result.violations:
                print(f"  {violation}")
            if result.artifact_path:
                print(f"  artifact: {result.artifact_path}")
    total = args.count
    if failures:
        print(
            f"chaos: {failures}/{total} scenario(s) VIOLATED the oracle "
            f"(seeds {failed_seeds}) — exit 1"
        )
    else:
        print(f"chaos: {total}/{total} scenario(s) passed")
    return 1 if failures else 0
