"""Declarative fault schedules executed on the simulation clock.

A :class:`FaultSchedule` is a timeline of :class:`FaultEvent` entries, each
naming an action and its parameters.  Applying a schedule to a running
:class:`~repro.core.amcast.AtomicMulticast` deployment arms one simulator
timer per event; when a timer fires the action is executed against the
deployment (crash a process, cut a link, spike a disk, reconfigure a ring).

Schedules are plain data: they serialise to/from lists of dicts, which is how
the scenario runner embeds the exact fault timeline of a failing run in its
repro artifact.

Supported actions
-----------------
``crash`` / ``restart``
    Crash or restart a named process via the deployment façade (the crash
    also reconfigures every ring the process was a member of, mirroring
    Zookeeper's ephemeral-node expiry).
``partition`` / ``heal``
    Cut / restore the links between two sites.
``isolate`` / ``rejoin``
    Drop / restore all traffic of one site.
``heal_all``
    Remove every partition and isolation at once.
``disk_spike`` / ``disk_restore``
    Multiply / reset the write latency of every disk whose name contains
    ``match`` (empty string matches every device).
``remove_from_ring`` / ``add_to_ring``
    Voluntary ring reconfiguration (a member leaving / rejoining without
    crashing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["FaultEvent", "FaultSchedule"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a fault timeline.

    Attributes
    ----------
    at:
        Simulation time (seconds) the action executes at.
    action:
        Action name (see module docstring).
    params:
        Keyword parameters of the action.
    """

    at: float
    action: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form used by repro artifacts."""
        return {"at": self.at, "action": self.action, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(at=float(data["at"]), action=str(data["action"]), params=dict(data.get("params", {})))


def _crash(system, process: str) -> None:
    if system.env.has_actor(process) and system.env.actor(process).alive:
        system.crash_process(process)


def _restart(system, process: str) -> None:
    if system.env.has_actor(process) and not system.env.actor(process).alive:
        system.restart_process(process)


def _partition(system, site_a: str, site_b: str, bidirectional: bool = True) -> None:
    system.network.partition(site_a, site_b, bidirectional=bidirectional)


def _heal(system, site_a: str, site_b: str) -> None:
    system.network.heal(site_a, site_b)


def _isolate(system, site: str) -> None:
    system.network.isolate_site(site)


def _rejoin(system, site: str) -> None:
    system.network.rejoin_site(site)


def _heal_all(system) -> None:
    system.network.heal_all()


def _disk_spike(system, factor: float, match: str = "") -> None:
    for disk in system.env.disks():
        if match in disk.name:
            disk.set_slowdown(factor)


def _disk_restore(system, match: str = "") -> None:
    for disk in system.env.disks():
        if match in disk.name:
            disk.clear_slowdown()


def _remove_from_ring(system, ring_id: int, process: str) -> None:
    overlay = system.ring(ring_id)
    if process not in overlay:
        return
    member = overlay.member(process)
    if member.acceptor and len(overlay.acceptors) <= 1:
        return  # cannot remove the last acceptor; the ring would wedge
    system.remove_from_ring(ring_id, process)


def _add_to_ring(system, ring_id: int, process: str, roles: str = "pal") -> None:
    if process in system.ring(ring_id):
        return
    system.add_to_ring(ring_id, (process, roles))


_ACTIONS: Dict[str, Callable[..., None]] = {
    "crash": _crash,
    "restart": _restart,
    "partition": _partition,
    "heal": _heal,
    "isolate": _isolate,
    "rejoin": _rejoin,
    "heal_all": _heal_all,
    "disk_spike": _disk_spike,
    "disk_restore": _disk_restore,
    "remove_from_ring": _remove_from_ring,
    "add_to_ring": _add_to_ring,
}


class FaultSchedule:
    """An ordered timeline of fault events plus the machinery to run it."""

    def __init__(self, events: Optional[Sequence[FaultEvent]] = None) -> None:
        self.events: List[FaultEvent] = sorted(events or [], key=lambda e: e.at)
        #: ``(time, action, params)`` triples actually executed (events whose
        #: guard made them a no-op are recorded too — the timeline is what is
        #: being debugged, not its effect)
        self.executed: List[Tuple[float, str, Dict[str, Any]]] = []

    # -------------------------------------------------------------- building
    def add(self, at: float, action: str, **params: Any) -> "FaultSchedule":
        """Append an event (keeps the timeline sorted); returns ``self``."""
        if action not in _ACTIONS:
            raise ValueError(f"unknown fault action: {action}")
        self.events.append(FaultEvent(at=at, action=action, params=params))
        self.events.sort(key=lambda e: e.at)
        return self

    def crash(self, at: float, process: str) -> "FaultSchedule":
        """Crash ``process`` at ``at`` (rings reconfigure around it)."""
        return self.add(at, "crash", process=process)

    def restart(self, at: float, process: str) -> "FaultSchedule":
        """Restart ``process`` at ``at`` (its recovery protocol runs)."""
        return self.add(at, "restart", process=process)

    def partition(self, at: float, site_a: str, site_b: str) -> "FaultSchedule":
        """Cut the links between two sites at ``at``."""
        return self.add(at, "partition", site_a=site_a, site_b=site_b)

    def heal(self, at: float, site_a: str, site_b: str) -> "FaultSchedule":
        """Restore the links between two sites at ``at``."""
        return self.add(at, "heal", site_a=site_a, site_b=site_b)

    def isolate(self, at: float, site: str) -> "FaultSchedule":
        """Drop all traffic of ``site`` starting at ``at``."""
        return self.add(at, "isolate", site=site)

    def rejoin(self, at: float, site: str) -> "FaultSchedule":
        """Undo an isolation at ``at``."""
        return self.add(at, "rejoin", site=site)

    def disk_spike(self, at: float, factor: float, match: str = "") -> "FaultSchedule":
        """Slow matching disks down by ``factor`` starting at ``at``."""
        return self.add(at, "disk_spike", factor=factor, match=match)

    def disk_restore(self, at: float, match: str = "") -> "FaultSchedule":
        """End a disk-latency spike at ``at``."""
        return self.add(at, "disk_restore", match=match)

    # ------------------------------------------------------------- execution
    def apply(self, system) -> None:
        """Arm one simulator timer per event against ``system``.

        Events whose time is already in the past execute at the current
        simulation time (a schedule is normally applied before ``run``).
        """
        now = system.env.simulator.now
        for event in self.events:
            delay = max(0.0, event.at - now)
            system.env.simulator.call_later(delay, self._execute, system, event)

    def _execute(self, system, event: FaultEvent) -> None:
        self.executed.append((system.env.simulator.now, event.action, dict(event.params)))
        _ACTIONS[event.action](system, **event.params)

    # ----------------------------------------------------------- inspection
    @property
    def end_time(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return self.events[-1].at if self.events else 0.0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -------------------------------------------------------- serialisation
    def to_dicts(self) -> List[Dict[str, Any]]:
        """The timeline as plain data (embeddable in a JSON artifact)."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, data: Sequence[Dict[str, Any]]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dicts` output."""
        return cls([FaultEvent.from_dict(entry) for entry in data])
