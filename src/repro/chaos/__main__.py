"""Entry point: ``python -m repro.chaos --seed N [--count K]``."""

import sys

from .scenario import main

sys.exit(main())
