"""Stable-storage substrate: slot buffers, write-ahead logs and checkpoints."""

from .checkpoint import Checkpoint, CheckpointId, CheckpointStore
from .slots import SlotBuffer, SlotEntry, SlotFullError
from .wal import LogRecord, WriteAheadLog

__all__ = [
    "Checkpoint",
    "CheckpointId",
    "CheckpointStore",
    "SlotBuffer",
    "SlotEntry",
    "SlotFullError",
    "LogRecord",
    "WriteAheadLog",
]
