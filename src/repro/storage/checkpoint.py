"""Checkpoint storage for replicas.

Multi-Ring Paxos identifies a replica checkpoint by a *tuple of consensus
instances*, one entry per multicast group the replica subscribes to
(Section 5.2).  :class:`CheckpointId` implements that tuple together with the
partial order used by Predicates 1-5; :class:`CheckpointStore` holds the
snapshots a replica wrote to stable storage and charges the device model for
writing them (the paper writes checkpoints synchronously — Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..sim.actor import Environment
from ..sim.disk import Disk, DiskProfile, SSD_PROFILE

__all__ = ["CheckpointId", "Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class CheckpointId:
    """Identifier of a checkpoint: highest applied instance per group.

    The mapping is stored as a sorted tuple of ``(group_id, instance)`` pairs
    so the object is hashable and comparisons are deterministic.
    """

    entries: Tuple[Tuple[int, int], ...]

    @staticmethod
    def from_mapping(mapping: Mapping[int, int]) -> "CheckpointId":
        """Build an id from ``{group_id: highest_instance}``."""
        return CheckpointId(tuple(sorted(mapping.items())))

    def as_dict(self) -> Dict[int, int]:
        """The identifier as a plain ``{group_id: instance}`` dict."""
        return dict(self.entries)

    def groups(self) -> List[int]:
        """Group ids covered by this checkpoint, sorted."""
        return [g for g, _ in self.entries]

    def instance_for(self, group_id: int) -> int:
        """Highest instance of ``group_id`` reflected in the checkpoint (-1 if absent)."""
        return self.as_dict().get(group_id, -1)

    # ------------------------------------------------------------ comparisons
    def same_groups(self, other: "CheckpointId") -> bool:
        """Whether both checkpoints cover the same set of groups (same partition)."""
        return self.groups() == other.groups()

    def dominates(self, other: "CheckpointId") -> bool:
        """Component-wise ``>=`` over a common group set (``k_q <= K_R`` in the paper).

        Only meaningful between checkpoints of the same partition; comparing
        across partitions raises ``ValueError`` because the paper explicitly
        forbids recovering from a different partition's checkpoint.
        """
        if not self.same_groups(other):
            raise ValueError("checkpoints from different partitions are not comparable")
        mine, theirs = self.as_dict(), other.as_dict()
        return all(mine[g] >= theirs[g] for g in mine)

    def satisfies_round_robin_order(self) -> bool:
        """Predicate 1 of the paper: ``x < y  =>  k[x] >= k[y]``.

        Because learners deliver groups in round-robin order of group id, any
        state a replica checkpoints must have consumed at least as many
        instances from lower-numbered groups as from higher-numbered ones.
        """
        instances = [i for _, i in self.entries]
        return all(instances[idx] >= instances[idx + 1] for idx in range(len(instances) - 1))

    def __str__(self) -> str:
        inner = ", ".join(f"g{g}:{i}" for g, i in self.entries)
        return f"<{inner}>"


@dataclass
class Checkpoint:
    """A durable snapshot of a replica's service state."""

    checkpoint_id: CheckpointId
    state: Any
    size_bytes: int
    taken_at: float


class CheckpointStore:
    """Durable store of a replica's checkpoints.

    Parameters
    ----------
    env:
        Simulation environment.
    profile:
        Device profile used for checkpoint writes (defaults to SSD since the
        paper's replicas write checkpoints to local SSDs).
    keep:
        Number of checkpoints retained; older ones are discarded, modelling
        bounded local storage.
    """

    def __init__(
        self,
        env: Environment,
        profile: DiskProfile = SSD_PROFILE,
        name: str = "ckpt",
        keep: int = 3,
        disk: Optional[Disk] = None,
    ) -> None:
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.env = env
        self.disk = disk or Disk(env, profile, name=f"{name}.disk")
        self._keep = keep
        self._checkpoints: List[Checkpoint] = []

    # ------------------------------------------------------------------ write
    def save(
        self,
        checkpoint_id: CheckpointId,
        state: Any,
        size_bytes: int,
        on_durable: Optional[Callable[[], None]] = None,
    ) -> Checkpoint:
        """Write a checkpoint synchronously to the device.

        ``on_durable`` fires when the device write completes; the returned
        checkpoint is visible to :meth:`latest` immediately (the in-memory
        structure exists before the write finishes, as in the prototype).
        """
        checkpoint = Checkpoint(
            checkpoint_id=checkpoint_id,
            state=state,
            size_bytes=size_bytes,
            taken_at=self.env.simulator.now,
        )
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self._keep:
            self._checkpoints = self._checkpoints[-self._keep:]
        self.disk.write(size_bytes, on_complete=on_durable)
        return checkpoint

    # ------------------------------------------------------------------- read
    def latest(self) -> Optional[Checkpoint]:
        """Most recent checkpoint, or ``None`` when none was ever taken."""
        return self._checkpoints[-1] if self._checkpoints else None

    def all(self) -> List[Checkpoint]:
        """Retained checkpoints, oldest first."""
        return list(self._checkpoints)

    def __len__(self) -> int:
        return len(self._checkpoints)
