"""Write-ahead instance log (Berkeley DB JE substitute).

The paper's acceptors persist Phase 1B / Phase 2B responses with the Java
edition of Berkeley DB (Section 7.1), either synchronously (each instance
written one by one, batching disabled — Section 8.2) or asynchronously
(buffered, flushed in the background).

:class:`WriteAheadLog` stores per-instance records in memory (the "database")
and charges the device model for the bytes written.  In synchronous mode the
caller receives the durability completion time and must not act before it; in
asynchronous mode records are buffered and a background flush writes them in
batches, so the caller continues immediately but a crash may lose the tail of
the buffer — exactly the durability/latency trade-off of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.actor import Environment
from ..sim.disk import Disk, DiskProfile, StorageMode, profile_for_mode

__all__ = ["LogRecord", "WriteAheadLog"]

#: Fixed per-record framing written to the device on top of the payload.
_RECORD_OVERHEAD = 64


@dataclass(slots=True)
class LogRecord:
    """One durable record: the acceptor's vote for one consensus instance.

    ``slots=True``: one is allocated per logged vote on the ring hot path.
    """

    instance: int
    ballot: int
    value: Any
    size_bytes: int


class WriteAheadLog:
    """Per-acceptor durable log of consensus votes.

    Parameters
    ----------
    env:
        Simulation environment (provides the clock and scheduling).
    mode:
        Storage mode; :data:`~repro.sim.disk.StorageMode.IN_MEMORY` keeps
        records only in memory (no durability, no device charge).
    flush_interval:
        Background flush period for asynchronous modes.
    name:
        Label used for the device (useful when each ring has its own disk, as
        in the vertical-scalability experiment of Figure 6).
    disk:
        Optional externally created device, allowing several logs to share a
        disk or an experiment to pin each ring to a dedicated disk.
    """

    def __init__(
        self,
        env: Environment,
        mode: StorageMode = StorageMode.IN_MEMORY,
        flush_interval: float = 0.005,
        name: str = "wal",
        disk: Optional[Disk] = None,
    ) -> None:
        self.env = env
        self.mode = mode
        self.name = name
        self._simulator = env.simulator
        profile = profile_for_mode(mode)
        self.disk: Optional[Disk] = None
        if profile is not None:
            self.disk = disk or Disk(env, profile, name=f"{name}.disk")
        self._records: Dict[int, LogRecord] = {}
        self._pending: List[LogRecord] = []
        self._flush_interval = flush_interval
        self._flush_scheduled = False
        # Mode flags resolved once: append() runs per vote on the ring path.
        self._memory_mode = mode is StorageMode.IN_MEMORY or self.disk is None
        self._synchronous = mode.synchronous
        self._durable_up_to_bytes = 0
        self._lost_on_crash = 0

    # ------------------------------------------------------------------ write
    def append(
        self,
        instance: int,
        ballot: int,
        value: Any,
        size_bytes: int,
        on_durable: Optional[Callable[..., None]] = None,
        on_durable_args: tuple = (),
    ) -> Optional[float]:
        """Record the acceptor's vote for ``instance``.

        Returns the simulation time at which the record is durable for
        synchronous modes (``on_durable(*on_durable_args)`` fires then), or
        ``None`` for in-memory and asynchronous modes (``on_durable`` fires
        immediately in that case because the caller does not wait for
        durability).  The separate args tuple lets the per-hop ring path pass
        a bound method instead of allocating a closure per vote.
        """
        record = LogRecord(instance, ballot, value, size_bytes)
        self._records[instance] = record

        if self._memory_mode:
            if on_durable is not None:
                self._simulator._post(0.0, on_durable, on_durable_args)
            return None

        if self._synchronous:
            # Synchronous mode with batching disabled: one device write per
            # record (Section 8.2).
            return self.disk.write(
                size_bytes + _RECORD_OVERHEAD,
                on_complete=on_durable,
                on_complete_args=on_durable_args,
            )

        # Asynchronous mode: buffer and flush in the background.
        self._pending.append(record)
        self._schedule_flush()
        if on_durable is not None:
            self._simulator._post(0.0, on_durable, on_durable_args)
        return None

    def _schedule_flush(self) -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        self._simulator._post(self._flush_interval, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._pending or self.disk is None:
            return
        batch = self._pending
        self._pending = []
        total = sum(r.size_bytes + _RECORD_OVERHEAD for r in batch)
        self.disk.write(total)
        self._durable_up_to_bytes += total
        if self._pending:
            self._schedule_flush()

    # ------------------------------------------------------------------- read
    def get(self, instance: int) -> Optional[LogRecord]:
        """Return the record for ``instance`` (``None`` when absent/trimmed)."""
        return self._records.get(instance)

    def __contains__(self, instance: int) -> bool:
        return instance in self._records

    def __len__(self) -> int:
        return len(self._records)

    def instances(self) -> List[int]:
        """Sorted instance numbers currently in the log."""
        return sorted(self._records)

    def highest_instance(self) -> int:
        """Highest instance recorded, or -1 when the log is empty."""
        return max(self._records) if self._records else -1

    # ------------------------------------------------------------------- trim
    def trim(self, up_to_instance: int) -> int:
        """Delete records for every instance ``<= up_to_instance``.

        Mirrors the coordinator-driven log trimming of Section 5; returns the
        number of records removed.
        """
        to_remove = [i for i in self._records if i <= up_to_instance]
        for i in to_remove:
            del self._records[i]
        return len(to_remove)

    # ------------------------------------------------------------------ crash
    def crash(self) -> None:
        """Simulate a process crash.

        In-memory logs lose everything.  Persistent logs keep every record
        already flushed; asynchronous logs lose the records still sitting in
        the flush buffer (recorded in :attr:`lost_on_crash`).
        """
        if self.mode is StorageMode.IN_MEMORY:
            self._lost_on_crash += len(self._records)
            self._records.clear()
            return
        if not self.mode.synchronous and self._pending:
            for record in self._pending:
                self._records.pop(record.instance, None)
            self._lost_on_crash += len(self._pending)
            self._pending.clear()

    @property
    def lost_on_crash(self) -> int:
        """Total records lost across all crashes of this log."""
        return self._lost_on_crash
