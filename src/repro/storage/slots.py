"""Pre-allocated in-memory acceptor buffer.

Acceptors using in-memory storage in the paper have access to pre-allocated
buffers with 15 000 slots of 32 KB each, allocated outside the Java heap so
garbage collection does not disturb performance (Section 7.1).  The simulated
equivalent is a bounded, slot-based store keyed by consensus instance: it
enforces the slot-count and slot-size limits and exposes occupancy so that
tests can exercise the bound and the trimming interplay.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = ["SlotBuffer", "SlotFullError", "SlotEntry"]


class SlotFullError(RuntimeError):
    """Raised when the buffer has no free slot for a new instance.

    In the real system the acceptor would block the ring until trimming frees
    slots; protocol code catches this to apply back-pressure.
    """


@dataclass(slots=True)
class SlotEntry:
    """One stored consensus instance value.

    ``slots=True``: one is allocated per decided instance on the ring path.
    """

    instance: int
    value: Any
    size_bytes: int


class SlotBuffer:
    """Bounded in-memory store of consensus-instance values.

    Parameters
    ----------
    slot_count:
        Maximum number of instances held at once (paper default: 15 000).
    slot_size_bytes:
        Maximum size of a single value (paper default: 32 KB).
    """

    DEFAULT_SLOTS = 15_000
    DEFAULT_SLOT_SIZE = 32 * 1024

    def __init__(
        self,
        slot_count: int = DEFAULT_SLOTS,
        slot_size_bytes: int = DEFAULT_SLOT_SIZE,
    ) -> None:
        if slot_count <= 0:
            raise ValueError("slot_count must be positive")
        if slot_size_bytes <= 0:
            raise ValueError("slot_size_bytes must be positive")
        self.slot_count = slot_count
        self.slot_size_bytes = slot_size_bytes
        self._slots: "OrderedDict[int, SlotEntry]" = OrderedDict()

    # ------------------------------------------------------------------ put
    def put(self, instance: int, value: Any, size_bytes: int) -> None:
        """Store ``value`` for ``instance``.

        Raises
        ------
        SlotFullError
            If the buffer is full and the instance is not already present.
        ValueError
            If the value exceeds the slot size.
        """
        if size_bytes > self.slot_size_bytes:
            raise ValueError(
                f"value of {size_bytes} bytes exceeds slot size {self.slot_size_bytes}"
            )
        if instance not in self._slots and len(self._slots) >= self.slot_count:
            raise SlotFullError(
                f"buffer full ({self.slot_count} slots); trim before storing instance {instance}"
            )
        self._slots[instance] = SlotEntry(instance=instance, value=value, size_bytes=size_bytes)

    # ------------------------------------------------------------------ get
    def get(self, instance: int) -> Optional[SlotEntry]:
        """Return the entry for ``instance`` or ``None`` if absent."""
        return self._slots.get(instance)

    def __contains__(self, instance: int) -> bool:
        return instance in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def instances(self) -> Iterator[int]:
        """Iterate over stored instance numbers in insertion order."""
        return iter(self._slots.keys())

    @property
    def occupancy(self) -> float:
        """Fraction of slots in use."""
        return len(self._slots) / self.slot_count

    @property
    def bytes_used(self) -> int:
        """Total bytes of stored values."""
        return sum(e.size_bytes for e in self._slots.values())

    # ----------------------------------------------------------------- trim
    def trim(self, up_to_instance: int) -> int:
        """Remove every entry with instance number ``<= up_to_instance``.

        Returns the number of entries removed.  This is how the acceptor log
        trimming of Section 5 frees space.
        """
        to_remove = [i for i in self._slots if i <= up_to_instance]
        for i in to_remove:
            del self._slots[i]
        return len(to_remove)

    def clear(self) -> None:
        """Drop every entry (acceptor crash with in-memory storage)."""
        self._slots.clear()
