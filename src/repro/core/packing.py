"""Recursive unpacking of batched payloads.

Two batching layers can wrap the commands a replica ultimately executes:

* **client batching** — a :class:`~repro.core.client.CommandBatch` groups
  several :class:`~repro.core.client.Command` objects addressed to one
  partition into a single multicast value (Sections 7.2/7.3);
* **coordinator instance batching** — a
  :class:`~repro.ringpaxos.coordinator.PackedValues` payload groups several
  proposed values (each possibly a command batch) into one consensus
  instance.

Every consumer that looks inside a decided value — the merger's emit path,
the SMR apply path, the chaos oracle's expected-order digests and the
sharded engine's payload identities — needs the same unpacking rules.  This
module is the single implementation; the ``isinstance(payload,
PackedValues)`` checks that used to be copied across those layers all route
here now.

The unpacking is recursive: a ``PackedValues`` of ``PackedValues`` (which a
re-proposed repaired instance can in principle produce) flattens all the way
down, and skips nested inside a pack are dropped exactly like top-level
skips.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from ..paxos.messages import SKIP, ProposalValue
from ..ringpaxos.coordinator import PackedValues
from .client import Command, CommandBatch

__all__ = [
    "PackedValues",
    "iter_values",
    "iter_payloads",
    "iter_commands",
    "packed_proposal_ids",
]


def iter_values(value: ProposalValue) -> Iterator[ProposalValue]:
    """The leaf :class:`ProposalValue`\\ s inside one decided value.

    A plain value yields itself; a value whose payload is
    :class:`PackedValues` yields every constituent value, recursively.  Each
    leaf keeps its original ``(proposer, proposal_id, created_at)`` metadata,
    which is what lets clients match acks and account per-command latency
    after packing.
    """
    payload = value.payload
    if isinstance(payload, PackedValues):
        for inner in payload.values:
            yield from iter_values(inner)
    else:
        yield value


def iter_payloads(payload: Any) -> Iterator[Any]:
    """The leaf application payloads inside ``payload``, skips dropped.

    Mirrors the merger's emit rules: a skip delivers nothing, a packed
    payload delivers each constituent payload in pack order (recursively),
    anything else delivers itself.  Command batches are *not* opened here —
    a batch is one application payload; use :func:`iter_commands` for the
    command level.
    """
    if payload is SKIP:
        return
    if isinstance(payload, PackedValues):
        for inner in payload.values:
            yield from iter_payloads(inner.payload)
    else:
        yield payload


def iter_commands(payload: Any) -> Iterator[Command]:
    """Every :class:`Command` inside ``payload``, in delivery order.

    Opens both batching layers — ``PackedValues`` recursively (via
    :func:`iter_payloads`) and ``CommandBatch`` — and drops anything that is
    not a command (skips, opaque benchmark payloads).
    """
    for leaf in iter_payloads(payload):
        if isinstance(leaf, CommandBatch):
            yield from leaf.commands
        elif isinstance(leaf, Command):
            yield leaf


def packed_proposal_ids(value: ProposalValue) -> List[Tuple[str, int]]:
    """The ``(proposer, proposal_id)`` pairs a decided value answers.

    For a plain value this is its own single pair; for a packed value it is
    the pair of every constituent, in pack order — the identities acks and
    retries must be matched against.
    """
    return [(leaf.proposer, leaf.proposal_id) for leaf in iter_values(value)]
