"""State-machine replication on top of atomic multicast.

Both services of the paper (MRP-Store and dLog) replicate their partitions
with the state-machine approach: every replica of a partition delivers the
same sequence of commands — provided by Multi-Ring Paxos — and applies them
deterministically, so all replicas traverse the same states (Section 6).

:class:`StateMachineReplica` implements everything that is common:

* executing delivered commands (service subclasses implement
  :meth:`apply_command`),
* answering clients (first response wins at the client; multi-partition
  commands are answered per partition),
* periodic checkpointing through :class:`~repro.recovery.checkpointing.ReplicaCheckpointer`,
* serving checkpoint requests from recovering peers,
* recovering after a crash through :class:`~repro.recovery.recover.RecoveryManager`.

:class:`ProposerFrontend` is the thin process clients talk to: it receives
client requests (possibly batched) and multicasts them to the requested
group.

:class:`ReactiveReplicaHost` is the service half of the sharded engine's
streaming merge stage: it hosts a *real* replica in the parent process and
applies merged cross-ring deliveries to it barrier by barrier, so clients can
read merged shared-learner state — with latency accounting — while the shards
are still running.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..net.message import ClientRequest, ClientResponse
from ..paxos.messages import CheckpointReply, CheckpointRequest, ProposalValue, RetransmitReply
from ..recovery.checkpointing import ReplicaCheckpointer
from ..recovery.recover import RecoveryManager, RecoveryPhase
from ..sim.actor import Environment
from ..sim.disk import SSD_PROFILE
from ..storage.checkpoint import CheckpointId, CheckpointStore
from ..multiring.merge import MergeCursor
from ..multiring.process import MultiRingProcess
from .client import Command, CommandBatch
from .config import MultiRingConfig
from .packing import PackedValues, iter_commands, iter_payloads

__all__ = ["StateMachineReplica", "ProposerFrontend", "ReactiveReplicaHost"]


class StateMachineReplica(MultiRingProcess):
    """A replica executing commands delivered by Multi-Ring Paxos.

    Subclasses implement the service semantics by overriding
    :meth:`apply_command`, :meth:`snapshot_state`, :meth:`install_state_snapshot`
    and :meth:`reset_state`.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str = "dc1",
        config: Optional[MultiRingConfig] = None,
        respond_to_clients: bool = True,
    ) -> None:
        config = config or MultiRingConfig()
        super().__init__(env, name, site, messages_per_round=config.messages_per_round)
        self.config = config
        self.respond_to_clients = respond_to_clients
        self.checkpoint_store = CheckpointStore(env, profile=SSD_PROFILE, name=f"{name}.ckpt")
        self._checkpointer: Optional[ReplicaCheckpointer] = None
        self._recovery: Optional[RecoveryManager] = None
        self._commands_applied = 0
        self._recovering = False
        # type(message) -> bound handler; same pattern as RingNode.HANDLERS.
        self._service_handlers = {
            cls: getattr(self, name) for cls, name in self.SERVICE_HANDLERS.items()
        }

    # ----------------------------------------------------------- service API
    def apply_command(self, group_id: int, command: Command) -> Any:
        """Execute one command against the service state (override)."""
        raise NotImplementedError

    def snapshot_state(self) -> Tuple[Any, int]:
        """Return ``(state, size_bytes)`` — a deep copy of the service state."""
        raise NotImplementedError

    def install_state_snapshot(self, state: Any) -> None:
        """Replace the service state with a downloaded snapshot."""
        raise NotImplementedError

    def reset_state(self) -> None:
        """Drop the in-memory service state (called on crash/restart)."""
        raise NotImplementedError

    # ----------------------------------------------------------------- start
    def on_start(self) -> None:
        super().on_start()
        self._ensure_checkpointer()
        if self.config.checkpoint_interval is not None:
            self.set_periodic_timer(self.config.checkpoint_interval, self._checkpoint_tick)

    def _ensure_checkpointer(self) -> None:
        groups = self.subscribed_groups()
        if not groups or self._checkpointer is not None:
            return
        self._checkpointer = ReplicaCheckpointer(
            store=self.checkpoint_store,
            snapshot_fn=self.snapshot_state,
            group_ids=groups,
            at_round_boundary=(
                (lambda: self.merger.is_round_boundary()) if self.merger else (lambda: True)
            ),
        )

    def _checkpoint_tick(self) -> None:
        if self._checkpointer is not None and not self._recovering:
            self._checkpointer.request_checkpoint()

    # -------------------------------------------------------------- delivery
    def on_deliver(self, group_id: int, instance: int, value: ProposalValue) -> None:
        payload = value.payload
        if isinstance(payload, CommandBatch):
            for command in payload:
                self._apply_and_respond(group_id, command)
        elif isinstance(payload, Command):
            self._apply_and_respond(group_id, payload)
        elif isinstance(payload, PackedValues):
            # A coordinator-packed instance.  The merger normally unpacks
            # these before delivery, but paths that bypass it — recovery
            # retransmission injection, tests driving a replica directly —
            # must not silently count a whole pack as one opaque command.
            for leaf in iter_payloads(payload):
                if isinstance(leaf, CommandBatch):
                    for command in leaf:
                        self._apply_and_respond(group_id, command)
                elif isinstance(leaf, Command):
                    self._apply_and_respond(group_id, leaf)
                else:
                    self._commands_applied += 1
        else:
            # Opaque payload (e.g. the dummy service of the baseline bench).
            self._commands_applied += 1
        if self._checkpointer is not None:
            self._checkpointer.mark_delivered(group_id, instance)
            self._checkpointer.maybe_take_deferred()

    def _apply_and_respond(self, group_id: int, command: Command) -> None:
        result = self.apply_command(group_id, command)
        self._commands_applied += 1
        self.env.metrics.throughput(f"service.{self.name}.ops").record(1.0)
        if self.respond_to_clients and command.client:
            self.send(
                command.client,
                ClientResponse(
                    payload_bytes=command.response_size,
                    request_id=command.command_id,
                    result={"group_id": group_id, "value": result},
                    replica=self.name,
                ),
            )

    @property
    def commands_applied(self) -> int:
        """Total commands applied by this replica since it (re)started."""
        return self._commands_applied

    # ---------------------------------------------------------- trim support
    def safe_instance_for(self, group_id: int) -> int:
        if self._checkpointer is None:
            return -1
        return self._checkpointer.safe_instance(group_id)

    # ------------------------------------------------------ recovery serving
    #: Service-plane dispatch table (class attribute so subclasses can extend
    #: it): exact message class -> handler method name, resolved to bound
    #: methods once at construction.  Anything not in the table is client
    #: traffic.
    SERVICE_HANDLERS: Dict[type, str] = {
        CheckpointRequest: "_handle_checkpoint_request",
        CheckpointReply: "_handle_checkpoint_reply",
        RetransmitReply: "_handle_retransmit_reply",
    }

    def on_service_message(self, sender: str, message: Any) -> None:
        handler = self._service_handlers.get(message.__class__)
        if handler is not None:
            handler(sender, message)
        else:
            self.on_client_message(sender, message)

    def _handle_checkpoint_request(self, sender: str, message: CheckpointRequest) -> None:
        self._serve_checkpoint_request(sender, message)

    def _handle_checkpoint_reply(self, sender: str, message: CheckpointReply) -> None:
        if self._recovery is not None:
            self._recovery.handle_checkpoint_reply(message)

    def _handle_retransmit_reply(self, sender: str, message: RetransmitReply) -> None:
        if self._recovery is not None:
            self._recovery.handle_retransmit_reply(message)

    def on_client_message(self, sender: str, message: Any) -> None:
        """Hook for service-specific client traffic (override as needed)."""

    def _serve_checkpoint_request(self, sender: str, message: CheckpointRequest) -> None:
        latest = self.checkpoint_store.latest()
        if latest is None:
            self.send(sender, CheckpointReply(replica=self.name, checkpoint_id=None))
            return
        if not message.include_state:
            self.send(
                sender,
                CheckpointReply(replica=self.name, checkpoint_id=latest.checkpoint_id),
            )
            return
        self.send(
            sender,
            CheckpointReply(
                replica=self.name,
                checkpoint_id=latest.checkpoint_id,
                state=latest.state,
                includes_state=True,
                state_size_bytes=latest.size_bytes,
            ),
        )

    # --------------------------------------------------------- crash/restart
    def on_crash(self) -> None:
        super().on_crash()
        self.reset_state()
        self._commands_applied = 0
        self._checkpointer = None
        self._recovery = None

    def on_restart(self) -> None:
        super().on_restart()
        self._ensure_checkpointer()
        if self.config.checkpoint_interval is not None:
            self.set_periodic_timer(self.config.checkpoint_interval, self._checkpoint_tick)
        self.start_recovery()

    def start_recovery(self, partition_peers: Optional[List[str]] = None) -> None:
        """Begin the recovery protocol of Section 5.2."""
        groups = self.subscribed_groups()
        if not groups:
            return
        peers = partition_peers if partition_peers is not None else self._default_partition_peers()
        acceptors_by_group = {
            g: [a for a in self.node(g).overlay.acceptors if a != self.name]
            for g in groups
        }
        self._recovering = True
        self._recovery = RecoveryManager(
            host=self,
            group_ids=groups,
            partition_peers=peers,
            acceptors_by_group=acceptors_by_group,
            install_state=self._install_checkpoint,
            inject_decided=self._inject_recovered,
            on_complete=self._recovery_complete,
        )
        self._recovery.start()

    def _default_partition_peers(self) -> List[str]:
        """Learners of my rings having the same subscription set as me."""
        groups = set(self.subscribed_groups())
        peers: List[str] = []
        for g in groups:
            for learner in self.node(g).overlay.learners:
                if learner == self.name or learner in peers:
                    continue
                peer = self.env.actor(learner) if self.env.has_actor(learner) else None
                if isinstance(peer, MultiRingProcess) and set(peer.subscribed_groups()) == groups:
                    peers.append(learner)
        return sorted(peers)

    def _install_checkpoint(self, state: Any, checkpoint_id: CheckpointId) -> None:
        self.install_state_snapshot(state)
        positions = checkpoint_id.as_dict()
        for group, instance in positions.items():
            if group in self.ring_ids():
                node = self.node(group)
                if node.learner is not None:
                    node.learner.fast_forward(instance)
        if self.merger is not None:
            self.merger.fast_forward(positions)
        if self._checkpointer is not None:
            for group, instance in positions.items():
                if instance >= 0:
                    self._checkpointer.mark_delivered(group, instance)

    def _inject_recovered(self, group_id: int, instance: int, value: ProposalValue) -> None:
        node = self.node(group_id)
        if node.learner is not None:
            node.learner.inject_decided(instance, value)

    def _recovery_complete(self) -> None:
        self._recovering = False
        self.env.metrics.counter(f"recovery.{self.name}.completed").increment()

    @property
    def recovery_phase(self) -> RecoveryPhase:
        """Where the replica currently stands in its recovery (IDLE when none)."""
        if self._recovery is None:
            return RecoveryPhase.IDLE
        return self._recovery.phase

    @property
    def checkpointer(self) -> Optional[ReplicaCheckpointer]:
        """The replica's checkpointer (``None`` before the first start)."""
        return self._checkpointer


class ProposerFrontend(MultiRingProcess):
    """A proposer-only process that turns client requests into multicasts.

    Clients of MRP-Store and dLog connect to proposers (Thrift in the
    prototype); the proposer multicasts the command — or the 32 KB batch of
    commands — to the ring of the partition it addresses.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str = "dc1",
        config: Optional[MultiRingConfig] = None,
    ) -> None:
        config = config or MultiRingConfig()
        super().__init__(env, name, site, messages_per_round=config.messages_per_round)
        self.config = config
        self._forwarded = 0

    def on_service_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ClientRequest):
            return
        command = message.command
        if isinstance(command, (Command, CommandBatch)):
            group_id = command.group_id
            size = command.size_bytes
            self.multicast(group_id, command, size)
            self._forwarded += 1

    @property
    def forwarded(self) -> int:
        """Client requests forwarded into the ordering layer."""
        return self._forwarded


class ReactiveReplicaHost:
    """Drives a real replica from the streaming merge, outside the shards.

    The reactive half of merge-stage sharding: a deployment whose rings share
    learners only runs one ring component per shard, every shard ships the
    decision-stream segments it recorded since the last barrier, and this
    host — living in the *parent* process — feeds them through a
    :class:`~repro.multiring.merge.MergeCursor` and applies each merged
    delivery to a real :class:`StateMachineReplica` (an MRP-Store or dLog
    replica) the moment it becomes final.  Clients can therefore read merged
    cross-ring state *during* a sharded run instead of waiting for an
    offline replay, and the cumulative delivery sequence is bit-identical to
    :func:`~repro.multiring.merge.replay_streams` over the concatenated
    segments (and hence to the single-process merger).

    Latency accounting: every applied :class:`~repro.core.client.Command`
    records ``joint watermark − command.created_at`` — the client-visible
    freshness of the merged state at the barrier that made the command
    readable — into ``reactive.<replica>.latency`` on the replica's metric
    registry.

    Fault tolerance: a partitioned or crashed producer stops covering its
    rings (barriers arrive with ``covered`` excluding them), the joint
    watermark stalls at the last honest mark, and the host simply keeps
    ingesting — queued deliveries wait at the round-robin gate until the
    ring heals and its backlog arrives.  Each such stall is recorded as a
    closed ``(start, end)`` window (:attr:`stall_windows`, durations in
    ``reactive.<replica>.stall``), and the per-command latency accounting
    subtracts the overlap of a command's in-flight interval with the stall
    windows: the stall is an availability incident, not merge latency, and
    folding it in would drown the freshness signal the metric exists for.

    Parameters
    ----------
    replica:
        The service replica to drive.  It lives in a parent-side
        :class:`~repro.sim.actor.Environment` and never joins a ring — the
        cursor replaces its merger — and should be constructed with
        ``respond_to_clients=False`` (its clients are the parent's callers,
        not simulated actors).
    group_ids:
        The rings the replica (as the deployment's shared learner) is
        subscribed to.
    messages_per_round:
        The deterministic-merge parameter ``M``.
    retain_history:
        Keep the full applied-delivery sequence for :attr:`deliveries` (the
        differential digests need it).  Pass ``False`` when only the live
        replica state matters — the host then holds no more than one
        barrier's deliveries in memory.
    """

    def __init__(
        self,
        replica: StateMachineReplica,
        group_ids: List[int],
        messages_per_round: int = 1,
        retain_history: bool = True,
    ) -> None:
        self.replica = replica
        self._latency = replica.env.metrics.latency(f"reactive.{replica.name}.latency")
        self._stall = replica.env.metrics.latency(f"reactive.{replica.name}.stall")
        self._stall_windows: List[Tuple[float, float]] = []
        self._stall_open: Optional[float] = None
        self._cursor = MergeCursor(
            group_ids,
            messages_per_round=messages_per_round,
            on_deliver=self._apply,
            retain_history=retain_history,
        )
        #: wall-clock seconds spent inside :meth:`ingest` (cursor feed plus
        #: replica application) — the per-host share of the merge stage, so
        #: overlap accounting can attribute ingest cost to hosts
        self.ingest_seconds = 0.0
        #: barriers fed through :meth:`ingest`
        self.barriers_ingested = 0

    # ----------------------------------------------------------------- input
    def ingest(
        self,
        segments: Dict[int, Any],
        watermark: Optional[float] = None,
        covered: Optional[List[int]] = None,
    ) -> int:
        """Feed one barrier's decision-stream segments; apply what merges.

        ``segments`` maps ring ids to the entries recorded since the last
        barrier — tagged :class:`~repro.multiring.merge.RingSegment` values
        or bare ``(instance, value)`` lists; rings with nothing new may be
        absent.  ``watermark`` is the barrier time; it advances every ring in
        ``covered`` (default: all) — producers exclude rings whose streams
        are not known complete up to the barrier, e.g. because their learner
        is crashed, and the joint watermark then stalls honestly until the
        ring heals.  Every delivery the round-robin can finalise is applied
        to the replica before this returns.  Returns the number of
        deliveries applied.
        """
        started = perf_counter()
        # Advance the covered marks (and settle the stall bookkeeping)
        # *before* feeding entries, so deliveries applied at the healing
        # barrier already see the closed stall window.
        if watermark is not None:
            self._cursor.feed_segments({}, watermark=watermark, groups=covered)
            joint = self._cursor.watermark
            if joint is not None:
                if joint < watermark:
                    if self._stall_open is None:
                        self._stall_open = joint
                elif self._stall_open is not None:
                    window = (self._stall_open, joint)
                    self._stall_windows.append(window)
                    self._stall.record(window[1] - window[0])
                    self._stall_open = None
        applied = len(self._cursor.feed_segments(segments))
        self.barriers_ingested += 1
        self.ingest_seconds += perf_counter() - started
        return applied

    def _apply(self, group_id: int, instance: int, value: ProposalValue) -> None:
        self.replica.on_deliver(group_id, instance, value)
        watermark = self._cursor.watermark
        if watermark is None:
            return
        # The shared recursive unpacker opens both batching layers (packed
        # instances and command batches), so each inner command's own
        # ``created_at`` drives its latency sample even after packing.
        for command in iter_commands(value.payload):
            latency = watermark - command.created_at
            # A stall is an availability incident, not merge latency:
            # subtract the in-flight interval's overlap with every
            # closed stall window.
            for start, end in self._stall_windows:
                overlap = min(watermark, end) - max(command.created_at, start)
                if overlap > 0.0:
                    latency -= overlap
            self._latency.record(max(0.0, latency))

    # ------------------------------------------------------------ inspection
    @property
    def groups(self) -> List[int]:
        """Rings feeding this replica's merge, in merge order."""
        return self._cursor.groups

    @property
    def watermark(self) -> Optional[float]:
        """Simulated time up to which the merged state is complete."""
        return self._cursor.watermark

    @property
    def deliveries(self) -> List[Tuple[int, int, ProposalValue]]:
        """Every merged delivery applied so far, in merge order.

        Only complete with ``retain_history=True`` (the default).
        """
        return self._cursor.merged

    @property
    def delivered_count(self) -> int:
        """Merged deliveries applied so far (skips excluded)."""
        return self._cursor.delivered_count

    @property
    def commands_applied(self) -> int:
        """Commands the hosted replica executed."""
        return self.replica.commands_applied

    @property
    def stall_windows(self) -> List[Tuple[float, float]]:
        """Closed ``(start, end)`` watermark-stall windows, in order."""
        return list(self._stall_windows)

    @property
    def stalled(self) -> bool:
        """Whether the joint watermark is currently stalled behind a barrier."""
        return self._stall_open is not None

    def latency_stats(self) -> Dict[str, float]:
        """Client-visible merge latency summary, in milliseconds.

        Stall windows are excluded from the per-command latencies (see the
        class docstring) and summarised separately by the two stall keys.
        """
        recorder = self._latency
        return {
            "count": float(recorder.count),
            "mean_ms": recorder.mean() * 1e3,
            "p95_ms": recorder.percentile(95) * 1e3,
            "p99_ms": recorder.percentile(99) * 1e3,
            "stall_count": float(len(self._stall_windows)),
            "stalled_ms": sum(e - s for s, e in self._stall_windows) * 1e3,
        }
