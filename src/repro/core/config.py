"""Configuration of a Multi-Ring Paxos deployment.

:class:`MultiRingConfig` gathers every knob the paper exposes:

* ``M`` — consensus instances consumed from one ring before the deterministic
  merge moves to the next ring;
* ``Δ`` (``rate_interval``) and ``λ`` (``max_rate``) — the rate-leveling
  parameters;
* the acceptor storage mode (Figure 3's five modes);
* client/coordinator batching;
* checkpoint and trim periods used by the recovery protocol.

Two presets mirror Section 8.2: :func:`local_config` (within a datacenter:
``M=1``, ``Δ=5 ms``, ``λ=9000``) and :func:`global_config` (across
datacenters: ``M=1``, ``Δ=20 ms``, ``λ=2000``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..multiring.ratelevel import RateLeveler
from ..ringpaxos.coordinator import InstanceBatchPolicy
from ..ringpaxos.node import RingNodeConfig
from ..sim.cpu import CpuCostModel
from ..sim.disk import StorageMode

__all__ = ["MultiRingConfig", "local_config", "global_config"]

#: Maximum client batch size (Sections 7.2 and 7.3).
CLIENT_BATCH_BYTES = 32 * 1024


@dataclass
class MultiRingConfig:
    """All tunables of one Multi-Ring Paxos deployment.

    The paper's symbols map onto fields as follows:

    ========  ======================  =========================================
    paper     field                   meaning
    ========  ======================  =========================================
    ``M``     ``messages_per_round``  consensus instances the deterministic
                                      merge consumes from one ring before
                                      moving to the next (Section 4)
    ``Δ``     ``rate_interval``       rate-leveling interval in seconds; every
                                      Δ an under-loaded ring's coordinator
                                      proposes skips (``None`` disables)
    ``λ``     ``max_rate``            rate-leveling maximum expected rate,
                                      messages per second
    ========  ======================  =========================================

    Presets: :func:`local_config` (intra-datacenter: M=1, Δ=5 ms, λ=9000) and
    :func:`global_config` (cross-datacenter: M=1, Δ=20 ms, λ=2000), both from
    Section 8.2.  Use :meth:`with_` to derive variants::

        config = local_config().with_(batching_enabled=True)

    The remaining fields control acceptor storage (Figure 3's five modes),
    coordinator batching (Sections 7.2/7.3), the recovery machinery
    (checkpoint/trim periods, Section 5) and the fault-repair timers added by
    the chaos substrate (``gap_repair_interval``, default off so failure-free
    benchmarks match the paper).
    """

    #: Deterministic-merge parameter M: instances per ring per round.
    messages_per_round: int = 1
    #: Rate-leveling interval Δ in seconds (``None`` disables skip proposals).
    rate_interval: Optional[float] = 0.005
    #: Rate-leveling maximum expected rate λ in messages per second.
    max_rate: float = 9000.0
    #: Acceptor stable-storage mode.
    storage_mode: StorageMode = StorageMode.IN_MEMORY
    #: Coordinator instance batching (disabled for the Figure 3 baseline).
    batching_enabled: bool = False
    #: Maximum bytes of payload packed into one instance when batching.
    batch_max_bytes: int = CLIENT_BATCH_BYTES
    #: Size-or-timeout assembly: how long the coordinator may hold a partial
    #: batch waiting for more values (seconds).  ``0`` disables the hold —
    #: only co-queued values share an instance, as before the delay trigger.
    batch_max_delay: float = 0.0005
    #: Same-actor event-run batch dispatch in the kernel (see
    #: :class:`repro.sim.kernel.Simulator`).  Off by default so the frozen
    #: seed differentials keep anchoring the exact default-path loop.
    kernel_batch_dispatch: bool = False
    #: Aggregate network message/byte accounting (``Network.stats``).  On by
    #: default — the fault differentials pin drop/message counts; benchmarks
    #: that never read the counters switch it off to take the network's
    #: no-stats send lane.  Does not change delivery times or order.
    network_stats: bool = True
    #: How often replicas checkpoint their state (seconds); None disables it.
    checkpoint_interval: Optional[float] = 10.0
    #: How often coordinators run the trim protocol (seconds); None disables it.
    trim_interval: Optional[float] = 20.0
    #: How often stalled learners probe acceptors for missing decisions
    #: (seconds); None disables gap repair (the default — it only matters when
    #: faults can drop circulating decisions, and the chaos harness enables it).
    gap_repair_interval: Optional[float] = None
    #: CPU cost model charged per protocol message.
    cpu_model: CpuCostModel = field(default_factory=CpuCostModel)

    # ------------------------------------------------------------ derivation
    def rate_leveler(self) -> Optional[RateLeveler]:
        """The rate-leveling policy, or ``None`` when disabled."""
        if self.rate_interval is None:
            return None
        return RateLeveler(interval=self.rate_interval, max_rate=self.max_rate)

    def batch_policy(self) -> InstanceBatchPolicy:
        """The coordinator batching policy derived from this configuration."""
        return InstanceBatchPolicy(
            enabled=self.batching_enabled,
            max_bytes=self.batch_max_bytes,
            max_delay=self.batch_max_delay,
        )

    def ring_node_config(self) -> RingNodeConfig:
        """Materialise the per-ring node configuration."""
        return RingNodeConfig(
            storage_mode=self.storage_mode,
            cpu_model=self.cpu_model,
            batch_policy=self.batch_policy(),
            rate_interval=self.rate_interval,
            rate_policy=self.rate_leveler(),
            trim_interval=self.trim_interval,
            gap_repair_interval=self.gap_repair_interval,
            learner_batch_drain=self.batching_enabled,
        )

    def with_(self, **changes) -> "MultiRingConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **changes)


def local_config(storage_mode: StorageMode = StorageMode.IN_MEMORY) -> MultiRingConfig:
    """The paper's intra-datacenter configuration (M=1, Δ=5 ms, λ=9000)."""
    return MultiRingConfig(
        messages_per_round=1,
        rate_interval=0.005,
        max_rate=9000.0,
        storage_mode=storage_mode,
    )


def global_config(storage_mode: StorageMode = StorageMode.ASYNC_SSD) -> MultiRingConfig:
    """The paper's cross-datacenter configuration (M=1, Δ=20 ms, λ=2000)."""
    return MultiRingConfig(
        messages_per_round=1,
        rate_interval=0.020,
        max_rate=2000.0,
        storage_mode=storage_mode,
    )
