"""Public library API: deployment façade, configuration, SMR and clients."""

from .amcast import AtomicMulticast, parse_roles
from .client import ClosedLoopClient, Command, CommandBatch, CommandBatcher, OpenLoopClient
from .config import MultiRingConfig, global_config, local_config
from .packing import PackedValues, iter_commands, iter_payloads, iter_values
from .smr import ProposerFrontend, ReactiveReplicaHost, StateMachineReplica
from .swarm import ChurnSpec, ClientSwarm, shared_factory

__all__ = [
    "AtomicMulticast",
    "parse_roles",
    "ClosedLoopClient",
    "OpenLoopClient",
    "Command",
    "CommandBatch",
    "CommandBatcher",
    "MultiRingConfig",
    "global_config",
    "local_config",
    "PackedValues",
    "iter_commands",
    "iter_payloads",
    "iter_values",
    "ProposerFrontend",
    "ReactiveReplicaHost",
    "StateMachineReplica",
    "ChurnSpec",
    "ClientSwarm",
    "shared_factory",
]
