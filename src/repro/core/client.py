"""Client-side building blocks: commands, batching and closed-loop clients.

The services of the paper share a client structure (Sections 7.2-7.3):

* a client addresses the proposer of the ring responsible for the data it
  touches;
* small commands going to the same partition may be *batched* into packets of
  up to 32 KB before being submitted;
* replicas execute delivered commands and answer the client directly (UDP in
  the prototype); for single-partition commands the client waits for the
  first response, for multi-partition commands (scans, multi-appends) it
  waits for at least one response from every partition involved.

:class:`Command` is the unit of work ordered by atomic multicast.
:class:`CommandBatch` is what a client batcher produces.
:class:`ClosedLoopClient` drives a fixed number of outstanding requests (the
paper's "client threads") and records per-command latency and throughput.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.message import ClientRequest, ClientResponse, Message
from ..sim.actor import Actor, Environment
from ..sim.network import register_wire_type

__all__ = [
    "Command",
    "CommandBatch",
    "CommandBatcher",
    "ClosedLoopClient",
    "OpenLoopClient",
    "RequestFactory",
]

_command_ids = itertools.count(1)


@dataclass
class Command:
    """One service command ordered through atomic multicast.

    Attributes
    ----------
    op:
        Operation name (e.g. ``"update"``, ``"append"``, ``"scan"``).
    args:
        Operation arguments (key, value, range bounds, ...).
    group_id:
        Multicast group the command is addressed to.
    size_bytes:
        Payload size used for wire/disk accounting.
    client / command_id:
        Identify where the response must go and which request it answers.
    created_at:
        Submission time; used for end-to-end latency.
    response_size:
        Size of the response payload sent back by replicas.
    """

    op: str
    args: Tuple = ()
    group_id: int = 0
    size_bytes: int = 64
    client: str = ""
    command_id: int = field(default_factory=lambda: next(_command_ids))
    created_at: float = 0.0
    response_size: int = 32


@dataclass
class CommandBatch:
    """Several commands for the same group packed into one request."""

    group_id: int = 0
    commands: List[Command] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """Total payload of the batch."""
        return sum(c.size_bytes for c in self.commands)

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)


# Commands ride inside cross-shard requests and decision streams: ship both
# in positional tuple form (see :func:`repro.sim.network.register_wire_type`).
register_wire_type(Command)
register_wire_type(CommandBatch)


class CommandBatcher:
    """Groups commands per partition up to a byte budget (32 KB by default)."""

    def __init__(self, max_bytes: int = 32 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._pending: Dict[int, List[Command]] = {}
        #: running byte total per group — kept in lockstep with ``_pending``
        #: so :meth:`add` is O(1) instead of re-summing the queue every time
        self._pending_bytes: Dict[int, int] = {}

    def add(self, command: Command) -> Optional[CommandBatch]:
        """Queue a command; returns a full batch when the budget is reached."""
        group_id = command.group_id
        queue = self._pending.setdefault(group_id, [])
        queue.append(command)
        total = self._pending_bytes.get(group_id, 0) + command.size_bytes
        self._pending_bytes[group_id] = total
        if total >= self.max_bytes:
            return self.flush_group(group_id)
        return None

    def flush_group(self, group_id: int) -> Optional[CommandBatch]:
        """Emit whatever is pending for ``group_id`` (``None`` when empty)."""
        queue = self._pending.pop(group_id, [])
        self._pending_bytes.pop(group_id, None)
        if not queue:
            return None
        return CommandBatch(group_id=group_id, commands=queue)

    def flush_all(self) -> List[CommandBatch]:
        """Emit every non-empty pending batch."""
        batches = [
            CommandBatch(group_id=g, commands=cmds)
            for g, cmds in self._pending.items()
            if cmds
        ]
        self._pending.clear()
        self._pending_bytes.clear()
        return batches

    def pending_count(self, group_id: int) -> int:
        """Commands currently queued for ``group_id``."""
        return len(self._pending.get(group_id, []))

    def pending_bytes(self, group_id: int) -> int:
        """Bytes currently queued for ``group_id``."""
        return self._pending_bytes.get(group_id, 0)


#: Builds the next command for a closed-loop client; receives the sequence
#: number of the request and returns the command (or a list of commands for
#: multi-partition operations) plus the set of groups whose response must be
#: awaited.
RequestFactory = Callable[[int], Tuple[Sequence[Command], Sequence[int]]]


class ClosedLoopClient(Actor):
    """A client keeping a fixed number of requests outstanding.

    Parameters
    ----------
    env, name, site:
        Standard actor arguments.
    frontends_by_group:
        Maps each multicast group to the process the client submits commands
        of that group to (a proposer of the group's ring).
    request_factory:
        Produces the commands of the next logical request.
    concurrency:
        Number of outstanding logical requests (the paper's client threads).
    metric_prefix:
        Prefix under which latency/throughput instruments are registered.
    max_requests:
        Optional cap on issued requests (useful in tests).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        frontends_by_group: Dict[int, str],
        request_factory: RequestFactory,
        concurrency: int = 1,
        site: str = "dc1",
        metric_prefix: str = "client",
        max_requests: Optional[int] = None,
    ) -> None:
        super().__init__(env, name, site)
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self._frontends = dict(frontends_by_group)
        self._factory = request_factory
        self._concurrency = concurrency
        self._metric_prefix = metric_prefix
        self._max_requests = max_requests
        self._issued = 0
        self._completed = 0
        #: per logical request: groups still to answer and submission time
        self._outstanding: Dict[int, Dict[str, Any]] = {}
        self._latency = env.metrics.latency(f"{metric_prefix}.latency")
        self._throughput = env.metrics.throughput(f"{metric_prefix}.throughput")

    # ----------------------------------------------------------------- start
    def on_start(self) -> None:
        for _ in range(self._concurrency):
            self._issue_next()

    # ------------------------------------------------------------ issue side
    def _issue_next(self) -> None:
        if not self.alive:
            return
        if self._max_requests is not None and self._issued >= self._max_requests:
            return
        sequence = self._issued
        self._issued += 1
        commands, await_groups = self._factory(sequence)
        request_key = sequence
        op_label = "-".join(sorted({c.op for c in commands})) or "noop"
        self._outstanding[request_key] = {
            "pending_groups": set(await_groups),
            "submitted_at": self.now,
            "commands": len(commands),
            "op": op_label,
        }
        for command in commands:
            command.client = self.name
            command.created_at = self.now
            command.command_id = request_key
            frontend = self._frontends[command.group_id]
            self.send(
                frontend,
                ClientRequest(
                    payload_bytes=command.size_bytes,
                    client=self.name,
                    command=command,
                    created_at=self.now,
                ),
            )

    # --------------------------------------------------------- response side
    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ClientResponse):
            return
        key = message.request_id
        entry = self._outstanding.get(key)
        if entry is None:
            return  # duplicate response from another replica of the same group
        group_id = message.result.get("group_id") if isinstance(message.result, dict) else None
        if group_id is not None:
            entry["pending_groups"].discard(group_id)
        else:
            entry["pending_groups"].clear()
        if entry["pending_groups"]:
            return
        del self._outstanding[key]
        self._completed += 1
        elapsed = self.now - entry["submitted_at"]
        self._latency.record(elapsed)
        self.env.metrics.latency(f"{self._metric_prefix}.latency.{entry['op']}").record(elapsed)
        self._throughput.record(1.0)
        self._issue_next()

    # ------------------------------------------------------------ inspection
    @property
    def issued(self) -> int:
        """Logical requests issued so far."""
        return self._issued

    @property
    def completed(self) -> int:
        """Logical requests completed so far."""
        return self._completed

    @property
    def outstanding(self) -> int:
        """Logical requests currently awaiting responses."""
        return len(self._outstanding)


class OpenLoopClient(Actor):
    """A client issuing requests at a fixed rate, independent of responses.

    The recovery experiment (Figure 8) operates the system "at 75 % of its
    peak load": the offered load must stay constant while replicas fail and
    recover, which a closed-loop client cannot do (its rate collapses with the
    system's).  The open-loop client issues one logical request every
    ``1 / rate`` seconds and records the latency of whatever completes.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        frontends_by_group: Dict[int, str],
        request_factory: RequestFactory,
        rate_per_second: float,
        site: str = "dc1",
        metric_prefix: str = "client",
        max_requests: Optional[int] = None,
    ) -> None:
        super().__init__(env, name, site)
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        self._frontends = dict(frontends_by_group)
        self._factory = request_factory
        self._interval = 1.0 / rate_per_second
        self._metric_prefix = metric_prefix
        self._max_requests = max_requests
        self._issued = 0
        self._completed = 0
        self._outstanding: Dict[int, Dict[str, Any]] = {}
        self._latency = env.metrics.latency(f"{metric_prefix}.latency")
        self._throughput = env.metrics.throughput(f"{metric_prefix}.throughput")

    def on_start(self) -> None:
        self.set_periodic_timer(self._interval, self._issue_next)

    def _issue_next(self) -> None:
        if self._max_requests is not None and self._issued >= self._max_requests:
            return
        sequence = self._issued
        self._issued += 1
        commands, await_groups = self._factory(sequence)
        self._outstanding[sequence] = {
            "pending_groups": set(await_groups),
            "submitted_at": self.now,
        }
        for command in commands:
            command.client = self.name
            command.created_at = self.now
            command.command_id = sequence
            self.send(
                self._frontends[command.group_id],
                ClientRequest(
                    payload_bytes=command.size_bytes,
                    client=self.name,
                    command=command,
                    created_at=self.now,
                ),
            )

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ClientResponse):
            return
        entry = self._outstanding.get(message.request_id)
        if entry is None:
            return
        group_id = message.result.get("group_id") if isinstance(message.result, dict) else None
        if group_id is not None:
            entry["pending_groups"].discard(group_id)
        else:
            entry["pending_groups"].clear()
        if entry["pending_groups"]:
            return
        del self._outstanding[message.request_id]
        self._completed += 1
        self._latency.record(self.now - entry["submitted_at"])
        self._throughput.record(1.0)

    @property
    def issued(self) -> int:
        """Logical requests issued so far."""
        return self._issued

    @property
    def completed(self) -> int:
        """Logical requests completed so far."""
        return self._completed
