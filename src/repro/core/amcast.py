"""Deployment façade: build and run a Multi-Ring Paxos system.

:class:`AtomicMulticast` wires together everything a deployment needs — the
simulation environment, the network and topology, the coordination service,
the ring overlays and the processes — and exposes the handful of operations
services and benchmarks use:

* :meth:`create_ring` — declare a ring (one multicast group) and enrol its
  member processes with their roles;
* :meth:`start` / :meth:`run` — run the deployment;
* :meth:`remove_from_ring` / :meth:`add_to_ring` — reconfigure a ring when a
  member fails or rejoins (the paper delegates this to Zookeeper).

Example
-------
>>> from repro.core import AtomicMulticast, MultiRingConfig
>>> from repro.multiring import MultiRingProcess
>>> system = AtomicMulticast(seed=1)
>>> nodes = [MultiRingProcess(system.env, f"n{i}") for i in range(3)]
>>> _ = system.create_ring(0, [(n.name, "pal") for n in nodes])
>>> system.start()
>>> delivered = []
>>> nodes[0].on_deliver = lambda g, i, v: delivered.append(v.payload)
>>> _ = nodes[1].multicast(0, payload="hello", size_bytes=100)
>>> _ = system.run(until=1.0)
>>> delivered
['hello']
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..coord.registry import CoordinationService
from ..multiring.process import MultiRingProcess
from ..net.ring import RingMember, RingOverlay
from ..sim.actor import Actor, Environment
from ..sim.disk import Disk
from ..sim.kernel import Simulator
from ..sim.network import Network
from ..sim.topology import Topology, single_datacenter
from .config import MultiRingConfig

__all__ = ["AtomicMulticast", "parse_roles"]

#: Member specification accepted by :meth:`AtomicMulticast.create_ring`: either
#: a fully built :class:`RingMember` or ``(process_name, roles)`` where roles
#: is a string containing any of the letters ``p`` (proposer), ``a``
#: (acceptor) and ``l`` (learner).
MemberSpec = Union[RingMember, Tuple[str, str]]


def parse_roles(name: str, roles: str) -> RingMember:
    """Build a :class:`RingMember` from a compact role string.

    >>> parse_roles("n1", "pal")
    RingMember(name='n1', proposer=True, acceptor=True, learner=True)
    """
    roles = roles.lower()
    unknown = set(roles) - {"p", "a", "l"}
    if unknown:
        raise ValueError(f"unknown role letters: {sorted(unknown)}")
    return RingMember(
        name=name,
        proposer="p" in roles,
        acceptor="a" in roles,
        learner="l" in roles,
    )


class AtomicMulticast:
    """A complete Multi-Ring Paxos deployment."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        config: Optional[MultiRingConfig] = None,
        seed: int = 0,
        jitter_fraction: float = 0.05,
        profile: Optional[object] = None,
    ) -> None:
        """Build an empty deployment.

        ``jitter_fraction`` is forwarded to the :class:`Network`; sharded
        differential tests set it to ``0`` because jitter draws come from one
        shared stream whose order a merged run and a sharded run interleave
        differently.  ``profile`` installs a
        :class:`repro.sim.profile.SimProfile` on the kernel; the default
        ``None`` keeps the uninstrumented run loop.
        """
        self.config = config or MultiRingConfig()
        self.env = Environment(
            simulator=Simulator(
                batch_dispatch=self.config.kernel_batch_dispatch,
                profile=profile,
            ),
            seed=seed,
        )
        self.topology = topology or single_datacenter()
        self.network = Network(self.env, self.topology, jitter_fraction=jitter_fraction)
        if not self.config.network_stats:
            # Duck-typed: the kernel benchmark injects LegacyNetwork (frozen,
            # three-argument constructor, always-on stats) through this module
            # global, so the fast lane is requested only where it exists.
            disable = getattr(self.network, "disable_stats", None)
            if disable is not None:
                disable()
        self.coordination = CoordinationService()
        self._ring_configs: Dict[int, MultiRingConfig] = {}
        self._evicted_members: Dict[str, Dict[int, RingMember]] = {}
        self._started = False

    # --------------------------------------------------------------- processes
    def process(self, name: str) -> Actor:
        """Look up a registered process by name."""
        return self.env.actor(name)

    def processes(self) -> List[Actor]:
        """All registered processes."""
        return self.env.actors()

    # -------------------------------------------------------------------- rings
    def create_ring(
        self,
        ring_id: int,
        members: Sequence[MemberSpec],
        coordinator: Optional[str] = None,
        config: Optional[MultiRingConfig] = None,
        disks: Optional[Dict[str, Disk]] = None,
    ) -> RingOverlay:
        """Declare a ring and enrol every member process.

        Parameters
        ----------
        ring_id:
            Ring identifier; by convention it is also the multicast group id.
        members:
            Member specifications in ring order (see :data:`MemberSpec`).
        coordinator:
            Coordinator name; defaults to the first acceptor.
        config:
            Ring-specific configuration; defaults to the deployment config.
        disks:
            Optional per-process device to which that process's acceptor log
            for this ring is pinned (used by the vertical-scalability bench
            where each ring writes to its own disk).
        """
        ring_members = [
            m if isinstance(m, RingMember) else parse_roles(m[0], m[1]) for m in members
        ]
        overlay = RingOverlay(ring_id, ring_members, coordinator=coordinator)
        ring_config = config or self.config
        self._ring_configs[ring_id] = ring_config
        self.coordination.register_ring(overlay)
        for member in ring_members:
            process = self.env.actor(member.name)
            self.coordination.register_process(member.name)
            if isinstance(process, MultiRingProcess):
                disk = disks.get(member.name) if disks else None
                process.join_ring(overlay, config=ring_config.ring_node_config(), disk=disk)
        return overlay

    def ring(self, ring_id: int) -> RingOverlay:
        """Current overlay of ``ring_id`` as stored in the coordination service."""
        return self.coordination.ring(ring_id)

    def ring_config(self, ring_id: int) -> MultiRingConfig:
        """Configuration a ring was created with."""
        return self._ring_configs[ring_id]

    # ---------------------------------------------------------------- running
    def start(self) -> None:
        """Invoke every process's startup hook (Phase 1 pre-execution, timers)."""
        if self._started:
            return
        self._started = True
        for actor in self.env.actors():
            if actor.alive:
                actor.on_start()

    def run(self, until: Optional[float] = None) -> float:
        """Run the deployment until the given simulation time."""
        if not self._started:
            self.start()
        return self.env.run(until=until)

    # --------------------------------------------------------- reconfiguration
    def remove_from_ring(self, ring_id: int, name: str) -> RingOverlay:
        """Exclude a failed process from a ring (Zookeeper would do this).

        The remaining members install the new overlay immediately; the failed
        process keeps its old view and is ignored until re-added.
        """
        current = self.coordination.ring(ring_id)
        remaining = [m for m in current.members if m.name != name]
        coordinator = current.coordinator
        if coordinator == name:
            live_acceptors = [m.name for m in remaining if m.acceptor]
            if not live_acceptors:
                raise RuntimeError(f"removing {name} leaves ring {ring_id} without acceptors")
            coordinator = live_acceptors[0]
        overlay = RingOverlay(ring_id, remaining, coordinator=coordinator, epoch=current.epoch + 1)
        self.coordination.register_ring(overlay)
        self.coordination.report_failure(name)
        self._install_overlay(overlay)
        return overlay

    def add_to_ring(
        self,
        ring_id: int,
        member: MemberSpec,
        position: Optional[int] = None,
    ) -> RingOverlay:
        """Re-admit a process into a ring after it recovered."""
        new_member = member if isinstance(member, RingMember) else parse_roles(member[0], member[1])
        current = self.coordination.ring(ring_id)
        members = [m for m in current.members if m.name != new_member.name]
        if position is None:
            members.append(new_member)
        else:
            members.insert(position, new_member)
        overlay = RingOverlay(
            ring_id, members, coordinator=current.coordinator, epoch=current.epoch + 1
        )
        self.coordination.register_ring(overlay)
        self.coordination.register_process(new_member.name)
        self._install_overlay(overlay)
        process = self.env.actor(new_member.name)
        if isinstance(process, MultiRingProcess) and ring_id not in process.ring_ids():
            config = self._ring_configs.get(ring_id, self.config)
            process.join_ring(overlay, config=config.ring_node_config())
            if self._started and process.alive:
                process.node(ring_id).start()
        return overlay

    def _install_overlay(self, overlay: RingOverlay) -> None:
        for member in overlay.members:
            if not self.env.has_actor(member.name):
                continue
            process = self.env.actor(member.name)
            if isinstance(process, MultiRingProcess) and overlay.ring_id in process.ring_ids():
                process.node(overlay.ring_id).update_overlay(overlay)

    # ------------------------------------------------------- fault injection
    def crash_process(self, name: str, reconfigure_rings: bool = True) -> None:
        """Crash a process and report the failure to the coordination service.

        By default the failed process is also removed from every ring it was
        a member of — that is what Zookeeper's ephemeral-node expiry does in
        the prototype, and it keeps the ring circulation intact for the
        remaining members.  The original membership is remembered so
        :meth:`restart_process` can re-admit the process with the same roles.
        """
        self.env.actor(name).crash()
        self.coordination.report_failure(name)
        if not reconfigure_rings:
            return
        for ring_id in self.coordination.ring_ids():
            overlay = self.coordination.ring(ring_id)
            if name not in overlay:
                continue
            member = overlay.member(name)
            live_acceptors = [a for a in overlay.acceptors if a != name]
            if member.acceptor and not live_acceptors:
                # Cannot exclude the only acceptor; the ring is stuck anyway.
                continue
            self._evicted_members.setdefault(name, {})[ring_id] = member
            self.remove_from_ring(ring_id, name)

    def restart_process(self, name: str) -> None:
        """Restart a crashed process (its recovery protocol runs automatically).

        Rings the process was evicted from at crash time are re-joined first,
        so the restarted process immediately receives the live stream while
        its recovery protocol fills the gap.
        """
        self.coordination.register_process(name)
        for ring_id, member in self._evicted_members.pop(name, {}).items():
            self.add_to_ring(ring_id, member)
        self.env.actor(name).restart()
