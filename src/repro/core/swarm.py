"""Flyweight client swarms: one actor simulating up to a million clients.

The paper's evaluation drives the services with tens of client *actors*; the
north star ("heavy traffic from millions of users") needs orders of magnitude
more clients than the actor machinery can afford — a million
:class:`~repro.core.client.ClosedLoopClient` instances would mean a million
Python objects, timers and metric recorders.  :class:`ClientSwarm` simulates
``n`` open- or closed-loop clients inside ONE actor:

* per-client state lives in flat arrays (issued/completed counts, online
  flags) plus one dict of in-flight logical requests;
* open-loop pacing runs on a shared event-time wheel — a heap of
  ``(next_fire_time, client_index)`` pairs drained by a single kernel timer,
  so ``n`` clients cost one outstanding simulator event, not ``n``;
* the offered load follows an :class:`~repro.workloads.arrival.ArrivalCurve`
  (constant, diurnal ramp, flash crowd);
* connection churn (clients going away and coming back) and per-class SLO
  accounting (:class:`~repro.sim.metrics.SloTracker`) are built in.

Differential correctness
------------------------
The swarm is proven behaviorally identical to the actors it replaces
(``tests/core/test_swarm_differential.py``): with *port* addressing it emits
a command stream bit-identical — same seeds, same ``created_at``s, same
delivery order through a real service — to ``n`` individual client actors.

Port addressing registers one flyweight :class:`_SwarmPort` per client: a
``__slots__`` stand-in carrying only a name and a site, so each simulated
client keeps its own network identity (its own FIFO connections, its own
response routing) while every behavior lives in the swarm.  This is what
makes bit-identity possible: the network's jitter stream is drawn in global
send order, and channel/connection state is keyed by endpoint *names*, so
issuing client ``i``'s request under the name an individual actor would have
used reproduces the exact event timeline.

Above ``PORT_ADDRESSING_LIMIT`` clients (or with ``addressing="shared"``)
the swarm switches to a single shared endpoint: commands carry the swarm's
own name and a globally unique command id (``seq * n + index``) so responses
demultiplex without per-client connections — the memory-scaling mode for
10⁵–10⁶ users.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..net.message import ClientRequest, ClientResponse
from ..sim.actor import Actor, Environment
from ..sim.metrics import SloTracker
from ..workloads.arrival import ArrivalCurve, constant
from .client import RequestFactory

__all__ = [
    "ChurnSpec",
    "ClientSwarm",
    "SwarmRequestFactory",
    "shared_factory",
    "PORT_ADDRESSING_LIMIT",
    "DEFAULT_SKETCH_THRESHOLD",
]

#: ``addressing="auto"`` uses per-client ports up to this many clients and
#: the shared endpoint beyond it (per-client connections are O(clients) in
#: the network's connection cache).
PORT_ADDRESSING_LIMIT = 4096

#: ``sketch="auto"`` enables the latency sketch at this sample threshold for
#: swarms of at least :data:`SKETCH_AUTO_CLIENTS` clients.
DEFAULT_SKETCH_THRESHOLD = 65536
SKETCH_AUTO_CLIENTS = 10_000

#: Builds the next logical request of one flyweight client: receives the
#: client index and the client's request sequence number, returns the same
#: ``(commands, await_groups)`` pair as :data:`~repro.core.client.RequestFactory`.
SwarmRequestFactory = Callable[[int, int], Tuple[Sequence[Any], Sequence[int]]]


def shared_factory(factory: RequestFactory) -> SwarmRequestFactory:
    """Adapt a per-client :data:`RequestFactory` to the swarm signature.

    Every flyweight client draws from the same underlying factory (e.g. one
    shared YCSB workload generator), in issue order — the exact setup of the
    fig runners, where all client threads share one workload stream.
    """

    def build(index: int, sequence: int):
        return factory(sequence)

    return build


@dataclass(frozen=True)
class ChurnSpec:
    """Connection churn: clients disconnect and reconnect over time.

    ``rate`` is the aggregate disconnect rate (events/second, exponential
    interarrival); a disconnected client stays away for ``downtime`` seconds
    (scaled by a uniform factor in ``[1-jitter, 1+jitter]``) and then
    reconnects — closed-loop clients re-issue their window, open-loop clients
    rejoin the wheel.  Draws come from the swarm's own ``churn`` stream, so
    enabling churn never perturbs any other seeded stream.
    """

    rate: float
    downtime: float = 0.5
    jitter: float = 0.5


class _SwarmPort:
    """Flyweight network identity of one simulated client.

    Registered in the environment like an actor, but carries no behavior:
    responses delivered to the port are forwarded to the owning swarm with
    the client index attached.
    """

    __slots__ = ("name", "site", "alive", "_swarm", "_index")

    def __init__(self, name: str, site: str, swarm: "ClientSwarm", index: int) -> None:
        self.name = name
        self.site = site
        self.alive = True
        self._swarm = swarm
        self._index = index

    def on_start(self) -> None:  # the swarm issues on behalf of its ports
        pass

    def on_message(self, sender: str, message: Any) -> None:
        self._swarm._on_port_message(self._index, sender, message)

    def deliver(self, sender: str, message: Any) -> None:
        if self.alive:
            self.on_message(sender, message)


class ClientSwarm(Actor):
    """One actor simulating ``clients`` open- or closed-loop clients.

    Parameters
    ----------
    env, name, site:
        Standard actor arguments.
    frontends_by_group:
        Maps each multicast group to the process requests of that group are
        submitted to (same as the individual clients).
    request_factory:
        A :data:`SwarmRequestFactory` — ``(client_index, sequence) ->
        (commands, await_groups)``.  Use :func:`shared_factory` to adapt a
        plain per-client factory.
    clients:
        Number of simulated clients (1 to ~10⁶).
    mode:
        ``"closed"`` — every client keeps ``concurrency`` logical requests
        outstanding; ``"open"`` — clients issue on the shared event-time
        wheel following ``arrival``.
    concurrency:
        Outstanding requests per closed-loop client.
    arrival:
        The aggregate offered-load curve for open mode (default: constant
        100 req/s across the whole swarm).  Each client contributes
        ``rate_at(t) / clients``.
    stagger:
        Open mode: spread first arrivals one aggregate interarrival apart
        (smooth offered load).  ``False`` replicates individual
        ``OpenLoopClient`` actors, whose first requests all fire one
        per-client interval after start — required for the differential.
    addressing:
        ``"ports"``, ``"shared"`` or ``"auto"`` (ports up to
        :data:`PORT_ADDRESSING_LIMIT` clients).
    port_names:
        Optional explicit per-client port names (ports mode); defaults to
        ``"{name}.{index}"``.  The differential suite passes the names the
        individual actors would have used.
    churn:
        Optional :class:`ChurnSpec`.
    slo:
        Optional per-class latency objectives in seconds
        (``{"gold": 0.050, ...}``) — enables ``slo.<class>.*`` accounting.
    client_class:
        Maps a client index to its SLO class; defaults to round-robin over
        the sorted SLO classes.
    sketch:
        Latency-recorder sketch threshold: an int, ``None`` (always exact)
        or ``"auto"`` (sketch at :data:`DEFAULT_SKETCH_THRESHOLD` samples
        once the swarm has at least :data:`SKETCH_AUTO_CLIENTS` clients).
    record_trace:
        Keep an in-memory trace of every issued command —
        ``(index, sequence, op, args, group_id, created_at)`` tuples — for
        determinism tests.
    max_requests_per_client:
        Optional per-client cap on issued logical requests.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        frontends_by_group: Dict[int, str],
        request_factory: SwarmRequestFactory,
        clients: int,
        mode: str = "closed",
        concurrency: int = 1,
        arrival: Optional[ArrivalCurve] = None,
        stagger: bool = True,
        site: str = "dc1",
        metric_prefix: str = "client",
        addressing: str = "auto",
        port_names: Optional[Sequence[str]] = None,
        churn: Optional[ChurnSpec] = None,
        slo: Optional[Dict[str, float]] = None,
        client_class: Optional[Callable[[int], str]] = None,
        sketch: Any = "auto",
        record_trace: bool = False,
        max_requests_per_client: Optional[int] = None,
    ) -> None:
        super().__init__(env, name, site)
        if clients < 1:
            raise ValueError("clients must be at least 1")
        if mode not in ("closed", "open"):
            raise ValueError(f"unknown swarm mode: {mode!r}")
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self._frontends = dict(frontends_by_group)
        self._factory = request_factory
        self._n = clients
        self._mode = mode
        self._concurrency = concurrency
        self._arrival = arrival or constant(100.0)
        self._stagger = stagger
        self._metric_prefix = metric_prefix
        self._max_requests = max_requests_per_client
        self._churn = churn
        self._record_trace = record_trace

        if addressing == "auto":
            addressing = "ports" if clients <= PORT_ADDRESSING_LIMIT else "shared"
        if addressing not in ("ports", "shared"):
            raise ValueError(f"unknown addressing mode: {addressing!r}")
        self._addressing = addressing

        if sketch == "auto":
            sketch = DEFAULT_SKETCH_THRESHOLD if clients >= SKETCH_AUTO_CLIENTS else None
        self._sketch = sketch

        # ------------------------------------------------- per-client state
        self._issued = array("q", bytes(8 * clients))
        self._completed = array("q", bytes(8 * clients))
        self._online = bytearray([1]) * clients
        #: in-flight logical requests keyed by ``sequence * n + index``
        self._outstanding: Dict[int, Tuple[set, float, str]] = {}
        #: open mode: shared event-time wheel of (next_fire, client_index)
        self._wheel: List[Tuple[float, int]] = []
        self._armed_for: Optional[float] = None
        self._trace: List[Tuple[int, int, str, Tuple, int, float]] = []

        # -------------------------------------------------------- addressing
        self._ports: List[_SwarmPort] = []
        if addressing == "ports":
            if port_names is not None and len(port_names) != clients:
                raise ValueError("port_names must name every client")
            names = list(port_names) if port_names is not None else [
                f"{name}.{i}" for i in range(clients)
            ]
            for i, port_name in enumerate(names):
                port = _SwarmPort(port_name, site, self, i)
                env.register(port)  # type: ignore[arg-type]
                self._ports.append(port)

        # ----------------------------------------------------------- metrics
        self._latency = env.metrics.latency(f"{metric_prefix}.latency", sketch=self._sketch)
        self._throughput = env.metrics.throughput(f"{metric_prefix}.throughput")
        self._slo: Optional[SloTracker] = None
        self._class_of: Optional[Callable[[int], str]] = None
        if slo:
            self._slo = SloTracker(env.metrics, slo, sketch=self._sketch)
            if client_class is None:
                classes = sorted(slo)
                client_class = lambda i: classes[i % len(classes)]  # noqa: E731
            self._class_of = client_class
        self._churn_counters = (
            env.metrics.counter(f"{metric_prefix}.churn.disconnects"),
            env.metrics.counter(f"{metric_prefix}.churn.reconnects"),
        )
        #: lazily bound network send (the network usually attaches after
        #: actor construction, mirroring Actor.send's caching)
        self._raw_send: Optional[Callable[[str, str, Any], None]] = None

    # ------------------------------------------------------------------ start
    def on_start(self) -> None:
        if self._mode == "closed":
            for index in range(self._n):
                for _ in range(self._concurrency):
                    self._issue(index)
        else:
            now = self.now
            # Computed as 1 / per-client-rate — the exact expression an
            # individual OpenLoopClient uses for its interval, so the fire
            # times agree bit-for-bit in the differential.
            interval = 1.0 / (self._arrival.rate_at(now) / self._n)
            if self._stagger:
                step = interval / self._n
                self._wheel = [(now + (i + 1) * step, i) for i in range(self._n)]
            else:
                # Every client's first request one per-client interval after
                # start — exactly when n individual OpenLoopClients would
                # first fire their periodic timers.
                self._wheel = [(now + interval, i) for i in range(self._n)]
            heapq.heapify(self._wheel)
            self._arm_wheel()
        if self._churn is not None:
            self._schedule_churn()

    # ------------------------------------------------------------- issue side
    def _issue(self, index: int) -> None:
        if not self.alive:
            return
        sequence = self._issued[index]
        if self._max_requests is not None and sequence >= self._max_requests:
            return
        self._issued[index] = sequence + 1
        commands, await_groups = self._factory(index, sequence)
        key = sequence * self._n + index
        op_label = "-".join(sorted({c.op for c in commands})) or "noop"
        now = self.now
        self._outstanding[key] = (set(await_groups), now, op_label)
        if self._addressing == "ports":
            src = self._ports[index].name
            request_key = sequence  # the id an individual actor would use
        else:
            src = self.name
            request_key = key
        send = self._raw_send
        if send is None:
            network = self.env.network
            if network is None:
                raise RuntimeError("environment has no network attached")
            send = self._raw_send = network.send
        for command in commands:
            command.client = src
            command.created_at = now
            command.command_id = request_key
            send(
                src,
                self._frontends[command.group_id],
                ClientRequest(
                    payload_bytes=command.size_bytes,
                    client=src,
                    command=command,
                    created_at=now,
                ),
            )
            if self._record_trace:
                self._trace.append(
                    (index, sequence, command.op, tuple(command.args), command.group_id, now)
                )

    # -------------------------------------------------------- event-time wheel
    def _arm_wheel(self) -> None:
        if not self._wheel:
            self._armed_for = None
            return
        head = self._wheel[0][0]
        if self._armed_for is not None and self._armed_for <= head:
            return  # an armed timer already covers the head
        self._armed_for = head
        # Push at the *absolute* head time (plain _post entry layout) rather
        # than call_later(head - now): now + (head - now) can land an ulp off
        # head, which would break bit-identity with individual client timers.
        sim = self.env.simulator
        if head < sim._now:
            raise RuntimeError(f"wheel head {head} is in the past (now={sim._now})")
        seq = sim._seq
        sim._seq = seq + 1
        heapq.heappush(sim._queue, (head, 0, seq, self._wheel_tick, ()))

    def _wheel_tick(self) -> None:
        if not self.alive:
            return
        self._armed_for = None
        now = self.now
        wheel = self._wheel
        interval = None
        while wheel and wheel[0][0] <= now:
            _, index = heapq.heappop(wheel)
            if not self._online[index]:
                continue  # reconnection re-enters the wheel
            if self._max_requests is not None and self._issued[index] >= self._max_requests:
                continue  # done: drop out of the wheel
            self._issue(index)
            if interval is None:
                interval = 1.0 / (self._arrival.rate_at(now) / self._n)
            heapq.heappush(wheel, (now + interval, index))
        self._arm_wheel()

    # ------------------------------------------------------------------ churn
    def _schedule_churn(self) -> None:
        assert self._churn is not None
        rng = self.rng("churn")
        delay = rng.expovariate(self._churn.rate)
        self.set_timer(delay, self._churn_tick)

    def _churn_tick(self) -> None:
        assert self._churn is not None
        rng = self.rng("churn")
        victim = rng.randrange(self._n)
        if self._online[victim]:
            self._online[victim] = 0
            self._churn_counters[0].increment()
            # The connection is gone: in-flight requests of this client are
            # forgotten, so late responses are ignored (like responses to a
            # crashed client actor).
            stale = [k for k in self._outstanding if k % self._n == victim]
            for k in stale:
                del self._outstanding[k]
            spec = self._churn
            factor = 1.0 + spec.jitter * (2.0 * rng.random() - 1.0)
            self.set_timer(max(1e-6, spec.downtime * factor), lambda: self._reconnect(victim))
        self._schedule_churn()

    def _reconnect(self, index: int) -> None:
        if self._online[index]:
            return
        self._online[index] = 1
        self._churn_counters[1].increment()
        if self._mode == "closed":
            for _ in range(self._concurrency):
                self._issue(index)
        else:
            interval = 1.0 / (self._arrival.rate_at(self.now) / self._n)
            heapq.heappush(self._wheel, (self.now + interval, index))
            self._arm_wheel()

    # ---------------------------------------------------------- response side
    def _on_port_message(self, index: int, sender: str, message: Any) -> None:
        if not isinstance(message, ClientResponse):
            return
        self._complete(index, message.request_id * self._n + index, message)

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ClientResponse):
            return
        key = message.request_id
        self._complete(key % self._n, key, message)

    def _complete(self, index: int, key: int, message: ClientResponse) -> None:
        entry = self._outstanding.get(key)
        if entry is None:
            return  # duplicate, or the client churned away meanwhile
        pending, submitted_at, op_label = entry
        group_id = message.result.get("group_id") if isinstance(message.result, dict) else None
        if group_id is not None:
            pending.discard(group_id)
        else:
            pending.clear()
        if pending:
            return
        del self._outstanding[key]
        self._completed[index] += 1
        elapsed = self.now - submitted_at
        self._latency.record(elapsed)
        if self._mode == "closed":
            self.env.metrics.latency(
                f"{self._metric_prefix}.latency.{op_label}", sketch=self._sketch
            ).record(elapsed)
        self._throughput.record(1.0)
        if self._slo is not None and self._class_of is not None:
            self._slo.record(self._class_of(index), elapsed)
        if self._mode == "closed" and self._online[index]:
            self._issue(index)

    # -------------------------------------------------------------- inspection
    @property
    def clients(self) -> int:
        """Number of simulated clients."""
        return self._n

    @property
    def issued(self) -> int:
        """Logical requests issued across all clients."""
        return sum(self._issued)

    @property
    def completed(self) -> int:
        """Logical requests completed across all clients."""
        return sum(self._completed)

    @property
    def outstanding(self) -> int:
        """Logical requests currently in flight."""
        return len(self._outstanding)

    @property
    def online(self) -> int:
        """Clients currently connected."""
        return sum(self._online)

    @property
    def addressing(self) -> str:
        """The addressing mode in effect (``"ports"`` or ``"shared"``)."""
        return self._addressing

    @property
    def slo_tracker(self) -> Optional[SloTracker]:
        """The per-class SLO tracker, when SLO targets were configured."""
        return self._slo

    @property
    def command_trace(self) -> List[Tuple[int, int, str, Tuple, int, float]]:
        """Issued-command trace (requires ``record_trace=True``)."""
        return list(self._trace)

    def per_client_issued(self, index: int) -> int:
        """Requests issued by one flyweight client."""
        return self._issued[index]

    def per_client_completed(self, index: int) -> int:
        """Requests completed by one flyweight client."""
        return self._completed[index]
