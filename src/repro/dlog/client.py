"""Client-side command builders for dLog (Table 2)."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..core.client import Command

__all__ = ["DLogCommands", "append_request_factory"]

#: Rough per-command framing on the wire.
_COMMAND_OVERHEAD = 40


class DLogCommands:
    """Builds routed commands for the dLog operations of Table 2.

    Each log is backed by the multicast group with the same id, so routing is
    the identity function on log ids.
    """

    def append(self, log_id: int, size_bytes: int) -> Command:
        """``append(l, v)`` — append ``v`` to log ``l``, return its position."""
        return Command(
            op="append",
            args=(size_bytes,),
            group_id=log_id,
            size_bytes=_COMMAND_OVERHEAD + size_bytes,
        )

    def multi_append(self, log_ids: Sequence[int], size_bytes: int) -> List[Command]:
        """``multi-append(L, v)`` — append ``v`` atomically to every log in ``L``.

        One command per involved log; the client must await a response from
        every addressed log (Section 6.2).
        """
        return [
            Command(
                op="multi-append",
                args=(size_bytes,),
                group_id=log_id,
                size_bytes=_COMMAND_OVERHEAD + size_bytes,
            )
            for log_id in sorted(set(log_ids))
        ]

    def read(self, log_id: int, position: int) -> Command:
        """``read(l, p)`` — return the value at ``position`` in log ``l``."""
        return Command(
            op="read",
            args=(position,),
            group_id=log_id,
            size_bytes=_COMMAND_OVERHEAD,
            response_size=1024,
        )

    def trim(self, log_id: int, position: int) -> Command:
        """``trim(l, p)`` — trim log ``l`` up to ``position``."""
        return Command(
            op="trim",
            args=(position,),
            group_id=log_id,
            size_bytes=_COMMAND_OVERHEAD,
        )


def append_request_factory(
    commands: DLogCommands,
    log_chooser: Callable[[int], int],
    append_bytes: int = 1024,
    multi_append_every: Optional[int] = None,
    multi_append_logs: Optional[Sequence[int]] = None,
) -> Callable[[int], Tuple[Sequence[Command], Sequence[int]]]:
    """Request factory for an append-only workload (Figures 5 and 6).

    Parameters
    ----------
    commands:
        The command builder.
    log_chooser:
        Maps the request sequence number to the log to append to.
    append_bytes:
        Size of every appended record (the paper uses 1 KB).
    multi_append_every / multi_append_logs:
        When set, every N-th request becomes a multi-append across the given
        logs, exercising cross-log atomicity.
    """

    def factory(sequence: int) -> Tuple[Sequence[Command], Sequence[int]]:
        if (
            multi_append_every is not None
            and multi_append_logs
            and sequence % multi_append_every == multi_append_every - 1
        ):
            cmds = commands.multi_append(multi_append_logs, append_bytes)
            return cmds, [c.group_id for c in cmds]
        log_id = log_chooser(sequence)
        command = commands.append(log_id, append_bytes)
        return [command], [command.group_id]

    return factory
