"""dLog deployment builder.

Wires the distributed-log service on top of an
:class:`~repro.core.amcast.AtomicMulticast` deployment.  Each log is backed by
one ring; replicas subscribe to the rings of the logs they host — in the
vertical-scalability experiment (Figure 6) the learners subscribe to ``k`` log
rings plus one *common ring* shared by all learners, and each ring's acceptor
log is pinned to its own disk.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.amcast import AtomicMulticast
from ..core.client import ClosedLoopClient, Command
from ..core.config import MultiRingConfig
from ..core.smr import ProposerFrontend
from ..net.ring import RingMember
from ..sim.disk import Disk, DiskProfile, HDD_PROFILE, profile_for_mode
from .client import DLogCommands, append_request_factory
from .replica import DLogReplica

__all__ = ["DLogService"]


class DLogService:
    """A deployed dLog: one ring per log, shared replicas, optional common ring."""

    def __init__(
        self,
        system: AtomicMulticast,
        log_ids: Sequence[int],
        acceptors_per_log: int = 2,
        replica_count: int = 1,
        common_ring_id: Optional[int] = None,
        dedicated_disks: bool = False,
        disk_profile: DiskProfile = HDD_PROFILE,
        config: Optional[MultiRingConfig] = None,
        site: str = "dc1",
    ) -> None:
        if not log_ids:
            raise ValueError("need at least one log")
        self.system = system
        self.log_ids = list(log_ids)
        self.common_ring_id = common_ring_id
        self.config = config or system.config
        self.commands = DLogCommands()
        self.frontends: Dict[int, List[ProposerFrontend]] = {}
        self.replicas: List[DLogReplica] = []
        self._site = site if system.topology.has_site(site) else system.topology.sites()[0].name

        self.replicas = [
            DLogReplica(system.env, f"dlog-replica{i}", site=self._site, config=self.config)
            for i in range(replica_count)
        ]

        for log_id in self.log_ids:
            self._build_log_ring(log_id, acceptors_per_log, dedicated_disks, disk_profile)
        if common_ring_id is not None:
            self._build_common_ring(common_ring_id, acceptors_per_log)

    # ----------------------------------------------------------------- build
    def _build_log_ring(
        self,
        log_id: int,
        acceptors: int,
        dedicated_disks: bool,
        disk_profile: DiskProfile,
    ) -> None:
        frontends = [
            ProposerFrontend(self.system.env, f"dlog{log_id}-node{i}", site=self._site, config=self.config)
            for i in range(acceptors)
        ]
        members: List[RingMember] = [
            RingMember(name=f.name, proposer=True, acceptor=True, learner=False)
            for f in frontends
        ] + [
            RingMember(name=r.name, proposer=False, acceptor=False, learner=True)
            for r in self.replicas
        ]
        disks: Optional[Dict[str, Disk]] = None
        if dedicated_disks:
            # One device per ring, shared by that ring's acceptors — this is
            # how Figure 6 adds storage resources together with rings.
            profile = profile_for_mode(self.config.storage_mode) or disk_profile
            disks = {
                f.name: Disk(self.system.env, profile, name=f"ring{log_id}.disk")
                for f in frontends
            }
        self.system.create_ring(log_id, members, config=self.config, disks=disks)
        self.frontends[log_id] = frontends

    def _build_common_ring(self, ring_id: int, acceptors: int) -> None:
        frontends = [
            ProposerFrontend(self.system.env, f"dlogc-node{i}", site=self._site, config=self.config)
            for i in range(acceptors)
        ]
        members: List[RingMember] = [
            RingMember(name=f.name, proposer=True, acceptor=True, learner=False)
            for f in frontends
        ] + [
            RingMember(name=r.name, proposer=False, acceptor=False, learner=True)
            for r in self.replicas
        ]
        self.system.create_ring(ring_id, members, config=self.config)
        self.frontends[ring_id] = frontends

    # -------------------------------------------------------------- accessors
    def frontend_map(self) -> Dict[int, str]:
        """Front-end process to submit each log's commands to."""
        return {log_id: self.frontends[log_id][0].name for log_id in self.frontends}

    # ---------------------------------------------------------------- clients
    def create_append_client(
        self,
        name: str,
        concurrency: int = 1,
        append_bytes: int = 1024,
        logs: Optional[Sequence[int]] = None,
        multi_append_every: Optional[int] = None,
        metric_prefix: Optional[str] = None,
        max_requests: Optional[int] = None,
    ) -> ClosedLoopClient:
        """A closed-loop client appending records round-robin over ``logs``."""
        target_logs = list(logs) if logs else list(self.log_ids)
        factory = append_request_factory(
            self.commands,
            log_chooser=lambda seq: target_logs[seq % len(target_logs)],
            append_bytes=append_bytes,
            multi_append_every=multi_append_every,
            multi_append_logs=target_logs if multi_append_every else None,
        )
        return ClosedLoopClient(
            self.system.env,
            name,
            frontends_by_group=self.frontend_map(),
            request_factory=factory,
            concurrency=concurrency,
            site=self._site,
            metric_prefix=metric_prefix or name,
            max_requests=max_requests,
        )
