"""The state machine of one shared log.

A dLog server keeps the most recent appends in an in-memory cache (200 MB in
the prototype — Section 7.3) and writes data to disk either synchronously or
asynchronously.  A ``trim`` flushes the cache up to the trim position and
starts a new on-disk log file.

:class:`SharedLog` models exactly that: appended entries carry their size,
the cache is bounded, and the on-disk segments record how many bytes were
flushed where — enough to account for device usage without holding real
payloads in memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["LogEntry", "LogSegment", "SharedLog"]

#: Default in-memory cache size (Section 7.3).
DEFAULT_CACHE_BYTES = 200 * 1024 * 1024


@dataclass(frozen=True)
class LogEntry:
    """One appended record."""

    position: int
    size_bytes: int
    payload: object = None


@dataclass
class LogSegment:
    """An on-disk log file created when the log is trimmed."""

    first_position: int
    last_position: int
    bytes: int


class SharedLog:
    """Append-only log with a bounded in-memory cache and trim support."""

    def __init__(self, log_id: int, cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        self.log_id = log_id
        self.cache_bytes = cache_bytes
        self._next_position = 0
        self._cache: "OrderedDict[int, LogEntry]" = OrderedDict()
        self._cache_size = 0
        self._trimmed_up_to = -1
        self._segments: List[LogSegment] = []
        self._total_appended_bytes = 0

    # ---------------------------------------------------------------- append
    def append(self, size_bytes: int, payload: object = None) -> int:
        """Append one record; returns the position it was stored at (Table 2)."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        position = self._next_position
        self._next_position += 1
        entry = LogEntry(position=position, size_bytes=size_bytes, payload=payload)
        self._cache[position] = entry
        self._cache_size += size_bytes
        self._total_appended_bytes += size_bytes
        self._evict_if_needed()
        return position

    def _evict_if_needed(self) -> None:
        while self._cache_size > self.cache_bytes and self._cache:
            _, evicted = self._cache.popitem(last=False)
            self._cache_size -= evicted.size_bytes

    # ------------------------------------------------------------------ read
    def read(self, position: int) -> Optional[LogEntry]:
        """Return the record at ``position`` if it is still in the cache.

        Positions already trimmed or evicted return ``None`` (the prototype
        would fetch them from the on-disk file; the simulation only needs to
        distinguish hit from miss).
        """
        if position <= self._trimmed_up_to:
            return None
        return self._cache.get(position)

    # ------------------------------------------------------------------ trim
    def trim(self, position: int) -> LogSegment:
        """Trim the log up to ``position`` (Table 2), creating a new segment."""
        flushed = [e for p, e in self._cache.items() if p <= position]
        for entry in flushed:
            del self._cache[entry.position]
            self._cache_size -= entry.size_bytes
        segment = LogSegment(
            first_position=self._trimmed_up_to + 1,
            last_position=position,
            bytes=sum(e.size_bytes for e in flushed),
        )
        self._segments.append(segment)
        self._trimmed_up_to = max(self._trimmed_up_to, position)
        return segment

    # ------------------------------------------------------------ inspection
    @property
    def next_position(self) -> int:
        """Position the next append will receive."""
        return self._next_position

    @property
    def cached_entries(self) -> int:
        """Records currently held in the in-memory cache."""
        return len(self._cache)

    @property
    def cached_bytes(self) -> int:
        """Bytes currently held in the in-memory cache."""
        return self._cache_size

    @property
    def trimmed_up_to(self) -> int:
        """Highest position removed by a trim (-1 when never trimmed)."""
        return self._trimmed_up_to

    @property
    def segments(self) -> List[LogSegment]:
        """On-disk segments created by trims, oldest first."""
        return list(self._segments)

    @property
    def total_appended_bytes(self) -> int:
        """Total bytes ever appended to this log."""
        return self._total_appended_bytes

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict:
        """A copy of the log state for checkpointing."""
        return {
            "log_id": self.log_id,
            "next_position": self._next_position,
            "trimmed_up_to": self._trimmed_up_to,
            "cache": dict(self._cache),
            "segments": list(self._segments),
        }

    def restore(self, snapshot: Dict) -> None:
        """Replace the log state with a checkpoint snapshot."""
        self._next_position = snapshot["next_position"]
        self._trimmed_up_to = snapshot["trimmed_up_to"]
        self._cache = OrderedDict(sorted(snapshot["cache"].items()))
        self._cache_size = sum(e.size_bytes for e in self._cache.values())
        self._segments = list(snapshot["segments"])

    def clear(self) -> None:
        """Drop the in-memory state (replica crash)."""
        self._cache.clear()
        self._cache_size = 0
        self._next_position = 0
        self._trimmed_up_to = -1
        self._segments.clear()
        self._total_appended_bytes = 0
