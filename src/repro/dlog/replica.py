"""dLog replica: executes append / multi-append / read / trim commands.

A dLog replica implements the learner interface of Multi-Ring Paxos
(Section 7.3): each log is backed by one multicast group/ring, and a replica
hosts the logs of every ring it subscribes to.  ``append``, ``read`` and
``trim`` commands arrive through the ring of the log they address;
``multi-append`` commands are multicast to every log involved and the replica
executes the append for the log of the group that delivered the command —
atomicity across logs follows from the deterministic merge order.

Replicas can be configured to persist appended data synchronously or
asynchronously to a local device, mirroring the dLog server's disk modes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.client import Command
from ..core.config import MultiRingConfig
from ..core.smr import StateMachineReplica
from ..sim.actor import Environment
from ..sim.disk import Disk, DiskProfile, HDD_PROFILE
from .log import SharedLog

__all__ = ["DLogReplica"]


class DLogReplica(StateMachineReplica):
    """A replica hosting one :class:`SharedLog` per subscribed group."""

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str = "dc1",
        config: Optional[MultiRingConfig] = None,
        respond_to_clients: bool = True,
        persist_appends: bool = False,
        disk_profile: DiskProfile = HDD_PROFILE,
        disks_by_group: Optional[Dict[int, Disk]] = None,
    ) -> None:
        super().__init__(env, name, site, config=config, respond_to_clients=respond_to_clients)
        self.persist_appends = persist_appends
        self._disk_profile = disk_profile
        self._disks: Dict[int, Disk] = dict(disks_by_group or {})
        self.logs: Dict[int, SharedLog] = {}

    # ---------------------------------------------------------------- helpers
    def log_for(self, group_id: int) -> SharedLog:
        """The shared log backed by ``group_id`` (created lazily)."""
        if group_id not in self.logs:
            self.logs[group_id] = SharedLog(group_id)
        return self.logs[group_id]

    def _disk_for(self, group_id: int) -> Disk:
        if group_id not in self._disks:
            self._disks[group_id] = Disk(
                self.env, self._disk_profile, name=f"{self.name}.log{group_id}.disk"
            )
        return self._disks[group_id]

    # ------------------------------------------------------------ state machine
    def apply_command(self, group_id: int, command: Command) -> Any:
        """Execute one Table 2 operation."""
        op = command.op
        log = self.log_for(group_id)
        if op in ("append", "multi-append"):
            size = command.args[0] if command.args else command.size_bytes
            position = log.append(size_bytes=size)
            if self.persist_appends:
                self._disk_for(group_id).write(size)
            return {"log": group_id, "position": position}
        if op == "read":
            position = command.args[0]
            entry = log.read(position)
            return {
                "log": group_id,
                "position": position,
                "found": entry is not None,
                "size": entry.size_bytes if entry else 0,
            }
        if op == "trim":
            position = command.args[0]
            segment = log.trim(position)
            return {"log": group_id, "trimmed_up_to": position, "segment_bytes": segment.bytes}
        raise ValueError(f"unknown dLog operation: {op}")

    # --------------------------------------------------------------- snapshots
    def snapshot_state(self) -> Tuple[Dict[int, Dict], int]:
        snapshot = {group: log.snapshot() for group, log in self.logs.items()}
        size = max(sum(log.cached_bytes for log in self.logs.values()), 1)
        return snapshot, size

    def install_state_snapshot(self, state: Dict[int, Dict]) -> None:
        self.logs = {}
        for group, log_snapshot in state.items():
            log = SharedLog(group)
            log.restore(log_snapshot)
            self.logs[group] = log

    def reset_state(self) -> None:
        self.logs = {}

    # --------------------------------------------------------------- inspection
    def total_appends(self) -> int:
        """Total records appended across all hosted logs."""
        return sum(log.next_position for log in self.logs.values())
