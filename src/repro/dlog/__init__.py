"""dLog: a distributed shared log with atomic multi-log appends."""

from .client import DLogCommands, append_request_factory
from .log import LogEntry, LogSegment, SharedLog
from .replica import DLogReplica
from .service import DLogService

__all__ = [
    "DLogCommands",
    "append_request_factory",
    "LogEntry",
    "LogSegment",
    "SharedLog",
    "DLogReplica",
    "DLogService",
]
