"""Networking primitives: message base types and the ring overlay."""

from .message import Batch, ClientRequest, ClientResponse, Message, next_message_id
from .ring import RingMember, RingOverlay

__all__ = [
    "Batch",
    "ClientRequest",
    "ClientResponse",
    "Message",
    "next_message_id",
    "RingMember",
    "RingOverlay",
]
