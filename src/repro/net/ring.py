"""Unidirectional ring overlay.

Ring Paxos arranges all processes of one group — proposers, acceptors and
learners — in a single logical ring (Figure 2a of the paper).  Messages only
travel from a process to its successor; values and decisions stop circulating
once every process has received them.

:class:`RingOverlay` is a pure data structure: it knows the member order, the
successor of each member, the elected coordinator (one of the acceptors) and
the position of the "last acceptor", the process that converts a Phase 2B
message carrying a majority of votes into a Decision.  It is deliberately
independent of the simulation so that it can be unit-tested and property-
tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["RingMember", "RingOverlay"]


@dataclass(frozen=True)
class RingMember:
    """One process in the ring and the roles it plays.

    A process may combine roles — the paper's baseline experiment uses three
    processes that are all proposers, acceptors and learners at once.
    """

    name: str
    proposer: bool = False
    acceptor: bool = False
    learner: bool = False

    def __post_init__(self) -> None:
        if not (self.proposer or self.acceptor or self.learner):
            raise ValueError(f"member {self.name} must hold at least one role")


class RingOverlay:
    """Ordered ring of members with coordinator election.

    Parameters
    ----------
    ring_id:
        Identifier of the ring (also the multicast group id in Multi-Ring
        Paxos; the deterministic merge iterates rings by this id).
    members:
        Ring members in ring order.  The order is what defines each member's
        successor.
    coordinator:
        Name of the coordinator; defaults to the first acceptor.  The
        coordinator must be an acceptor (it proposes Phase 2A messages).
    """

    def __init__(
        self,
        ring_id: int,
        members: Sequence[RingMember],
        coordinator: Optional[str] = None,
        epoch: int = 0,
    ) -> None:
        if not members:
            raise ValueError("a ring needs at least one member")
        if epoch < 0:
            raise ValueError("epoch cannot be negative")
        names = [m.name for m in members]
        if len(set(names)) != len(names):
            raise ValueError("duplicate member names in ring")
        acceptors = [m.name for m in members if m.acceptor]
        if not acceptors:
            raise ValueError("a ring needs at least one acceptor")

        self.ring_id = ring_id
        #: Configuration epoch: incremented on every reconfiguration, used by
        #: a newly elected coordinator to pick a higher ballot.
        self.epoch = epoch
        self._members: List[RingMember] = list(members)
        self._by_name: Dict[str, RingMember] = {m.name: m for m in members}
        self._order: List[str] = names
        self.coordinator = coordinator or acceptors[0]
        if self.coordinator not in self._by_name or not self._by_name[self.coordinator].acceptor:
            raise ValueError("coordinator must be an acceptor member of the ring")
        # Ring geometry is immutable (reconfiguration builds a new overlay),
        # so hop lookups — the per-message inner loop of ring circulation —
        # are precomputed once instead of scanning the member list.
        n = len(names)
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self._succ: Dict[str, str] = {name: names[(i + 1) % n] for i, name in enumerate(names)}
        self._pred: Dict[str, str] = {name: names[(i - 1) % n] for i, name in enumerate(names)}
        self._acceptors: List[str] = acceptors
        self._learners: List[str] = [m.name for m in members if m.learner]
        self._proposers: List[str] = [m.name for m in members if m.proposer]
        self._majority: int = len(acceptors) // 2 + 1
        self._last_acceptor_cache: Dict[str, str] = {}

    # --------------------------------------------------------------- queries
    @property
    def members(self) -> List[RingMember]:
        """Members in ring order."""
        return list(self._members)

    @property
    def member_names(self) -> List[str]:
        """Member names in ring order."""
        return list(self._order)

    @property
    def acceptors(self) -> List[str]:
        """Acceptor names in ring order."""
        return list(self._acceptors)

    @property
    def learners(self) -> List[str]:
        """Learner names in ring order."""
        return list(self._learners)

    @property
    def proposers(self) -> List[str]:
        """Proposer names in ring order."""
        return list(self._proposers)

    @property
    def size(self) -> int:
        """Number of processes in the ring."""
        return len(self._members)

    def member(self, name: str) -> RingMember:
        """Look up a member by name."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -------------------------------------------------------------- topology
    def successor(self, name: str) -> str:
        """The next process after ``name`` on the ring."""
        return self._succ[name]

    def predecessor(self, name: str) -> str:
        """The process before ``name`` on the ring."""
        return self._pred[name]

    def distance(self, src: str, dst: str) -> int:
        """Number of hops travelling from ``src`` to ``dst`` along the ring."""
        return (self._index[dst] - self._index[src]) % len(self._order)

    def walk_from(self, start: str) -> List[str]:
        """Members visited walking one full turn starting after ``start``."""
        idx = self._index[start]
        n = len(self._order)
        return [self._order[(idx + k) % n] for k in range(1, n + 1)]

    # -------------------------------------------------------------- quorums
    def majority(self) -> int:
        """Size of a majority quorum of acceptors."""
        return self._majority

    def last_acceptor_for(self, coordinator: Optional[str] = None) -> str:
        """The acceptor that collects the final vote.

        Walking the ring from the coordinator (excluding the coordinator
        itself), the last acceptor encountered is the one able to observe a
        majority of Phase 2B votes and replace the message with a Decision
        (Section 4).  When the coordinator is the only acceptor it is its own
        last acceptor.
        """
        start = coordinator or self.coordinator
        cached = self._last_acceptor_cache.get(start)
        if cached is not None:
            return cached
        last = start
        for name in self.walk_from(start)[:-1]:
            if self._by_name[name].acceptor:
                last = name
        self._last_acceptor_cache[start] = last
        return last

    # ------------------------------------------------------------- mutation
    def with_coordinator(self, name: str) -> "RingOverlay":
        """Return a copy of the overlay with a different coordinator (next epoch)."""
        return RingOverlay(self.ring_id, self._members, coordinator=name, epoch=self.epoch + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RingOverlay(id={self.ring_id}, members={self._order}, coord={self.coordinator})"
