"""Message base types and wire-size accounting.

Every protocol message in the repository derives from :class:`Message` and
declares how many bytes it would occupy on the wire.  The simulated network
(:mod:`repro.sim.network`) charges transmission time from that size, which is
what lets the benchmarks reproduce size-dependent behaviour such as Figure 3's
throughput-versus-request-size curves and the 32 KB client batching of
Sections 7.2/7.3.

All message classes are ``slots=True`` dataclasses and ``size_bytes`` is a
plain attribute cached at construction (``payload_bytes + OVERHEAD_BYTES``)
rather than a property: the network reads it once per send and batches used
to re-sum their members on every access.  Subclasses that override
``__post_init__`` must re-derive ``payload_bytes`` first and finish with
``self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, ClassVar, List, Optional, Sequence

from ..sim.network import register_wire_type

__all__ = ["Message", "Batch", "ClientRequest", "ClientResponse", "next_message_id"]

_message_ids = itertools.count(1)


def next_message_id() -> int:
    """Globally unique message identifier (monotonic within one process)."""
    return next(_message_ids)


@dataclass(slots=True)
class Message:
    """Base class for protocol messages.

    Attributes
    ----------
    payload_bytes:
        Size of the application payload carried by the message.
    size_bytes:
        Wire size used by the simulated network; cached at construction as
        ``payload_bytes + OVERHEAD_BYTES``.
    OVERHEAD_BYTES:
        Per-message protocol framing added on top of the payload.
    """

    OVERHEAD_BYTES: ClassVar[int] = 48

    payload_bytes: int = 0
    size_bytes: int = field(init=False, default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES


@dataclass(slots=True)
class ClientRequest(Message):
    """A request submitted by a client to a service front-end."""

    request_id: int = field(default_factory=next_message_id)
    client: str = ""
    command: Any = None
    created_at: float = 0.0


@dataclass(slots=True)
class ClientResponse(Message):
    """A response sent back to a client (the paper uses UDP for these)."""

    request_id: int = 0
    result: Any = None
    replica: str = ""


@dataclass(slots=True)
class Batch(Message):
    """A group of messages sent as one network packet.

    Ring Paxos groups several consensus-instance messages into bigger packets
    before forwarding them along the ring (Section 4); clients batch small
    commands up to 32 KB (Sections 7.2 and 7.3).  The batch size is the sum of
    the payload of its members plus one framing overhead, cached at
    construction and maintained incrementally by :meth:`append` — never
    re-summed per access.
    """

    messages: List[Message] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.payload_bytes = sum(m.size_bytes for m in self.messages)
        self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES

    def append(self, message: Message) -> None:
        """Add one message to the batch, updating the wire size."""
        self.messages.append(message)
        self.payload_bytes += message.size_bytes
        self.size_bytes += message.size_bytes

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)


# Cross-shard wire registration: these classes dominate barrier traffic in
# sharded runs, so they ship in positional tuple form (field order frozen
# here, cached ``size_bytes`` included) instead of generic dataclass pickling.
register_wire_type(Message)
register_wire_type(ClientRequest)
register_wire_type(ClientResponse)
register_wire_type(Batch)
