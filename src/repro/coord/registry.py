"""Coordination service (Zookeeper substitute).

The paper delegates ring configuration, coordinator election and the storage
of the partitioning schema to Zookeeper (Sections 4 and 7).  None of these sit
on the ordering critical path, so this reproduction provides a small
in-simulation registry with the same responsibilities:

* **ring registry** — which rings exist, their member lists and their elected
  coordinator; coordinator re-election when the current one is reported down;
* **partition map** — MRP-Store's hash/range partitioning schema, readable by
  every client;
* **ephemeral membership** — processes register themselves and can be marked
  failed, triggering watches;
* **watches** — callbacks fired when a value changes, used by replicas to
  learn about configuration changes.

The registry is implemented as a plain object (not an actor): in the real
system every process holds a Zookeeper session and reads are served locally
from the client cache, so modelling a remote round trip would misrepresent
the original system's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..net.ring import RingMember, RingOverlay

__all__ = ["CoordinationService", "RingConfig"]


@dataclass
class RingConfig:
    """Configuration of one ring stored in the registry."""

    ring_id: int
    members: List[RingMember] = field(default_factory=list)
    coordinator: Optional[str] = None
    epoch: int = 0

    def overlay(self) -> RingOverlay:
        """Materialise the :class:`RingOverlay` described by this config."""
        return RingOverlay(
            self.ring_id, self.members, coordinator=self.coordinator, epoch=self.epoch
        )


class CoordinationService:
    """Registry of rings, partition maps and liveness used by all processes."""

    def __init__(self) -> None:
        self._rings: Dict[int, RingConfig] = {}
        self._data: Dict[str, Any] = {}
        self._alive: Dict[str, bool] = {}
        self._watches: Dict[str, List[Callable[[str, Any], None]]] = {}

    # ----------------------------------------------------------------- rings
    def register_ring(self, overlay: RingOverlay) -> None:
        """Store a ring's membership and coordinator."""
        self._rings[overlay.ring_id] = RingConfig(
            ring_id=overlay.ring_id,
            members=overlay.members,
            coordinator=overlay.coordinator,
            epoch=overlay.epoch,
        )
        self._notify(f"ring/{overlay.ring_id}", overlay)

    def ring(self, ring_id: int) -> RingOverlay:
        """Return the current overlay of ``ring_id``."""
        if ring_id not in self._rings:
            raise KeyError(f"unknown ring: {ring_id}")
        return self._rings[ring_id].overlay()

    def ring_ids(self) -> List[int]:
        """All registered ring ids, sorted (deterministic merge order)."""
        return sorted(self._rings)

    def coordinator_of(self, ring_id: int) -> str:
        """Name of the current coordinator of ``ring_id``."""
        return self.ring(ring_id).coordinator

    def elect_coordinator(self, ring_id: int, failed: Optional[str] = None) -> str:
        """Elect a new coordinator for ``ring_id``.

        The first live acceptor (in ring order) that is not the ``failed``
        process becomes coordinator; mirrors Zookeeper-based leader election.
        """
        config = self._rings[ring_id]
        overlay = config.overlay()
        candidates = [
            a for a in overlay.acceptors
            if a != failed and self._alive.get(a, True)
        ]
        if not candidates:
            raise RuntimeError(f"no live acceptor available to coordinate ring {ring_id}")
        config.coordinator = candidates[0]
        config.epoch += 1
        self._notify(f"ring/{ring_id}", config.overlay())
        return config.coordinator

    # ------------------------------------------------------------- liveness
    def register_process(self, name: str) -> None:
        """Mark a process as live (ephemeral node creation)."""
        self._alive[name] = True
        self._notify(f"process/{name}", True)

    def report_failure(self, name: str) -> None:
        """Mark a process as failed (ephemeral node expiry)."""
        self._alive[name] = False
        self._notify(f"process/{name}", False)

    def is_alive(self, name: str) -> bool:
        """Whether the process is currently believed alive."""
        return self._alive.get(name, False)

    # ------------------------------------------------------------------ data
    def put(self, path: str, value: Any) -> None:
        """Store arbitrary configuration data (e.g. the partition map)."""
        self._data[path] = value
        self._notify(path, value)

    def get(self, path: str, default: Any = None) -> Any:
        """Read configuration data."""
        return self._data.get(path, default)

    def exists(self, path: str) -> bool:
        """Whether a data path exists."""
        return path in self._data

    def delete(self, path: str) -> None:
        """Remove a data path (no-op when absent)."""
        self._data.pop(path, None)
        self._notify(path, None)

    # --------------------------------------------------------------- watches
    def watch(self, path: str, callback: Callable[[str, Any], None]) -> None:
        """Invoke ``callback(path, new_value)`` whenever ``path`` changes."""
        self._watches.setdefault(path, []).append(callback)

    def _notify(self, path: str, value: Any) -> None:
        for callback in self._watches.get(path, []):
            callback(path, value)
