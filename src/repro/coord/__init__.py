"""Coordination service (Zookeeper substitute): ring registry, partition map."""

from .registry import CoordinationService, RingConfig

__all__ = ["CoordinationService", "RingConfig"]
