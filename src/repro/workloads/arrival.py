"""Arrival-rate curves for open-loop workload generation.

An :class:`ArrivalCurve` maps simulation time to an *aggregate* offered load
in requests per second.  The client swarm samples it whenever it reschedules
a flyweight client, so the same spec drives anything from a steady fig7-style
offered load to a diurnal ramp or a flash crowd.

Three shapes cover the experiments:

* ``constant`` — fixed rate, the classic open-loop benchmark.
* ``diurnal`` — sinusoidal ramp between a trough and a peak over a period,
  modelling a day/night cycle compressed into simulated seconds.
* ``flash`` — a baseline rate with a multiplicative spike: linear ramp up
  at ``at``, hold, then linear decay back to baseline (the flash crowd of
  the chaos scenarios).

Curves are plain frozen dataclasses: picklable (they cross process
boundaries with the sharded engine's shard specs) and hashable, with no
hidden randomness — determinism lives entirely in the seeded streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = ["ArrivalCurve", "constant", "diurnal", "flash_crowd"]

# Curves never return a rate below this, so interarrival times stay finite.
_MIN_RATE = 1e-9


@dataclass(frozen=True)
class ArrivalCurve:
    """A time-varying aggregate arrival rate (requests/second).

    ``kind`` selects the shape; the remaining fields are interpreted per
    shape (see the module docstring and the factory helpers).
    """

    kind: str = "constant"
    rate: float = 100.0        # constant: the rate; diurnal/flash: baseline
    peak: float = 0.0          # diurnal/flash: rate at the top of the curve
    period: float = 60.0       # diurnal: seconds per full cycle
    phase: float = 0.0         # diurnal: cycle offset in seconds
    at: float = 0.0            # flash: spike start time
    ramp: float = 1.0          # flash: seconds to climb baseline -> peak
    hold: float = 1.0          # flash: seconds at peak
    decay: float = 1.0         # flash: seconds to fall peak -> baseline

    def rate_at(self, t: float) -> float:
        """Aggregate offered load (requests/second) at time ``t``."""
        if self.kind == "constant":
            rate = self.rate
        elif self.kind == "diurnal":
            mid = (self.rate + self.peak) / 2.0
            amplitude = (self.peak - self.rate) / 2.0
            rate = mid + amplitude * math.sin(
                2.0 * math.pi * (t - self.phase) / self.period
            )
        elif self.kind == "flash":
            rate = self._flash_rate(t)
        else:
            raise ValueError(f"unknown arrival curve kind: {self.kind!r}")
        return max(_MIN_RATE, rate)

    def _flash_rate(self, t: float) -> float:
        dt = t - self.at
        if dt < 0 or dt >= self.ramp + self.hold + self.decay:
            return self.rate
        if dt < self.ramp:
            frac = dt / self.ramp if self.ramp > 0 else 1.0
            return self.rate + (self.peak - self.rate) * frac
        if dt < self.ramp + self.hold:
            return self.peak
        frac = (dt - self.ramp - self.hold) / self.decay if self.decay > 0 else 1.0
        return self.peak + (self.rate - self.peak) * frac

    def span(self) -> Tuple[float, float]:
        """(min, max) rate the curve can produce — for sizing benchmarks."""
        if self.kind == "constant":
            return (self.rate, self.rate)
        if self.kind == "diurnal":
            lo, hi = sorted((self.rate, self.peak))
            return (max(_MIN_RATE, lo), max(_MIN_RATE, hi))
        lo, hi = sorted((self.rate, self.peak))
        return (max(_MIN_RATE, lo), max(_MIN_RATE, hi))


def constant(rate: float) -> ArrivalCurve:
    """A fixed offered load of ``rate`` requests/second."""
    return ArrivalCurve(kind="constant", rate=rate)


def diurnal(base: float, peak: float, period: float, phase: float = 0.0) -> ArrivalCurve:
    """A sinusoidal day/night ramp between ``base`` and ``peak``."""
    return ArrivalCurve(kind="diurnal", rate=base, peak=peak, period=period, phase=phase)


def flash_crowd(
    base: float,
    peak: float,
    at: float,
    ramp: float = 1.0,
    hold: float = 1.0,
    decay: float = 1.0,
) -> ArrivalCurve:
    """A flash crowd: baseline ``base``, spiking to ``peak`` at time ``at``."""
    return ArrivalCurve(
        kind="flash", rate=base, peak=peak, at=at, ramp=ramp, hold=hold, decay=decay
    )
