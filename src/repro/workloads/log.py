"""Append workloads for the distributed-log experiments (Figures 5 and 6)."""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.client import Command

__all__ = ["round_robin_logs", "single_log", "AppendWorkloadSpec"]


def single_log(log_id: int) -> Callable[[int], int]:
    """Every append goes to the same log (Figure 5's single-ledger clients)."""

    def chooser(sequence: int) -> int:
        return log_id

    return chooser


def round_robin_logs(log_ids: Sequence[int]) -> Callable[[int], int]:
    """Appends rotate over ``log_ids`` (Figure 6's per-ring load)."""
    logs = list(log_ids)
    if not logs:
        raise ValueError("need at least one log")

    def chooser(sequence: int) -> int:
        return logs[sequence % len(logs)]

    return chooser


class AppendWorkloadSpec:
    """Parameters of an append workload.

    Attributes
    ----------
    append_bytes:
        Size of each appended record (1 KB in the paper).
    client_threads:
        Outstanding appends per client (the x-axis of Figure 5).
    multi_append_every:
        Every N-th request becomes a multi-append across all logs; ``None``
        keeps the workload pure single-log appends as in the paper.
    """

    def __init__(
        self,
        append_bytes: int = 1024,
        client_threads: int = 1,
        multi_append_every: Optional[int] = None,
    ) -> None:
        if append_bytes <= 0:
            raise ValueError("append_bytes must be positive")
        if client_threads < 1:
            raise ValueError("client_threads must be >= 1")
        self.append_bytes = append_bytes
        self.client_threads = client_threads
        self.multi_append_every = multi_append_every
