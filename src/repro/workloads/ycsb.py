"""Yahoo! Cloud Serving Benchmark workloads A-F.

Figure 4 drives MRP-Store, the eventually consistent baseline and the
single-server baseline with YCSB.  The six core workloads are reproduced with
their standard definitions:

========  =======================================  =================
Workload  Operation mix                            Request distribution
========  =======================================  =================
A         50 % read / 50 % update                  zipfian
B         95 % read / 5 % update                   zipfian
C         100 % read                               zipfian
D         95 % read / 5 % insert                   latest
E         95 % scan / 5 % insert                   zipfian (scan start)
F         50 % read / 50 % read-modify-write       zipfian
========  =======================================  =================

Records follow YCSB defaults: 10 fields of 100 bytes (1 KB per record); scans
touch up to 100 consecutive keys.  The generator is deterministic given its
random stream, so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.random import LatestGenerator, UniformIntGenerator, ZipfianGenerator, weighted_choice

__all__ = ["YCSB_WORKLOADS", "YCSBWorkload", "WorkloadSpec", "ycsb_keyspace"]

#: A generated operation: ``(op, key, value_size, end_key)``.
Operation = Tuple[str, str, int, Optional[str]]

#: YCSB default record size: 10 fields x 100 bytes.
RECORD_BYTES = 1000

#: YCSB default maximum scan length.
MAX_SCAN_LENGTH = 100


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one YCSB workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_modify_write: float = 0.0
    distribution: str = "zipfian"

    def mix(self) -> List[Tuple[str, float]]:
        """The non-zero (operation, weight) pairs."""
        pairs = [
            ("read", self.read),
            ("update", self.update),
            ("insert", self.insert),
            ("scan", self.scan),
            ("read-modify-write", self.read_modify_write),
        ]
        return [(op, w) for op, w in pairs if w > 0]


#: The six core workloads with their standard mixes.
YCSB_WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": WorkloadSpec(name="A", read=0.5, update=0.5, distribution="zipfian"),
    "B": WorkloadSpec(name="B", read=0.95, update=0.05, distribution="zipfian"),
    "C": WorkloadSpec(name="C", read=1.0, distribution="zipfian"),
    "D": WorkloadSpec(name="D", read=0.95, insert=0.05, distribution="latest"),
    "E": WorkloadSpec(name="E", scan=0.95, insert=0.05, distribution="zipfian"),
    "F": WorkloadSpec(name="F", read=0.5, read_modify_write=0.5, distribution="zipfian"),
}


def ycsb_key(index: int) -> str:
    """The YCSB key for record ``index`` (zero-padded for stable sorting)."""
    return f"user{index:012d}"


def ycsb_keyspace(record_count: int, record_bytes: int = RECORD_BYTES) -> Dict[str, int]:
    """The initial database: ``record_count`` records of ``record_bytes`` each."""
    return {ycsb_key(i): record_bytes for i in range(record_count)}


class YCSBWorkload:
    """A deterministic generator of YCSB operations.

    Parameters
    ----------
    spec:
        One of :data:`YCSB_WORKLOADS` (or a custom :class:`WorkloadSpec`).
    record_count:
        Number of records pre-loaded in the database.
    rng:
        Random stream (seeded by the experiment for reproducibility).
    record_bytes:
        Value size written by updates and inserts.
    max_scan_length:
        Upper bound of scan lengths (uniformly chosen per scan).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        record_count: int,
        rng: random.Random,
        record_bytes: int = RECORD_BYTES,
        max_scan_length: int = MAX_SCAN_LENGTH,
    ) -> None:
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        self.spec = spec
        self.record_bytes = record_bytes
        self.max_scan_length = max_scan_length
        self._rng = rng
        self._insert_count = record_count
        self._mix = spec.mix()
        if spec.distribution == "latest":
            self._latest = LatestGenerator(record_count, rng)
            self._zipf = None
            self._uniform = None
        elif spec.distribution == "uniform":
            self._latest = None
            self._zipf = None
            self._uniform = UniformIntGenerator(0, record_count - 1, rng)
        else:
            self._latest = None
            self._zipf = ZipfianGenerator(record_count, rng)
            self._uniform = None
        self._issued: Dict[str, int] = {op: 0 for op, _ in self._mix}

    # ------------------------------------------------------------------ keys
    def _next_key_index(self) -> int:
        if self._latest is not None:
            return min(self._latest.next(), self._insert_count - 1)
        if self._uniform is not None:
            return self._uniform.next()
        assert self._zipf is not None
        return min(self._zipf.next(), self._insert_count - 1)

    # ------------------------------------------------------------ operations
    def next_operation(self, sequence: int = 0) -> Operation:
        """Generate the next operation (deterministic given the stream state)."""
        op = weighted_choice(self._rng, self._mix)
        self._issued[op] = self._issued.get(op, 0) + 1
        if op == "insert":
            key = ycsb_key(self._insert_count)
            self._insert_count += 1
            if self._latest is not None:
                self._latest.record_insert()
            return ("insert", key, self.record_bytes, None)
        key = ycsb_key(self._next_key_index())
        if op == "read":
            return ("read", key, 0, None)
        if op == "update":
            return ("update", key, self.record_bytes, None)
        if op == "read-modify-write":
            return ("read-modify-write", key, self.record_bytes, None)
        if op == "scan":
            length = self._rng.randint(1, self.max_scan_length)
            start_index = self._next_key_index()
            end_key = ycsb_key(min(start_index + length, self._insert_count - 1))
            return ("scan", ycsb_key(start_index), 0, end_key)
        raise ValueError(f"unknown operation in mix: {op}")

    def __call__(self, sequence: int) -> Operation:
        return self.next_operation(sequence)

    # ------------------------------------------------------------ inspection
    def issued_counts(self) -> Dict[str, int]:
        """How many operations of each type were generated so far."""
        return dict(self._issued)

    @property
    def record_count(self) -> int:
        """Current number of records (grows with inserts)."""
        return self._insert_count
