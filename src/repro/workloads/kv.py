"""Key-value request streams used outside YCSB.

The scalability experiments drive MRP-Store with simpler workloads than YCSB:

* Figure 7 uses an *update-only* workload of 1 KB commands, each client
  addressing only its local partition;
* the baseline experiments use fixed-size dummy commands.

This module provides those generators in the shape expected by
:func:`repro.kvstore.client.kv_request_factory` — a callable from the request
sequence number to ``(op, key, value_size, end_key)``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["update_only_workload", "read_mostly_workload", "uniform_key"]

Operation = Tuple[str, str, int, Optional[str]]


def uniform_key(rng: random.Random, key_count: int, prefix: str = "key") -> str:
    """A uniformly random key out of ``key_count`` keys."""
    return f"{prefix}{rng.randint(0, key_count - 1):010d}"


def update_only_workload(
    rng: random.Random,
    key_count: int = 100_000,
    value_bytes: int = 1024,
    key_prefix: str = "key",
) -> Callable[[int], Operation]:
    """The update-only workload of the horizontal-scalability experiment.

    Every request updates a uniformly random key with a 1 KB value
    (Section 8.4.2).
    """

    def workload(sequence: int) -> Operation:
        return ("update", uniform_key(rng, key_count, key_prefix), value_bytes, None)

    return workload


def read_mostly_workload(
    rng: random.Random,
    key_count: int = 100_000,
    value_bytes: int = 1024,
    update_fraction: float = 0.1,
    key_prefix: str = "key",
) -> Callable[[int], Operation]:
    """A read-mostly workload used by the examples and ablation benches."""
    if not 0.0 <= update_fraction <= 1.0:
        raise ValueError("update_fraction must be within [0, 1]")

    def workload(sequence: int) -> Operation:
        key = uniform_key(rng, key_count, key_prefix)
        if rng.random() < update_fraction:
            return ("update", key, value_bytes, None)
        return ("read", key, 0, None)

    return workload


def preload_keys(key_count: int, value_bytes: int = 1024, key_prefix: str = "key") -> Dict[str, int]:
    """The initial dataset matching the workloads above."""
    return {f"{key_prefix}{i:010d}": value_bytes for i in range(key_count)}
