"""Workload generators: YCSB A-F, key-value streams, appends and arrival curves."""

from .arrival import ArrivalCurve, constant, diurnal, flash_crowd
from .kv import preload_keys, read_mostly_workload, update_only_workload, uniform_key
from .log import AppendWorkloadSpec, round_robin_logs, single_log
from .ycsb import (
    RECORD_BYTES,
    YCSB_WORKLOADS,
    WorkloadSpec,
    YCSBWorkload,
    ycsb_key,
    ycsb_keyspace,
)

__all__ = [
    "ArrivalCurve",
    "constant",
    "diurnal",
    "flash_crowd",
    "preload_keys",
    "read_mostly_workload",
    "update_only_workload",
    "uniform_key",
    "AppendWorkloadSpec",
    "round_robin_logs",
    "single_log",
    "RECORD_BYTES",
    "YCSB_WORKLOADS",
    "WorkloadSpec",
    "YCSBWorkload",
    "ycsb_key",
    "ycsb_keyspace",
]
