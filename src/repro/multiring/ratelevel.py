"""Rate leveling policy.

With deterministic merge, learners consume ``M`` instances from every ring in
turn, so the delivery rate of *every* subscribed ring is capped by the rate of
the slowest one.  To prevent an idle or slow group from throttling the rest,
Multi-Ring Paxos has coordinators of slow rings propose *skip* instances: at
every ``Δ`` interval a coordinator compares how many instances it proposed
during the interval with the maximum expected rate ``λ`` and proposes enough
null (skip) instances to make up the difference (Section 4).

The paper's configurations (Section 8.2):

* within a datacenter: ``M = 1``, ``Δ = 5 ms``, ``λ = 9000`` messages/s;
* across datacenters:  ``M = 1``, ``Δ = 20 ms``, ``λ = 2000`` messages/s.

:class:`RateLeveler` is the pure policy object; the ring coordinator queries
``expected_per_interval`` at each Δ tick and tops up with skips.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RateLeveler", "LOCAL_RATE_LEVELER", "GLOBAL_RATE_LEVELER"]


@dataclass(frozen=True)
class RateLeveler:
    """Skip-instance policy for one ring.

    Attributes
    ----------
    interval:
        The Δ interval in seconds between coordinator checks.
    max_rate:
        The λ parameter: maximum expected rate of the group in messages per
        second.
    """

    interval: float = 0.005
    max_rate: float = 9000.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval (Δ) must be positive")
        if self.max_rate < 0:
            raise ValueError("max_rate (λ) cannot be negative")

    @property
    def expected_per_interval(self) -> float:
        """Instances the ring is expected to complete per Δ interval (λ·Δ)."""
        return self.max_rate * self.interval

    def skips_needed(self, proposed_in_interval: int) -> int:
        """Skip instances to propose given what was proposed this interval."""
        return max(0, int(round(self.expected_per_interval)) - proposed_in_interval)


#: The paper's local-datacenter configuration (Δ = 5 ms, λ = 9000).
LOCAL_RATE_LEVELER = RateLeveler(interval=0.005, max_rate=9000.0)

#: The paper's cross-datacenter configuration (Δ = 20 ms, λ = 2000).
GLOBAL_RATE_LEVELER = RateLeveler(interval=0.020, max_rate=2000.0)
