"""A process participating in Multi-Ring Paxos.

:class:`MultiRingProcess` is the actor every Multi-Ring Paxos participant
derives from.  It can join any number of rings in any combination of roles;
when it is a learner of several rings it owns a deterministic merger that
interleaves the rings' decided instances into a single delivery sequence
(Section 4).  Subclasses — the dummy-service learner used for the baseline
experiments, the MRP-Store replica, the dLog replica — override
:meth:`on_deliver` to execute delivered commands and
:meth:`on_service_message` to handle their own client protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.ring import RingOverlay
from ..paxos.messages import ProposalValue, TrimQuery, TrimReport
from ..ringpaxos.node import RingNode, RingNodeConfig
from ..sim.actor import Actor, Environment
from ..sim.disk import Disk
from .merge import DeterministicMerger, RingSegment, RingSegmentBuffer

__all__ = ["MultiRingProcess"]


class MultiRingProcess(Actor):
    """Actor hosting one :class:`~repro.ringpaxos.node.RingNode` per ring.

    Parameters
    ----------
    env, name, site:
        Standard actor arguments.
    messages_per_round:
        The deterministic-merge parameter ``M`` used when this process
        subscribes (as learner) to more than zero rings.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str = "dc1",
        messages_per_round: int = 1,
    ) -> None:
        super().__init__(env, name, site)
        self._messages_per_round = messages_per_round
        self._nodes: Dict[int, RingNode] = {}
        self._node_disks: Dict[int, Optional[Disk]] = {}
        self._merger: Optional[DeterministicMerger] = None
        self._delivered_per_group: Dict[int, int] = {}
        self._ring_tap: Optional[Callable[[int, int, ProposalValue], None]] = None
        #: Crash/restart count — segments recorded by this process carry it
        #: so downstream merge cursors can dedup re-emitted stream prefixes.
        self.incarnation = 0
        self._segment_buffers: List[RingSegmentBuffer] = []

    # ----------------------------------------------------------------- rings
    def join_ring(
        self,
        overlay: RingOverlay,
        config: Optional[RingNodeConfig] = None,
        disk: Optional[Disk] = None,
    ) -> RingNode:
        """Become a member of ``overlay`` with the roles it assigns to us."""
        if overlay.ring_id in self._nodes:
            raise ValueError(f"{self.name} already joined ring {overlay.ring_id}")
        node = RingNode(
            host=self,
            overlay=overlay,
            config=config,
            on_deliver=self._on_ring_ordered,
            disk=disk,
        )
        self._nodes[overlay.ring_id] = node
        self._node_disks[overlay.ring_id] = disk
        if node.is_learner:
            if self._merger is None:
                self._merger = DeterministicMerger(
                    [overlay.ring_id],
                    messages_per_round=self._messages_per_round,
                    on_deliver=self._deliver,
                )
            else:
                self._merger.subscribe(overlay.ring_id)
        self._rewire_ordered_sinks()
        return node

    def node(self, ring_id: int) -> RingNode:
        """The ring node for ``ring_id``."""
        return self._nodes[ring_id]

    def ring_ids(self) -> List[int]:
        """Rings this process participates in (sorted)."""
        return sorted(self._nodes)

    def subscribed_groups(self) -> List[int]:
        """Rings this process learns from (sorted) — its group subscriptions."""
        return sorted(r for r, n in self._nodes.items() if n.is_learner)

    @property
    def merger(self) -> Optional[DeterministicMerger]:
        """The deterministic merger (``None`` for non-learners)."""
        return self._merger

    def _ordered_sink(self) -> Callable[[int, int, ProposalValue], None]:
        """Callback ring learners emit into.

        Without a streaming tap the per-ring ordered stream goes straight to
        the merger — same calls, one frame less per ordered instance.  With a
        tap (sharded streaming) or without a merger the general
        :meth:`_on_ring_ordered` stays in the path.
        """
        if self._ring_tap is None and self._merger is not None:
            return self._merger.offer
        return self._on_ring_ordered

    def _rewire_ordered_sinks(self) -> None:
        sink = self._ordered_sink()
        for node in self._nodes.values():
            if node.learner is not None:
                node.learner._on_ordered = sink

    # ----------------------------------------------------------------- start
    def on_start(self) -> None:
        """Start every ring node (Phase 1 pre-execution, timers)."""
        for node in self._nodes.values():
            node.start()

    # ------------------------------------------------------------- multicast
    def multicast(self, group_id: int, payload: Any, size_bytes: int) -> ProposalValue:
        """Atomically multicast ``payload`` to group ``group_id``.

        The process must be a proposer in the corresponding ring; learners of
        the group deliver the payload through :meth:`on_deliver`.
        """
        if group_id not in self._nodes:
            raise KeyError(f"{self.name} is not a member of ring/group {group_id}")
        return self._nodes[group_id].propose(payload, size_bytes)

    # -------------------------------------------------------------- delivery
    def tap_ring_streams(
        self, sink: Callable[[int, int, ProposalValue], None]
    ) -> None:
        """Observe every per-ring ordered instance *before* the merge.

        ``sink(ring_id, instance, value)`` fires for each instance a ring
        learner emits, skips included — exactly the stream the merge stage
        consumes.  This is the streaming tap of sharded execution: pointed at
        a :class:`~repro.multiring.merge.RingSegmentBuffer` (see
        :meth:`record_ring_segments`) it emits the decision-stream segments
        shipped through barriers to a parent-side
        :class:`~repro.multiring.merge.MergeCursor`; the tap survives
        crash/restart (restarted learners keep feeding it).
        """
        self._ring_tap = sink
        self._rewire_ordered_sinks()

    def record_ring_segments(
        self, into: Optional["RingSegmentBuffer"] = None
    ) -> "RingSegmentBuffer":
        """Install the segment-emitting streaming tap.

        Returns a :class:`~repro.multiring.merge.RingSegmentBuffer` that
        accumulates this process's per-ring ordered instances (skips
        included); ``buffer.cut()`` at every barrier yields the decision-
        stream segments recorded since the last cut, ready to ship to a
        parent-side merge cursor.  ``into`` lets several processes share one
        buffer (their rings must be disjoint).
        """
        buffer = RingSegmentBuffer() if into is None else into
        buffer.subscribe(self.subscribed_groups())
        self._segment_buffers.append(buffer)
        self.tap_ring_streams(buffer.append)
        return buffer

    def record_ring_streams(
        self, into: Optional[Dict[int, List[Tuple[int, ProposalValue]]]] = None
    ) -> Dict[int, List[Tuple[int, ProposalValue]]]:
        """Install a tap that records the whole-run per-ring streams.

        Returns the mapping ``ring_id → [(instance, value), ...]`` (skips
        included) that :func:`repro.multiring.merge.replay_streams` consumes;
        it fills in as the simulation runs.  ``into`` lets several processes
        share one sink.  The offline counterpart of
        :meth:`record_ring_segments` — use it when the merge happens after
        the run rather than barrier by barrier.
        """
        streams = {} if into is None else into

        def sink(ring_id: int, instance: int, value: ProposalValue) -> None:
            streams.setdefault(ring_id, []).append((instance, value))

        self.tap_ring_streams(sink)
        return streams

    def record_ring_history(
        self, into: Optional[Dict[int, List[RingSegment]]] = None
    ) -> Dict[int, List[RingSegment]]:
        """Install a tap recording whole-run streams segmented by incarnation.

        Returns ``ring_id → [RingSegment, ...]``: one run per incarnation the
        ring produced under, in chronological order.  A restarted learner
        re-emits its ring's stream from instance 0 — with the plain
        :meth:`record_ring_streams` recording that prefix would duplicate
        into the stream and corrupt any offline replay; here each
        incarnation's emission is kept separate so
        :func:`repro.multiring.merge.effective_streams` can dedup it (and a
        :class:`~repro.multiring.merge.MergeCursor` can be fed the runs
        chunk by chunk, exactly as the streaming pipeline would).  ``into``
        lets several processes share one sink (their rings must be
        disjoint).
        """
        history = {} if into is None else into

        def sink(ring_id: int, instance: int, value: ProposalValue) -> None:
            runs = history.setdefault(ring_id, [])
            if not runs or runs[-1].incarnation != self.incarnation:
                runs.append(RingSegment(incarnation=self.incarnation))
            runs[-1].entries.append((instance, value))

        self.tap_ring_streams(sink)
        return history

    def _on_ring_ordered(self, ring_id: int, instance: int, value: ProposalValue) -> None:
        """Ordered per-ring output from a ring learner, fed to the merger."""
        tap = self._ring_tap
        if tap is not None:
            tap(ring_id, instance, value)
        if self._merger is None:
            return
        self._merger.offer(ring_id, instance, value)

    def _deliver(self, group_id: int, instance: int, value: ProposalValue) -> None:
        self._delivered_per_group[group_id] = instance
        self.on_deliver(group_id, instance, value)

    def on_deliver(self, group_id: int, instance: int, value: ProposalValue) -> None:
        """Application delivery hook (override in services)."""

    def delivered_position(self, group_id: int) -> int:
        """Highest instance of ``group_id`` delivered to the application (-1 if none)."""
        return self._delivered_per_group.get(group_id, -1)

    # -------------------------------------------------------------- messages
    def on_message(self, sender: str, message: Any) -> None:
        # Hot path: a ring message resolves to its bound handler in two dict
        # hits (ring id -> node, message class -> handler).  This inlines
        # RingNode.handle — which stays the entry point for external callers
        # and for classes missing from the table (subclasses, unknowns).
        ring_id = getattr(message, "ring_id", None)
        if ring_id is not None:
            node = self._nodes.get(ring_id)
            if node is not None:
                if isinstance(message, TrimQuery):
                    self._answer_trim_query(sender, message)
                    return
                handler = node._handlers.get(message.__class__)
                if handler is not None:
                    self.cpu.charge_message(node._cpu_model, message.size_bytes)
                    if handler(sender, message):
                        return
                elif node.handle(sender, message):
                    return
        self.on_service_message(sender, message)

    def on_service_message(self, sender: str, message: Any) -> None:
        """Hook for non-ring messages (client requests, recovery traffic)."""

    # ------------------------------------------------------------------ trim
    def _answer_trim_query(self, sender: str, message: TrimQuery) -> None:
        safe = self.safe_instance_for(message.ring_id)
        self.send(
            sender,
            TrimReport(ring_id=message.ring_id, replica=self.name, safe_instance=safe),
        )

    def safe_instance_for(self, group_id: int) -> int:
        """Highest instance of ``group_id`` whose effects are checkpointed.

        The default implementation reports nothing checkpointed (``-1``),
        which keeps acceptors from trimming; replicas with a checkpointer
        override this (see :class:`repro.core.smr.StateMachineReplica`).
        """
        return -1

    # --------------------------------------------------------- crash/restart
    def on_crash(self) -> None:
        subscribed = self.subscribed_groups()
        for buffer in self._segment_buffers:
            buffer.mark_down(subscribed)
        for node in self._nodes.values():
            node.crash()

    def on_restart(self) -> None:
        """Reset volatile ordering state; durable state is recovered elsewhere."""
        self.incarnation += 1
        subscribed = self.subscribed_groups()
        for buffer in self._segment_buffers:
            buffer.mark_restart(subscribed)
        self._delivered_per_group.clear()
        learner_rings = [r for r, n in self._nodes.items() if n.is_learner]
        if learner_rings:
            self._merger = DeterministicMerger(
                learner_rings,
                messages_per_round=self._messages_per_round,
                on_deliver=self._deliver,
            )
        for node in self._nodes.values():
            node.recover()
            if node.is_learner:
                node.learner = type(node.learner)(node.ring_id, self._ordered_sink())
        for node in self._nodes.values():
            node.start()
