"""Deterministic merge of multiple ring streams.

A Multi-Ring Paxos learner subscribed to several rings must deliver messages
from those rings in an order that every other learner with the same
subscriptions reproduces exactly.  The paper's rule (Section 4): deliver the
messages decided in ``M`` consensus instances from the first ring (lowest
ring id), then ``M`` instances from the second ring, and so on, wrapping
around.

Skip instances (proposed by rate leveling) count towards the ``M`` instances
of their ring but deliver nothing to the application — they exist precisely so
that an idle ring does not stall the round-robin.

:class:`DeterministicMerger` consumes per-ring streams of *ordered* decided
instances (produced by :class:`repro.ringpaxos.learner.RingLearner`) and emits
application deliveries.  It is a pure data structure, which makes the ordering
property easy to test: any interleaving of `offer()` calls produces the same
delivery sequence.

That interleaving-independence is also what makes the merge *streamable*:
:class:`MergeCursor` consumes per-ring decision-stream **segments** — the
entries recorded since the last barrier, tagged with a per-ring watermark —
as they arrive and emits merged round-robin deliveries incrementally.  The
sharded execution engine uses it as its **merge stage**: a deployment whose
rings share learners only (the paper's Figure 6/7 configurations) runs one
ring component per shard, each shard cuts a segment from its recorded
per-ring streams at every barrier (skips included, via
:class:`RingSegmentBuffer`), and the parent feeds the segments into a cursor
driving live service replicas (see :mod:`repro.sim.parallel`,
:class:`repro.core.smr.ReactiveReplicaHost` and :mod:`repro.bench.parallel`).
:func:`replay_streams` — the offline whole-run replay — is a thin wrapper
that feeds a cursor each complete stream in one segment; by
interleaving-independence the streaming and offline orders are identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..paxos.messages import SKIP, ProposalValue
from ..ringpaxos.coordinator import PackedValues
from ..sim.network import register_wire_reducer


def _iter_leaf_values(value: ProposalValue):
    """Resolve :func:`repro.core.packing.iter_values` on first use.

    The merge stage sits below :mod:`repro.core` in the import graph
    (``core.smr`` imports this module), so the shared unpacker cannot be
    imported at module load without a package cycle.  The first call swaps
    this stub for the real function, so the hot path pays nothing after
    that.
    """
    global _iter_leaf_values
    from ..core.packing import iter_values as _iter_leaf_values

    return _iter_leaf_values(value)


__all__ = [
    "DeterministicMerger",
    "MergeCursor",
    "MergeDivergenceError",
    "RingSegment",
    "RingSegmentBuffer",
    "StaleWatermarkError",
    "effective_streams",
    "replay_streams",
]

DeliverCallback = Callable[[int, int, ProposalValue], None]

#: One ring's recorded output: ordered ``(instance, value)`` pairs exactly as
#: a :class:`~repro.ringpaxos.learner.RingLearner` emitted them (skips
#: included — the round-robin needs them to advance).
RingStream = Sequence[Tuple[int, ProposalValue]]


class StaleWatermarkError(ValueError):
    """A barrier watermark regressed or duplicated an earlier one.

    Raised by :meth:`MergeCursor.feed_segments` instead of silently keeping
    the old marks — a stale barrier that never advanced anything used to
    wedge the joint watermark with no visible symptom.
    """


class MergeDivergenceError(ValueError):
    """Two feeds decided different values for the same ``(ring, instance)``.

    A restarted learner legitimately re-emits a prefix of its ring's decided
    stream; the cursor discards those duplicates after verifying the payload
    matches what was merged the first time.  A mismatch means the streams
    genuinely diverged — consensus safety is broken somewhere upstream — and
    must surface as a hard error, not be papered over by the dedup.
    """


@dataclass(slots=True)
class RingSegment:
    """One ring's decision-stream slice, tagged for crash-safe streaming.

    Attributes
    ----------
    incarnation:
        The producing process's incarnation (crash/restart count) when the
        entries were recorded.  A restarted learner re-emits its ring's
        stream from instance 0 under a higher incarnation; consumers use the
        bump to reset their resume-position check and dedup the re-emitted
        prefix.
    start:
        Resume position: how many entries of this incarnation's stream were
        shipped before this segment.  Consumers verify contiguity so a
        segment lost in transport is an error, not a silent gap.
    entries:
        The ordered ``(instance, value)`` pairs recorded since the previous
        cut (skips included).  May be empty — an empty segment still tells
        the consumer the ring was covered up to the barrier.
    """

    incarnation: int = 0
    start: int = 0
    entries: List[Tuple[int, ProposalValue]] = field(default_factory=list)


# Segments are the bulk of barrier traffic in streaming-merge runs, and their
# entry lists are extremely regular: instances are consecutive (learners record
# every instance in order) and rate-leveled skips arrive in bursts of
# field-identical ``ProposalValue(SKIP, ...)`` records.  The wire form exploits
# both: it splits ``entries`` into an instance column (a single start instance
# when consecutive, the common case) and a value column, and run-length
# encodes equal skip runs.  Decoding expands runs into *fresh* ``ProposalValue``
# instances, so receivers see the same no-aliasing object graph legacy
# pickling produced.

#: Shortest equal-skip run worth a ``(count, value)`` marker.  Below this the
#: per-run tuple overhead exceeds the interned-skip back-reference it replaces.
_SEGMENT_RUN_MIN = 3


def _segment_wire_reduce(segment: "RingSegment"):
    """Pickle reduce hook: ``RingSegment`` → columnar, skip-run-compressed form."""
    entries = segment.entries
    count = len(entries)
    instances: Union[int, Tuple[int, ...]] = 0
    if count:
        first = entries[0][0]
        if all(inst == first + idx for idx, (inst, _) in enumerate(entries)):
            instances = first
        else:
            instances = tuple(inst for inst, _ in entries)
    packed: List[Union[ProposalValue, Tuple[int, ProposalValue]]] = []
    idx = 0
    while idx < count:
        value = entries[idx][1]
        end = idx + 1
        if value.is_skip():
            while end < count and entries[end][1] == value:
                end += 1
        if end - idx >= _SEGMENT_RUN_MIN:
            packed.append((end - idx, value))
        else:
            packed.extend(entry[1] for entry in entries[idx:end])
        idx = end
    return _segment_wire_build, (
        segment.incarnation,
        segment.start,
        instances,
        count,
        tuple(packed),
    )


def _segment_wire_build(
    incarnation: int,
    start: int,
    instances: Union[int, Tuple[int, ...]],
    count: int,
    packed: Tuple[Union[ProposalValue, Tuple[int, ProposalValue]], ...],
) -> "RingSegment":
    """Rebuild a :class:`RingSegment` from its compressed wire form."""
    values: List[ProposalValue] = []
    for item in packed:
        if type(item) is tuple:
            run, value = item
            values.append(value)
            for _ in range(run - 1):
                values.append(
                    ProposalValue(
                        value.payload,
                        value.size_bytes,
                        value.proposer,
                        value.proposal_id,
                        value.created_at,
                    )
                )
        else:
            values.append(item)
    if type(instances) is tuple:
        entries = list(zip(instances, values))
    else:
        entries = list(zip(range(instances, instances + count), values))
    return RingSegment(incarnation=incarnation, start=start, entries=entries)


register_wire_reducer(RingSegment, _segment_wire_reduce)


#: What ``feed_segments`` accepts per ring: a tagged segment or a bare
#: entry list (the pre-incarnation form, still used by offline replays).
SegmentLike = Union["RingSegment", Iterable[Tuple[int, ProposalValue]]]


def effective_streams(
    history: Mapping[int, Sequence[RingSegment]],
) -> Dict[int, List[Tuple[int, ProposalValue]]]:
    """Collapse incarnation-segmented recordings into deduped whole streams.

    ``history`` maps each ring to its recorded incarnation runs in
    chronological order (see
    :meth:`repro.multiring.process.MultiRingProcess.record_ring_history`).
    Restarted learners re-emit stream prefixes; this helper drops the
    duplicates — verifying each one decided the same value as the original
    emission, raising :class:`MergeDivergenceError` otherwise — and returns
    the plain per-ring streams :func:`replay_streams` consumes.  It is the
    offline anchor builder for runs with crashes: feeding any chunking of
    ``history`` through a :class:`MergeCursor` must match
    ``replay_streams(effective_streams(history))`` exactly.
    """
    streams: Dict[int, List[Tuple[int, ProposalValue]]] = {}
    for ring_id in sorted(history):
        out: List[Tuple[int, ProposalValue]] = []
        seen: Dict[int, ProposalValue] = {}
        high = -1
        for segment in history[ring_id]:
            for instance, value in segment.entries:
                if instance <= high:
                    original = seen.get(instance)
                    if original is not None and original.payload != value.payload:
                        raise MergeDivergenceError(
                            f"ring {ring_id} instance {instance} re-emitted a "
                            f"different value ({original.payload!r} vs "
                            f"{value.payload!r})"
                        )
                    continue
                out.append((instance, value))
                seen[instance] = value
                high = instance
        streams[ring_id] = out
    return streams


def replay_streams(
    streams: Mapping[int, RingStream],
    messages_per_round: int = 1,
    on_deliver: Optional[DeliverCallback] = None,
) -> List[Tuple[int, int, ProposalValue]]:
    """Replay recorded per-ring decision streams through the deterministic merge.

    The offline form of the merge stage: given, for every subscribed group,
    the ordered ``(instance, value)`` stream its ring decided (skips
    included), reconstruct the delivery sequence a learner subscribed to all
    of them would produce.  Implemented as a thin wrapper over
    :class:`MergeCursor` — each complete stream is fed as one segment, and
    because the merge is insensitive to how inputs interleave across groups,
    the result is identical to any segment-by-segment streaming of the same
    streams (the property the reactive differential tests pin down).

    Returns the merged deliveries as ``(group, instance, value)`` triples
    (skips consumed silently, batches unpacked — the same output an online
    merger hands to the application).  ``on_deliver`` is additionally invoked
    per delivery when given.
    """
    if not streams:
        raise ValueError("replay needs at least one group stream")
    cursor = MergeCursor(
        sorted(streams), messages_per_round=messages_per_round, on_deliver=on_deliver
    )
    for group in sorted(streams):
        cursor.feed(group, streams[group])
    return cursor.merged


class RingSegmentBuffer:
    """Accumulates per-ring ordered instances between barrier cuts.

    The producer side of the streaming merge: installed as a ring-stream tap
    (:meth:`repro.multiring.process.MultiRingProcess.record_ring_segments`),
    it collects every ``(instance, value)`` a ring learner emits — skips
    included — and :meth:`cut` hands over everything recorded since the last
    cut as one tagged :class:`RingSegment` per ring, ready to ship through a
    barrier.  Several processes may share one buffer (their rings are
    disjoint).

    Crash safety: the buffer tracks each ring's incarnation and resume
    position.  :meth:`mark_down` (the producer crashed) drops the entries
    recorded since the last cut — the restarted learner re-emits them, and
    shipping a pre-crash tail next to the incarnation-0 re-emission would
    hand the consumer a non-contiguous mess — and keeps the ring out of cuts
    until :meth:`mark_restart` announces the next incarnation.  Rings marked
    down are *uncovered*: their absence from a cut tells the merge stage not
    to advance their watermark past the barrier.
    """

    __slots__ = ("_entries", "_incarnations", "_positions", "_down", "_known", "total_entries")

    def __init__(self) -> None:
        self._entries: Dict[int, List[Tuple[int, ProposalValue]]] = {}
        self._incarnations: Dict[int, int] = {}
        #: Entries already cut in the ring's current incarnation.
        self._positions: Dict[int, int] = {}
        #: Rings whose producer is crashed — excluded from cuts.
        self._down: Set[int] = set()
        #: Every ring ever subscribed or recorded; covered cuts include them
        #: even when idle, so the consumer can advance their watermarks.
        self._known: Set[int] = set()
        #: Entries recorded over the buffer's lifetime (cuts included).
        self.total_entries = 0

    def subscribe(self, ring_ids: Iterable[int]) -> None:
        """Declare rings up-front so idle ones still appear in covered cuts."""
        self._known.update(ring_ids)

    def append(self, ring_id: int, instance: int, value: ProposalValue) -> None:
        """Record one ordered instance (the tap callback)."""
        self._known.add(ring_id)
        self._entries.setdefault(ring_id, []).append((instance, value))
        self.total_entries += 1

    def mark_down(self, ring_ids: Iterable[int]) -> None:
        """The producer of these rings crashed: drop its uncut tail.

        The dropped entries are not lost — the restarted learner re-emits
        the whole prefix under its next incarnation — and until
        :meth:`mark_restart` the rings are omitted from cuts, which is how
        the consumer learns their streams are no longer complete up to the
        barrier.
        """
        for ring_id in ring_ids:
            self._known.add(ring_id)
            self._down.add(ring_id)
            dropped = self._entries.pop(ring_id, None)
            if dropped:
                self.total_entries -= len(dropped)

    def mark_restart(self, ring_ids: Iterable[int]) -> None:
        """The producer restarted: open the rings' next incarnation.

        Resume positions reset to 0 — the recreated learner re-emits its
        ring's stream from the first instance — and the rings re-enter cuts
        immediately (the re-emitted prefix is a valid, contiguous stream of
        the new incarnation even while gap repair is still filling it).
        """
        for ring_id in ring_ids:
            self._known.add(ring_id)
            self._down.discard(ring_id)
            self._incarnations[ring_id] = self._incarnations.get(ring_id, 0) + 1
            self._positions[ring_id] = 0
            # Anything recorded between crash and restart would be stale;
            # mark_down already dropped it, but be safe against direct use.
            self._entries.pop(ring_id, None)

    def cut(self) -> Dict[int, RingSegment]:
        """Detach the segments recorded since the last cut, tagged.

        Every known ring whose producer is up yields a segment — an empty
        one when the ring was idle, which still advances the consumer-side
        watermark.  Rings marked down are omitted (uncovered).
        """
        segments: Dict[int, RingSegment] = {}
        entries = self._entries
        self._entries = {}
        for ring_id in self._known:
            if ring_id in self._down:
                entries.pop(ring_id, None)
                continue
            recorded = entries.pop(ring_id, None) or []
            start = self._positions.get(ring_id, 0)
            segments[ring_id] = RingSegment(
                incarnation=self._incarnations.get(ring_id, 0),
                start=start,
                entries=recorded,
            )
            self._positions[ring_id] = start + len(recorded)
        # Entries for rings never subscribed nor marked cannot exist (append
        # adds to _known), but drop any leftovers defensively.
        return segments

    def incarnation(self, ring_id: int) -> int:
        """The ring's current incarnation (0 until its first restart)."""
        return self._incarnations.get(ring_id, 0)

    def __bool__(self) -> bool:
        return bool(self._entries)


class MergeCursor:
    """Incremental round-robin merge over per-ring decision-stream segments.

    The streaming form of the merge stage: segments — the ``(instance,
    value)`` entries a ring decided since the last barrier, optionally tagged
    with a **watermark** (the simulated time up to which that ring's stream
    is known complete) — are fed as they arrive, and the cursor emits merged
    deliveries as soon as the round-robin can consume them.  Emission is
    gated by the inputs themselves: the round-robin stalls at the first
    subscribed ring with no queued entries, so the cursor never emits a
    delivery that a later segment could reorder — deliveries drained after
    feeding every ring up to watermark ``W`` are final, and
    :attr:`watermark` (the joint minimum) tells consumers how fresh the
    merged state is.

    Wraps a :class:`DeterministicMerger`, so the cumulative delivery sequence
    is bit-identical to the offline :func:`replay_streams` of the
    concatenated segments, for every chunking.

    Parameters
    ----------
    retain_history:
        Keep every delivery for :attr:`merged` (the default; what
        :func:`replay_streams` and the differential digests need).  Pass
        ``False`` for long-running reactive consumers that only process
        :meth:`drain` windows — the cursor then holds no more than one
        barrier's deliveries, instead of the whole run's.
    """

    def __init__(
        self,
        group_ids: Sequence[int],
        messages_per_round: int = 1,
        on_deliver: Optional[DeliverCallback] = None,
        retain_history: bool = True,
    ) -> None:
        self._on_deliver = on_deliver
        self._retain = retain_history
        self._merged: List[Tuple[int, int, ProposalValue]] = []
        self._drained = 0
        groups = sorted(set(group_ids))
        self._watermarks: Dict[int, Optional[float]] = {g: None for g in groups}
        #: Last barrier watermark accepted by :meth:`feed_segments`.
        self._last_barrier: Optional[float] = None
        #: Per-ring incarnation/resume-position tracking (crash-safe feeds).
        self._incarnations: Dict[int, int] = {g: 0 for g in groups}
        self._positions: Dict[int, int] = {g: 0 for g in groups}
        #: Highest instance merged per ring, and what each instance decided —
        #: the dedup floor and the divergence oracle for re-emitted prefixes.
        self._high: Dict[int, int] = {g: -1 for g in groups}
        self._seen: Dict[int, Dict[int, ProposalValue]] = {g: {} for g in groups}
        self._duplicates = 0
        self._merger = DeterministicMerger(
            group_ids, messages_per_round=messages_per_round, on_deliver=self._collect
        )

    def _collect(self, group: int, instance: int, value: ProposalValue) -> None:
        self._merged.append((group, instance, value))
        if self._on_deliver is not None:
            self._on_deliver(group, instance, value)

    # ---------------------------------------------------------------- inputs
    def feed(
        self,
        group_id: int,
        entries: Iterable[Tuple[int, ProposalValue]] = (),
        watermark: Optional[float] = None,
        incarnation: Optional[int] = None,
        start: Optional[int] = None,
    ) -> None:
        """Feed one ring's next segment (possibly empty) into the merge.

        ``entries`` must continue the ring's ordered stream exactly where the
        previous segment ended.  ``watermark`` advances the ring's completion
        time — an empty segment with a watermark is how an idle ring reports
        progress; feeding a watermark that moves backwards is an error.

        ``incarnation``/``start`` are the crash-safety tags carried by
        :class:`RingSegment`: a higher incarnation announces the producer
        restarted (its re-emitted stream prefix is deduped against what was
        already merged — a payload mismatch raises
        :class:`MergeDivergenceError`), and ``start`` is verified against the
        entries consumed so far in that incarnation so a segment lost in
        transport surfaces as an error instead of a silent gap.
        """
        if group_id not in self._watermarks:
            raise KeyError(f"not subscribed to group {group_id}")
        if watermark is not None:
            previous = self._watermarks[group_id]
            if previous is not None and watermark < previous:
                raise ValueError(
                    f"watermark of group {group_id} moved backwards "
                    f"({previous} -> {watermark})"
                )
            self._watermarks[group_id] = watermark
        if incarnation is not None:
            current = self._incarnations[group_id]
            if incarnation < current:
                raise ValueError(
                    f"segment of group {group_id} carries stale incarnation "
                    f"{incarnation} (current {current})"
                )
            if incarnation > current:
                self._incarnations[group_id] = incarnation
                self._positions[group_id] = 0
            if start is not None and start != self._positions[group_id]:
                raise ValueError(
                    f"segment of group {group_id} incarnation {incarnation} "
                    f"resumes at position {start}, expected "
                    f"{self._positions[group_id]} — a segment was lost or "
                    f"reordered in transport"
                )
        count = 0
        high = self._high[group_id]
        seen = self._seen[group_id]
        offer = self._merger.offer
        for instance, value in entries:
            count += 1
            if instance <= high:
                # Re-emitted prefix of a restarted producer: drop it, but
                # only after checking it decided the very same value.
                original = seen.get(instance)
                if original is not None and original.payload != value.payload:
                    raise MergeDivergenceError(
                        f"ring {group_id} instance {instance} re-emitted a "
                        f"different value ({original.payload!r} vs "
                        f"{value.payload!r})"
                    )
                self._duplicates += 1
                continue
            seen[instance] = value
            high = instance
            offer(group_id, instance, value)
        self._high[group_id] = high
        if incarnation is not None:
            self._positions[group_id] += count

    def feed_segments(
        self,
        segments: Mapping[int, "SegmentLike"],
        watermark: Optional[float] = None,
        groups: Optional[Iterable[int]] = None,
    ) -> List[Tuple[int, int, ProposalValue]]:
        """Feed one barrier's segments for every subscribed ring; drain.

        ``watermark`` (the barrier time) advances every covered ring not
        already past it (a ring ahead of the barrier keeps its own mark) —
        watermarks are applied before any entry so deliveries emitted by this
        call observe the joint watermark they became final at.  ``groups``
        limits which rings the barrier covers: rings outside it keep their
        marks (their streams are not known complete up to the barrier — e.g.
        their producer is crashed or partitioned away), which is what lets
        the joint watermark stall honestly instead of over-promising
        freshness.  By default every subscribed ring is covered.

        Barrier watermarks must strictly advance: a regressed or duplicated
        one raises :class:`StaleWatermarkError` naming the marks — silently
        ignoring it used to wedge the joint watermark forever.

        Segment values may be tagged :class:`RingSegment` instances (their
        incarnation/resume tags are enforced, see :meth:`feed`) or bare entry
        iterables.  Returns the deliveries newly emitted by this barrier
        (see :meth:`drain`).
        """
        if watermark is not None:
            if self._last_barrier is not None and watermark <= self._last_barrier:
                marks = {g: m for g, m in self._watermarks.items()}
                raise StaleWatermarkError(
                    f"barrier watermark {watermark} does not advance past the "
                    f"previous barrier {self._last_barrier} (ring marks: "
                    f"{marks}) — stale or duplicated segment shipment"
                )
            self._last_barrier = watermark
            covered = self._watermarks if groups is None else groups
            for group in covered:
                current = self._watermarks[group]
                if current is None or watermark > current:
                    self.feed(group, (), watermark)
        for group in sorted(segments):
            segment = segments[group]
            if isinstance(segment, RingSegment):
                self.feed(
                    group,
                    segment.entries,
                    incarnation=segment.incarnation,
                    start=segment.start,
                )
            else:
                self.feed(group, segment)
        return self.drain()

    # --------------------------------------------------------------- outputs
    def drain(self) -> List[Tuple[int, int, ProposalValue]]:
        """Deliveries emitted since the last drain (finalised merge output)."""
        if self._retain:
            new = self._merged[self._drained:]
            self._drained = len(self._merged)
            return new
        new = self._merged
        self._merged = []
        return new

    @property
    def merged(self) -> List[Tuple[int, int, ProposalValue]]:
        """Every delivery emitted so far, in merge order (drains included).

        With ``retain_history=False`` only the not-yet-drained deliveries
        remain.
        """
        return list(self._merged)

    # ------------------------------------------------------------ inspection
    @property
    def watermark(self) -> Optional[float]:
        """The joint watermark: merged state is complete up to this time.

        ``None`` until every subscribed ring has reported one.
        """
        minimum: Optional[float] = None
        for mark in self._watermarks.values():
            if mark is None:
                return None
            if minimum is None or mark < minimum:
                minimum = mark
        return minimum

    def ring_watermark(self, group_id: int) -> Optional[float]:
        """One ring's completion time (``None`` until it first reports)."""
        return self._watermarks[group_id]

    @property
    def last_barrier(self) -> Optional[float]:
        """The last barrier watermark accepted by :meth:`feed_segments`."""
        return self._last_barrier

    def incarnation(self, group_id: int) -> int:
        """The ring's current producer incarnation (0 until a restart)."""
        return self._incarnations[group_id]

    @property
    def duplicates_dropped(self) -> int:
        """Re-emitted entries deduped so far (restart re-emissions)."""
        return self._duplicates

    @property
    def groups(self) -> List[int]:
        """Subscribed group ids in merge order."""
        return sorted(self._watermarks)

    @property
    def delivered_count(self) -> int:
        """Application messages delivered so far (skips excluded)."""
        return self._merger.delivered_count

    @property
    def skipped_count(self) -> int:
        """Skip instances consumed so far."""
        return self._merger.skipped_count

    def pending(self, group_id: int) -> int:
        """Instances queued for ``group_id`` not yet consumed by the merge."""
        return self._merger.pending(group_id)


class DeterministicMerger:
    """Round-robin merge over the rings a learner subscribes to.

    Parameters
    ----------
    group_ids:
        The rings/groups this learner subscribes to.  Order does not matter;
        the merge always iterates them in ascending id order as the paper
        prescribes.
    messages_per_round:
        The ``M`` parameter: consensus instances consumed from one ring before
        moving to the next.
    on_deliver:
        Callback ``(group_id, instance, value)`` invoked for every delivered
        application message (skips are consumed silently).  Values packed into
        one instance by coordinator batching are unpacked and delivered
        individually, preserving their order inside the batch.
    """

    def __init__(
        self,
        group_ids: Sequence[int],
        messages_per_round: int = 1,
        on_deliver: Optional[DeliverCallback] = None,
    ) -> None:
        if not group_ids:
            raise ValueError("a merger needs at least one group")
        if messages_per_round < 1:
            raise ValueError("M (messages_per_round) must be >= 1")
        self._groups: List[int] = sorted(set(group_ids))
        self._m = messages_per_round
        self._on_deliver = on_deliver or (lambda *args: None)
        self._queues: Dict[int, Deque[Tuple[int, ProposalValue]]] = {
            g: deque() for g in self._groups
        }
        self._current_index = 0
        self._consumed_in_round = 0
        self._delivered = 0
        self._skipped = 0

    # ---------------------------------------------------------------- inputs
    def offer(self, group_id: int, instance: int, value: ProposalValue) -> None:
        """Feed the next ordered instance of ``group_id`` into the merge."""
        queue = self._queues.get(group_id)
        if queue is None:
            raise KeyError(f"not subscribed to group {group_id}")
        if not queue and self._groups[self._current_index] == group_id:
            # Fast path (the only path for a single-ring learner): the offered
            # instance is exactly what the round-robin would consume next, so
            # emit it without bouncing through the deque.  The plain-value
            # emit is inlined; skips and packed values take the shared helper.
            payload = value.payload
            if payload is SKIP:
                self._skipped += 1
            elif isinstance(payload, PackedValues):
                self._emit(group_id, instance, value)
            else:
                self._delivered += 1
                self._on_deliver(group_id, instance, value)
            self._consumed_in_round += 1
            if self._consumed_in_round >= self._m:
                self._consumed_in_round = 0
                self._current_index = (self._current_index + 1) % len(self._groups)
                self._advance()
            return
        queue.append((instance, value))
        self._advance()

    def subscribe(self, group_id: int) -> None:
        """Add a subscription (takes effect for subsequent rounds)."""
        if group_id not in self._queues:
            self._queues[group_id] = deque()
            self._groups = sorted(self._queues)
            # Restart the round pointer deterministically.
            self._current_index = 0
            self._consumed_in_round = 0

    # -------------------------------------------------------------- merging
    def _advance(self) -> None:
        """Deliver as much as possible while the current ring has input."""
        while True:
            group = self._groups[self._current_index]
            queue = self._queues[group]
            if not queue:
                return
            instance, value = queue.popleft()
            self._emit(group, instance, value)
            self._consumed_in_round += 1
            if self._consumed_in_round >= self._m:
                self._consumed_in_round = 0
                self._current_index = (self._current_index + 1) % len(self._groups)

    def _emit(self, group: int, instance: int, value: ProposalValue) -> None:
        # Runs once per consumed instance: test the payload sentinel directly
        # instead of going through ``is_skip()``.
        payload = value.payload
        if payload is SKIP:
            self._skipped += 1
            return
        if isinstance(payload, PackedValues):
            # Shared recursive unpacker: every leaf value of the packed
            # instance (packs of packs included) is delivered under the one
            # instance that ordered it, skips inside the pack excluded.
            for packed in _iter_leaf_values(value):
                if packed.payload is SKIP:
                    self._skipped += 1
                    continue
                self._delivered += 1
                self._on_deliver(group, instance, packed)
            return
        self._delivered += 1
        self._on_deliver(group, instance, value)

    # ------------------------------------------------------------ inspection
    @property
    def delivered_count(self) -> int:
        """Application messages delivered so far (skips excluded)."""
        return self._delivered

    @property
    def skipped_count(self) -> int:
        """Skip instances consumed so far."""
        return self._skipped

    @property
    def groups(self) -> List[int]:
        """Subscribed group ids in merge order."""
        return list(self._groups)

    @property
    def current_group(self) -> int:
        """The group the merge is currently consuming from."""
        return self._groups[self._current_index]

    def pending(self, group_id: int) -> int:
        """Instances queued for ``group_id`` not yet consumed by the merge."""
        return len(self._queues[group_id])

    def is_round_boundary(self) -> bool:
        """Whether the merge sits exactly at the start of a round.

        Replicas take checkpoints at round boundaries so that the merge
        position after installing a checkpoint is unambiguous (see
        :mod:`repro.recovery.checkpointing`).
        """
        return self._current_index == 0 and self._consumed_in_round == 0

    def fast_forward(self, group_positions: Dict[int, int]) -> None:
        """Reset the merge after a checkpoint install.

        ``group_positions`` maps each group to the highest instance already
        reflected in the installed checkpoint; queued entries at or below that
        position are dropped and the round-robin pointer is reset to the start
        of a round (checkpoints are only taken at round boundaries).
        """
        for group, up_to in group_positions.items():
            if group not in self._queues:
                continue
            queue = self._queues[group]
            while queue and queue[0][0] <= up_to:
                queue.popleft()
        self._current_index = 0
        self._consumed_in_round = 0
