"""Deterministic merge of multiple ring streams.

A Multi-Ring Paxos learner subscribed to several rings must deliver messages
from those rings in an order that every other learner with the same
subscriptions reproduces exactly.  The paper's rule (Section 4): deliver the
messages decided in ``M`` consensus instances from the first ring (lowest
ring id), then ``M`` instances from the second ring, and so on, wrapping
around.

Skip instances (proposed by rate leveling) count towards the ``M`` instances
of their ring but deliver nothing to the application — they exist precisely so
that an idle ring does not stall the round-robin.

:class:`DeterministicMerger` consumes per-ring streams of *ordered* decided
instances (produced by :class:`repro.ringpaxos.learner.RingLearner`) and emits
application deliveries.  It is a pure data structure, which makes the ordering
property easy to test: any interleaving of `offer()` calls produces the same
delivery sequence.

That interleaving-independence is also what makes the merge *replayable*:
:func:`replay_streams` reconstructs a learner's delivery order offline from
recorded per-ring decision streams.  The sharded execution engine uses it as
its **merge stage** — a deployment whose rings share learners only (the
paper's Figure 6/7 configurations) runs one ring component per shard, each
shard records its rings' ordered decision streams (skips included), and the
parent replays them here to obtain the exact round-robin order the shared
learner would have produced (see :mod:`repro.multiring.sharding` and
:mod:`repro.bench.parallel`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..paxos.messages import SKIP, ProposalValue
from ..ringpaxos.coordinator import PackedValues

__all__ = ["DeterministicMerger", "replay_streams"]

DeliverCallback = Callable[[int, int, ProposalValue], None]

#: One ring's recorded output: ordered ``(instance, value)`` pairs exactly as
#: a :class:`~repro.ringpaxos.learner.RingLearner` emitted them (skips
#: included — the round-robin needs them to advance).
RingStream = Sequence[Tuple[int, ProposalValue]]


def replay_streams(
    streams: Mapping[int, RingStream],
    messages_per_round: int = 1,
    on_deliver: Optional[DeliverCallback] = None,
) -> List[Tuple[int, int, ProposalValue]]:
    """Replay recorded per-ring decision streams through the deterministic merge.

    The merge stage of sharded execution: given, for every subscribed group,
    the ordered ``(instance, value)`` stream its ring decided (skips
    included), reconstruct the delivery sequence a learner subscribed to all
    of them would produce.  Because :class:`DeterministicMerger` is
    insensitive to how ``offer()`` calls interleave across groups, the replay
    order (group by group) is irrelevant — the result is the unique
    round-robin order of the streams.

    Returns the merged deliveries as ``(group, instance, value)`` triples
    (skips consumed silently, batches unpacked — the same output an online
    merger hands to the application).  ``on_deliver`` is additionally invoked
    per delivery when given.
    """
    if not streams:
        raise ValueError("replay needs at least one group stream")
    deliveries: List[Tuple[int, int, ProposalValue]] = []
    callback = on_deliver

    def collect(group: int, instance: int, value: ProposalValue) -> None:
        deliveries.append((group, instance, value))
        if callback is not None:
            callback(group, instance, value)

    merger = DeterministicMerger(
        sorted(streams), messages_per_round=messages_per_round, on_deliver=collect
    )
    for group in sorted(streams):
        for instance, value in streams[group]:
            merger.offer(group, instance, value)
    return deliveries


class DeterministicMerger:
    """Round-robin merge over the rings a learner subscribes to.

    Parameters
    ----------
    group_ids:
        The rings/groups this learner subscribes to.  Order does not matter;
        the merge always iterates them in ascending id order as the paper
        prescribes.
    messages_per_round:
        The ``M`` parameter: consensus instances consumed from one ring before
        moving to the next.
    on_deliver:
        Callback ``(group_id, instance, value)`` invoked for every delivered
        application message (skips are consumed silently).  Values packed into
        one instance by coordinator batching are unpacked and delivered
        individually, preserving their order inside the batch.
    """

    def __init__(
        self,
        group_ids: Sequence[int],
        messages_per_round: int = 1,
        on_deliver: Optional[DeliverCallback] = None,
    ) -> None:
        if not group_ids:
            raise ValueError("a merger needs at least one group")
        if messages_per_round < 1:
            raise ValueError("M (messages_per_round) must be >= 1")
        self._groups: List[int] = sorted(set(group_ids))
        self._m = messages_per_round
        self._on_deliver = on_deliver or (lambda *args: None)
        self._queues: Dict[int, Deque[Tuple[int, ProposalValue]]] = {
            g: deque() for g in self._groups
        }
        self._current_index = 0
        self._consumed_in_round = 0
        self._delivered = 0
        self._skipped = 0

    # ---------------------------------------------------------------- inputs
    def offer(self, group_id: int, instance: int, value: ProposalValue) -> None:
        """Feed the next ordered instance of ``group_id`` into the merge."""
        queue = self._queues.get(group_id)
        if queue is None:
            raise KeyError(f"not subscribed to group {group_id}")
        if not queue and self._groups[self._current_index] == group_id:
            # Fast path (the only path for a single-ring learner): the offered
            # instance is exactly what the round-robin would consume next, so
            # emit it without bouncing through the deque.
            self._emit(group_id, instance, value)
            self._consumed_in_round += 1
            if self._consumed_in_round >= self._m:
                self._consumed_in_round = 0
                self._current_index = (self._current_index + 1) % len(self._groups)
                self._advance()
            return
        queue.append((instance, value))
        self._advance()

    def subscribe(self, group_id: int) -> None:
        """Add a subscription (takes effect for subsequent rounds)."""
        if group_id not in self._queues:
            self._queues[group_id] = deque()
            self._groups = sorted(self._queues)
            # Restart the round pointer deterministically.
            self._current_index = 0
            self._consumed_in_round = 0

    # -------------------------------------------------------------- merging
    def _advance(self) -> None:
        """Deliver as much as possible while the current ring has input."""
        while True:
            group = self._groups[self._current_index]
            queue = self._queues[group]
            if not queue:
                return
            instance, value = queue.popleft()
            self._emit(group, instance, value)
            self._consumed_in_round += 1
            if self._consumed_in_round >= self._m:
                self._consumed_in_round = 0
                self._current_index = (self._current_index + 1) % len(self._groups)

    def _emit(self, group: int, instance: int, value: ProposalValue) -> None:
        # Runs once per consumed instance: test the payload sentinel directly
        # instead of going through ``is_skip()``.
        payload = value.payload
        if payload is SKIP:
            self._skipped += 1
            return
        if isinstance(payload, PackedValues):
            for packed in payload:
                self._delivered += 1
                self._on_deliver(group, instance, packed)
            return
        self._delivered += 1
        self._on_deliver(group, instance, value)

    # ------------------------------------------------------------ inspection
    @property
    def delivered_count(self) -> int:
        """Application messages delivered so far (skips excluded)."""
        return self._delivered

    @property
    def skipped_count(self) -> int:
        """Skip instances consumed so far."""
        return self._skipped

    @property
    def groups(self) -> List[int]:
        """Subscribed group ids in merge order."""
        return list(self._groups)

    @property
    def current_group(self) -> int:
        """The group the merge is currently consuming from."""
        return self._groups[self._current_index]

    def pending(self, group_id: int) -> int:
        """Instances queued for ``group_id`` not yet consumed by the merge."""
        return len(self._queues[group_id])

    def is_round_boundary(self) -> bool:
        """Whether the merge sits exactly at the start of a round.

        Replicas take checkpoints at round boundaries so that the merge
        position after installing a checkpoint is unambiguous (see
        :mod:`repro.recovery.checkpointing`).
        """
        return self._current_index == 0 and self._consumed_in_round == 0

    def fast_forward(self, group_positions: Dict[int, int]) -> None:
        """Reset the merge after a checkpoint install.

        ``group_positions`` maps each group to the highest instance already
        reflected in the installed checkpoint; queued entries at or below that
        position are dropped and the round-robin pointer is reset to the start
        of a round (checkpoints are only taken at round boundaries).
        """
        for group, up_to in group_positions.items():
            if group not in self._queues:
                continue
            queue = self._queues[group]
            while queue and queue[0][0] <= up_to:
                queue.popleft()
        self._current_index = 0
        self._consumed_in_round = 0
