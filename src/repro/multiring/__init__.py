"""Multi-Ring Paxos: atomic multicast from coordinated Ring Paxos instances."""

from .group import GroupSubscriptions, MulticastGroup
from .merge import DeterministicMerger
from .process import MultiRingProcess
from .ratelevel import GLOBAL_RATE_LEVELER, LOCAL_RATE_LEVELER, RateLeveler
from .sharding import ShardPlan, conservative_lookahead, plan_shards, ring_components

__all__ = [
    "GroupSubscriptions",
    "MulticastGroup",
    "DeterministicMerger",
    "MultiRingProcess",
    "GLOBAL_RATE_LEVELER",
    "LOCAL_RATE_LEVELER",
    "RateLeveler",
    "ShardPlan",
    "conservative_lookahead",
    "plan_shards",
    "ring_components",
]
