"""Multi-Ring Paxos: atomic multicast from coordinated Ring Paxos instances."""

from .group import GroupSubscriptions, MulticastGroup
from .merge import DeterministicMerger, MergeCursor, RingSegmentBuffer, replay_streams
from .process import MultiRingProcess
from .ratelevel import GLOBAL_RATE_LEVELER, LOCAL_RATE_LEVELER, RateLeveler
from .sharding import ShardPlan, conservative_lookahead, plan_shards, ring_components

__all__ = [
    "GroupSubscriptions",
    "MulticastGroup",
    "DeterministicMerger",
    "MergeCursor",
    "RingSegmentBuffer",
    "replay_streams",
    "MultiRingProcess",
    "GLOBAL_RATE_LEVELER",
    "LOCAL_RATE_LEVELER",
    "RateLeveler",
    "ShardPlan",
    "conservative_lookahead",
    "plan_shards",
    "ring_components",
]
