"""Multicast groups and subscriptions.

Multi-Ring Paxos assigns one Ring Paxos instance (a *ring*) to each multicast
group.  The paper adopts an "inverted" group addressing semantics (Section 3):
clients address exactly one group per multicast, and any server may subscribe
to any set of groups it is interested in — the replication groups of the
shards it currently replicates.

:class:`GroupSubscriptions` is the bookkeeping of which process subscribes to
which groups.  The set of processes that subscribe to exactly the same set of
groups forms a *partition* (Section 5.2); partitions matter for recovery
because a replica may only install checkpoints taken by replicas of its own
partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

__all__ = ["GroupSubscriptions", "MulticastGroup"]


@dataclass(frozen=True)
class MulticastGroup:
    """A multicast group and the ring that implements it."""

    group_id: int
    ring_id: int

    def __post_init__(self) -> None:
        if self.group_id < 0:
            raise ValueError("group ids must be non-negative")


class GroupSubscriptions:
    """Tracks which learner subscribes to which multicast groups."""

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Set[int]] = {}

    # ------------------------------------------------------------- mutation
    def subscribe(self, process: str, group_id: int) -> None:
        """Record that ``process`` wants to deliver messages of ``group_id``."""
        self._subscriptions.setdefault(process, set()).add(group_id)

    def unsubscribe(self, process: str, group_id: int) -> None:
        """Remove a subscription (no-op when absent)."""
        if process in self._subscriptions:
            self._subscriptions[process].discard(group_id)
            if not self._subscriptions[process]:
                del self._subscriptions[process]

    # -------------------------------------------------------------- queries
    def groups_of(self, process: str) -> List[int]:
        """Sorted group ids ``process`` subscribes to."""
        return sorted(self._subscriptions.get(process, set()))

    def subscribers_of(self, group_id: int) -> List[str]:
        """Processes subscribed to ``group_id`` (sorted for determinism)."""
        return sorted(p for p, groups in self._subscriptions.items() if group_id in groups)

    def partition_of(self, process: str) -> FrozenSet[int]:
        """The partition signature of ``process``: the exact set of its groups."""
        return frozenset(self._subscriptions.get(process, set()))

    def partition_peers(self, process: str) -> List[str]:
        """Processes in the same partition as ``process`` (excluding itself).

        Only these peers hold checkpoints that ``process`` can install during
        recovery (Section 5.2).
        """
        signature = self.partition_of(process)
        if not signature:
            return []
        return sorted(
            p
            for p, groups in self._subscriptions.items()
            if p != process and frozenset(groups) == signature
        )

    def partitions(self) -> Dict[FrozenSet[int], List[str]]:
        """All partitions: ``{group set: sorted process names}``."""
        result: Dict[FrozenSet[int], List[str]] = {}
        for process, groups in self._subscriptions.items():
            result.setdefault(frozenset(groups), []).append(process)
        return {sig: sorted(names) for sig, names in result.items()}

    def processes(self) -> List[str]:
        """Every process with at least one subscription."""
        return sorted(self._subscriptions)

    def co_subscription_components(self) -> List[List[int]]:
        """Groups partitioned by transitive co-subscription.

        Two groups belong to the same component when some learner subscribes
        to both (directly or through a chain of learners).  A component is
        the unit of sharded execution: its groups share deterministic-merge
        state at some learner, so they must run in the same shard (see
        :mod:`repro.multiring.sharding`).  Components are returned as sorted
        group-id lists, ordered by smallest group id.
        """
        group_sets = [groups for groups in self._subscriptions.values() if groups]
        parent: Dict[int, int] = {}
        for groups in group_sets:
            for group in groups:
                parent.setdefault(group, group)

        def find(group: int) -> int:
            root = group
            while parent[root] != root:
                root = parent[root]
            while parent[group] != root:
                parent[group], group = root, parent[group]
            return root

        for groups in group_sets:
            ordered = sorted(groups)
            first = ordered[0]
            for other in ordered[1:]:
                a, b = find(first), find(other)
                if a != b:
                    parent[max(a, b)] = min(a, b)
        components: Dict[int, List[int]] = {}
        for group in sorted(parent):
            components.setdefault(find(group), []).append(group)
        return [components[root] for root in sorted(components)]
