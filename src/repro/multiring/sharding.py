"""Shard planning: partition a multi-ring deployment across workers.

Multi-Ring Paxos scales by adding independent rings (Section 6 of the paper);
the parallel engine (:mod:`repro.sim.parallel`) exploits exactly that
independence to spread a simulated deployment over real cores.  The unit of
sharding is a **ring component**: the set of rings transitively connected by
a shared process.  A process that learns from (or proposes to) two rings ties
those rings together — its deterministic merger consumes both streams, so
they must execute in the same shard (*shard-aware subscription*).

:func:`plan_shards` groups rings into components, balances components over
the requested worker count and derives the conservative **lookahead** (the
window length of the barrier synchronisation) as the minimum network latency
between sites hosting different shards.  Deployments whose shards never talk
to each other get ``lookahead = None`` — a single window, the embarrassingly
parallel case.

Shared-learner deployments
--------------------------
A process that is a **learner only** does not have to couple the rings it
subscribes to: its deterministic merge is a pure function of the per-ring
decision streams (:func:`repro.multiring.merge.replay_streams`), so the rings
can run in separate shards that record their streams and a **merge stage** in
the parent reconstructs the learner's delivery order afterwards.  Passing
``shared_learners`` to :func:`plan_shards` opts those processes out of the
component computation; the resulting plan lists them in
:attr:`ShardPlan.merge_learners` together with the groups whose streams the
merge stage must replay.  Coordinators and acceptors can never be shared this
way — they *generate* ring traffic, so a shared one genuinely couples the
rings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..sim.topology import Topology
from .group import GroupSubscriptions

__all__ = ["ShardPlan", "ring_components", "conservative_lookahead", "plan_shards"]


def ring_components(ring_members: Mapping[int, Iterable[str]]) -> List[List[int]]:
    """Partition rings into components connected by shared processes.

    ``ring_members`` maps each ring id to the names of its member processes
    (any role — a shared learner couples rings just as much as a shared
    proposer).  Returns components as sorted lists of ring ids, ordered by
    their smallest ring id, so the partition is deterministic.

    >>> ring_components({0: ["a", "b"], 1: ["c"], 2: ["b", "d"]})
    [[0, 2], [1]]
    """
    parent: Dict[int, int] = {ring: ring for ring in ring_members}

    def find(ring: int) -> int:
        root = ring
        while parent[root] != root:
            root = parent[root]
        while parent[ring] != root:
            parent[ring], ring = root, parent[ring]
        return root

    owner_of_process: Dict[str, int] = {}
    for ring in sorted(ring_members):
        for name in ring_members[ring]:
            if name in owner_of_process:
                a, b = find(owner_of_process[name]), find(ring)
                if a != b:
                    parent[max(a, b)] = min(a, b)
            else:
                owner_of_process[name] = ring
    components: Dict[int, List[int]] = {}
    for ring in sorted(ring_members):
        components.setdefault(find(ring), []).append(ring)
    return [components[root] for root in sorted(components)]


def _sites_by_shard(
    actor_sites: Mapping[str, str],
    actor_shard: Mapping[str, int],
) -> Dict[int, set]:
    """Sites hosting each shard's actors (shared by planning and lookahead)."""
    sites_of_shard: Dict[int, set] = {}
    for name, shard in actor_shard.items():
        site = actor_sites.get(name)
        if site is not None:
            sites_of_shard.setdefault(shard, set()).add(site)
    return sites_of_shard


def conservative_lookahead(
    topology: Topology,
    actor_sites: Mapping[str, str],
    actor_shard: Mapping[str, int],
) -> Optional[float]:
    """Minimum latency between sites hosting actors of different shards.

    This is the safe window length for barrier synchronisation: a message
    sent inside a window cannot be due before the next one starts.  Returns
    ``None`` when no two shards share a defined link (including the
    degenerate single-shard case) — the shards cannot exchange messages, so
    windows are unnecessary.

    Two shards hosting actors on the *same* site would force a lookahead of
    the intra-site latency (typically tens of microseconds — windows so small
    that parallelism cannot pay); that is reported as a plan error by
    :func:`plan_shards` rather than silently accepted here.
    """
    sites_of_shard = _sites_by_shard(actor_sites, actor_shard)
    minimum: Optional[float] = None
    shard_ids = sorted(sites_of_shard)
    for i, a in enumerate(shard_ids):
        for b in shard_ids[i + 1:]:
            for site_a in sites_of_shard[a]:
                for site_b in sites_of_shard[b]:
                    try:
                        latency = min(
                            topology.latency(site_a, site_b),
                            topology.latency(site_b, site_a),
                        )
                    except KeyError:
                        continue
                    if minimum is None or latency < minimum:
                        minimum = latency
    return minimum


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of ring components to shards plus the derived lookahead."""

    #: ring ids per shard, indexed by shard id
    shards: Tuple[Tuple[int, ...], ...]
    #: every member process mapped to its shard
    actor_shard: Mapping[str, int]
    #: barrier window length; ``None`` = no cross-shard links, single window
    lookahead: Optional[float]
    #: learner-only processes whose subscriptions span several shards, mapped
    #: to the (sorted) groups a merge stage must replay for them; empty when
    #: the plan needs no merge stage
    merge_learners: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def shard_count(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    def shard_of_ring(self, ring_id: int) -> int:
        """The shard executing ``ring_id``."""
        for shard, rings in enumerate(self.shards):
            if ring_id in rings:
                return shard
        raise KeyError(f"ring {ring_id} is not in the plan")

    def rings_of_shard(self, shard_id: int) -> List[int]:
        """Ring ids assigned to ``shard_id`` (sorted)."""
        return list(self.shards[shard_id])


def plan_shards(
    ring_members: Mapping[int, Iterable[str]],
    workers: int,
    actor_sites: Optional[Mapping[str, str]] = None,
    topology: Optional[Topology] = None,
    subscriptions: Optional[GroupSubscriptions] = None,
    shared_learners: Optional[Iterable[str]] = None,
) -> ShardPlan:
    """Build a deterministic shard plan for a multi-ring deployment.

    Parameters
    ----------
    ring_members:
        Ring id → member process names (all roles).
    workers:
        Desired shard count; clamped to the number of independent ring
        components (a component can never be split — its rings share
        processes).
    actor_sites, topology:
        When both are given the plan's ``lookahead`` is derived from the
        topology (minimum cross-shard link latency); shards that would share
        a site are rejected, because the resulting intra-site lookahead is
        too small for windowed execution to be worthwhile.  When omitted the
        deployment is assumed to exchange no cross-shard messages
        (``lookahead = None``).
    subscriptions:
        Optional learner subscriptions to validate against: every learner's
        subscribed groups must land in one shard (they do by construction of
        the components when ``ring_members`` includes learners; passing the
        subscriptions catches callers that did not).  Subscriptions held by
        ``shared_learners`` are exempt — the merge stage reconstructs them.
    shared_learners:
        Learner-*only* processes allowed to span shards.  They are excluded
        from the component computation, so rings coupled solely by a shared
        learner land in separate shards; the plan lists each such learner in
        :attr:`ShardPlan.merge_learners` with the groups whose recorded
        streams the merge stage must replay
        (:func:`repro.multiring.merge.replay_streams`).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    ring_members = {ring: list(members) for ring, members in ring_members.items()}
    shared: FrozenSet[str] = frozenset(shared_learners or ())
    coupling_members = {
        ring: [name for name in members if name not in shared]
        for ring, members in ring_members.items()
    }
    components = ring_components(coupling_members)
    shard_count = min(workers, len(components))

    # Greedy balance: biggest components first, always onto the lightest
    # shard (ties to the lowest shard id).  Candidates are ordered by
    # (-weight, canonical component name) — the full sorted ring-id tuple —
    # so the plan is a pure function of the input and can never depend on
    # set/dict iteration order.
    weights = {
        tuple(comp): sum(len(ring_members[ring]) for ring in comp)
        for comp in components
    }
    order = sorted(
        (tuple(comp) for comp in components),
        key=lambda comp: (-weights[comp], comp),
    )
    loads = [0] * shard_count
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for comp in order:
        target = min(range(shard_count), key=lambda s: (loads[s], s))
        shards[target].extend(comp)
        loads[target] += weights[comp]
    shard_tuples = tuple(tuple(sorted(rings)) for rings in shards)

    actor_shard: Dict[str, int] = {}
    for shard_id, rings in enumerate(shard_tuples):
        for ring in rings:
            for name in ring_members[ring]:
                if name not in shared:
                    actor_shard[name] = shard_id

    ring_shard = {
        ring: shard_id
        for shard_id, rings in enumerate(shard_tuples)
        for ring in rings
    }
    merge_learners: Dict[str, Tuple[int, ...]] = {}
    for name in sorted(shared):
        groups = sorted(
            ring for ring, members in ring_members.items() if name in members
        )
        owners = {ring_shard[ring] for ring in groups if ring in ring_shard}
        if len(owners) > 1:
            merge_learners[name] = tuple(groups)
        elif owners:
            # All of this learner's rings landed in one shard after all: it
            # can simply live there, no merge stage needed.
            actor_shard[name] = owners.pop()

    if subscriptions is not None:
        effective = subscriptions
        if shared:
            effective = GroupSubscriptions()
            for process in subscriptions.processes():
                if process in shared:
                    continue
                for group in subscriptions.groups_of(process):
                    effective.subscribe(process, group)
        for component in effective.co_subscription_components():
            owners = {
                ring_shard[group] for group in component if group in ring_shard
            }
            if len(owners) > 1:
                raise ValueError(
                    f"groups {component} are merged by a common subscriber but "
                    f"the plan spreads them over shards {sorted(owners)}; "
                    "co-subscribed groups must be co-located (or the subscriber "
                    "declared in shared_learners for merge-stage execution)"
                )

    lookahead: Optional[float] = None
    if actor_sites is not None and topology is not None and shard_count > 1:
        sites_of_shard = _sites_by_shard(actor_sites, actor_shard)
        seen: Dict[str, int] = {}
        for shard, sites in sorted(sites_of_shard.items()):
            for site in sites:
                if site in seen and seen[site] != shard:
                    raise ValueError(
                        f"site {site!r} hosts actors of shards {seen[site]} and "
                        f"{shard}; co-located shards cannot run under windowed "
                        "synchronisation (lookahead would be the intra-site latency)"
                    )
                seen[site] = shard
        lookahead = conservative_lookahead(topology, actor_sites, actor_shard)
    return ShardPlan(
        shards=shard_tuples,
        actor_shard=actor_shard,
        lookahead=lookahead,
        merge_learners=merge_learners,
    )
