"""Single-instance Paxos state machines.

:class:`AcceptorInstance` is the acceptor-side state of one consensus
instance (promised ballot, accepted ballot, accepted value) with the two
classic transition rules; :class:`InstanceLedger` tracks the proposer /
coordinator view of a window of instances — which are open, which are decided
— and hands out fresh instance numbers.

Keeping these rules in plain, simulation-free classes makes the safety
properties easy to unit- and property-test (see ``tests/paxos``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .messages import ProposalValue

__all__ = ["AcceptorInstance", "Promise", "Accepted", "InstanceLedger"]


@dataclass(slots=True)
class Promise:
    """Result of processing a Phase 1A message for one instance."""

    granted: bool
    ballot: int
    accepted_ballot: int = -1
    accepted_value: Optional[ProposalValue] = None


@dataclass(slots=True)
class Accepted:
    """Result of processing a Phase 2A message for one instance.

    ``slots=True``: one is allocated per vote on the ring hot path.
    """

    accepted: bool
    ballot: int


class AcceptorInstance:
    """Acceptor-side state for one consensus instance.

    Implements the two Paxos acceptor rules:

    * a Phase 1A with ballot ``b`` is promised iff ``b`` is greater than any
      ballot already promised or voted in;
    * a Phase 2A with ballot ``b`` is accepted iff ``b`` is at least the
      highest promised ballot.
    """

    __slots__ = ("instance", "promised_ballot", "accepted_ballot", "accepted_value")

    def __init__(self, instance: int) -> None:
        self.instance = instance
        self.promised_ballot = -1
        self.accepted_ballot = -1
        self.accepted_value: Optional[ProposalValue] = None

    # ---------------------------------------------------------------- phase 1
    def receive_phase1a(self, ballot: int) -> Promise:
        """Process a prepare request for ``ballot``."""
        if ballot > self.promised_ballot and ballot > self.accepted_ballot:
            self.promised_ballot = ballot
            return Promise(
                granted=True,
                ballot=ballot,
                accepted_ballot=self.accepted_ballot,
                accepted_value=self.accepted_value,
            )
        return Promise(granted=False, ballot=max(self.promised_ballot, self.accepted_ballot))

    # ---------------------------------------------------------------- phase 2
    def receive_phase2a(self, ballot: int, value: ProposalValue) -> Accepted:
        """Process an accept request for ``ballot`` carrying ``value``."""
        if ballot >= self.promised_ballot:
            self.promised_ballot = ballot
            self.accepted_ballot = ballot
            self.accepted_value = value
            return Accepted(accepted=True, ballot=ballot)
        return Accepted(accepted=False, ballot=self.promised_ballot)

    @property
    def has_accepted(self) -> bool:
        """Whether the acceptor voted in this instance."""
        return self.accepted_ballot >= 0


class InstanceLedger:
    """Coordinator/learner bookkeeping over a sequence of consensus instances.

    Tracks the next unused instance number, which instances are decided and
    with what value, and the highest contiguously decided instance (the point
    up to which a learner can deliver in order).
    """

    def __init__(self) -> None:
        self._next_instance = 0
        self._decided: Dict[int, ProposalValue] = {}
        self._contiguous = -1

    # ------------------------------------------------------------ allocation
    def allocate(self) -> int:
        """Reserve and return the next instance number."""
        instance = self._next_instance
        self._next_instance += 1
        return instance

    def allocate_many(self, count: int) -> List[int]:
        """Reserve ``count`` consecutive instance numbers."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.allocate() for _ in range(count)]

    @property
    def next_instance(self) -> int:
        """The next instance number that would be allocated."""
        return self._next_instance

    def observe_instance(self, instance: int) -> None:
        """Make sure future allocations are beyond ``instance``.

        Used by acceptors/learners that see instances created by the
        coordinator, and by a new coordinator taking over.
        """
        if instance >= self._next_instance:
            self._next_instance = instance + 1

    # -------------------------------------------------------------- decisions
    def decide(self, instance: int, value: ProposalValue) -> bool:
        """Record a decision; returns ``False`` if it was already known."""
        decided = self._decided
        if instance in decided:
            return False
        decided[instance] = value
        # Inlined observe_instance(): decide runs once per learned instance.
        if instance >= self._next_instance:
            self._next_instance = instance + 1
        while (self._contiguous + 1) in decided:
            self._contiguous += 1
        return True

    def is_decided(self, instance: int) -> bool:
        """Whether a decision is known for ``instance``."""
        return instance in self._decided

    @property
    def decided_map(self) -> Dict[int, ProposalValue]:
        """Read-only view of the decision map for hot-loop consumers.

        Callers must not mutate it; :class:`~repro.ringpaxos.learner.RingLearner`
        uses it to drain contiguous decisions without a method call per probe.
        """
        return self._decided

    def decision(self, instance: int) -> Optional[ProposalValue]:
        """The decided value of ``instance`` (``None`` when unknown)."""
        return self._decided.get(instance)

    @property
    def highest_contiguous_decided(self) -> int:
        """Highest instance such that all instances up to it are decided."""
        return self._contiguous

    @property
    def decided_count(self) -> int:
        """Number of decided instances currently retained."""
        return len(self._decided)

    def undecided_below(self, instance: int) -> List[int]:
        """Instance numbers smaller than ``instance`` that lack a decision."""
        return [i for i in range(0, instance) if i not in self._decided]

    def decisions_in_order(self) -> Iterator[Tuple[int, ProposalValue]]:
        """Iterate decided ``(instance, value)`` pairs in instance order."""
        for instance in sorted(self._decided):
            yield instance, self._decided[instance]

    def forget_up_to(self, instance: int) -> int:
        """Drop retained decisions up to ``instance`` (learner-side trimming)."""
        to_drop = [i for i in self._decided if i <= instance]
        for i in to_drop:
            del self._decided[i]
        return len(to_drop)
