"""Paxos and Ring Paxos protocol messages.

Ring Paxos (Section 4, Figure 2b) uses an optimised Paxos in which Phase 1 is
pre-executed for a collection of instances and Phase 2A and Phase 2B travel as
a single combined message along the ring, accumulating votes.  The message
types below cover both the classic phases (used during pre-execution and
coordinator change) and the ring-specific combined message, the decision, the
retransmission protocol used during recovery and the trim protocol.

All messages carry ``ring_id`` so that a process subscribed to several rings
can dispatch them to the right per-ring handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..net.message import Message
from ..sim.network import register_wire_type

__all__ = [
    "ProposalValue",
    "SKIP",
    "ValueForward",
    "Phase1A",
    "Phase1B",
    "Phase2Ring",
    "Decision",
    "RetransmitRequest",
    "RetransmitReply",
    "TrimQuery",
    "TrimReport",
    "TrimCommand",
    "CheckpointRequest",
    "CheckpointReply",
]


class _Skip:
    """Sentinel proposed by coordinators to skip an instance (rate leveling)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<SKIP>"

    def __reduce__(self):
        # Skips are compared by identity (``payload is SKIP``) throughout the
        # ordering layer; pickling by reference keeps that true for recorded
        # decision streams shipped across worker-process boundaries by the
        # sharded merge stage.
        return "SKIP"


#: The null value proposed in skipped consensus instances (Section 4).
SKIP = _Skip()


@dataclass(slots=True)
class ProposalValue:
    """An application value wrapped for ordering.

    Attributes
    ----------
    payload:
        Opaque application command (e.g. a key-value operation).
    size_bytes:
        Application payload size, used for wire and disk accounting.
    proposer:
        Name of the proposing process (to route the delivery notification).
    proposal_id:
        Unique id assigned by the proposer, used to correlate deliveries.
    created_at:
        Simulation time at which the value was proposed (latency metric).
    """

    payload: Any
    size_bytes: int
    proposer: str = ""
    proposal_id: int = 0
    created_at: float = 0.0

    def is_skip(self) -> bool:
        """Whether this value is the skip sentinel."""
        return self.payload is SKIP


@dataclass(slots=True)
class ValueForward(Message):
    """A client value travelling along the ring towards the coordinator."""

    ring_id: int = 0
    value: Optional[ProposalValue] = None

    def __post_init__(self) -> None:
        if self.value is not None:
            self.payload_bytes = self.value.size_bytes
        self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES


@dataclass(slots=True)
class Phase1A(Message):
    """Classic Paxos Phase 1A, pre-executed for a range of instances."""

    ring_id: int = 0
    ballot: int = 0
    from_instance: int = 0
    to_instance: int = 0


@dataclass(slots=True)
class Phase1B(Message):
    """Classic Paxos Phase 1B: a promise for a range of instances.

    ``accepted`` carries ``(instance, ballot, value)`` triples for instances
    in the range for which the acceptor had already voted.
    """

    ring_id: int = 0
    ballot: int = 0
    from_instance: int = 0
    to_instance: int = 0
    acceptor: str = ""
    accepted: List[Tuple[int, int, Any]] = field(default_factory=list)


@dataclass(slots=True)
class Phase2Ring(Message):
    """The combined Phase 2A/2B message circulating along the ring.

    The coordinator creates it with its own vote; every acceptor that agrees
    adds its vote before forwarding.  ``votes`` is the list of acceptors that
    voted so far.  ``origin`` is the process that created the message, used to
    stop the circulation after one full turn.
    """

    ring_id: int = 0
    instance: int = 0
    ballot: int = 0
    value: Optional[ProposalValue] = None
    votes: Tuple[str, ...] = ()
    origin: str = ""
    #: number of consecutive instances covered (``> 1`` only for skip ranges)
    span: int = 1

    def __post_init__(self) -> None:
        if self.value is not None and self.value.payload is not SKIP:
            self.payload_bytes = self.value.size_bytes
        self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES

    @property
    def last_instance(self) -> int:
        """Highest instance covered by this message."""
        return self.instance + self.span - 1

    def add_vote(self, acceptor: str) -> None:
        """Append ``acceptor``'s vote in place.

        The circulating Phase 2 message is uniquely owned by the hop that is
        processing it (point-to-point delivery; the previous hop dropped its
        reference when it forwarded), so the ring reuses the *same* object and
        mutates the vote tuple instead of cloning one message per hop.
        """
        self.votes += (acceptor,)

    def with_vote(self, acceptor: str) -> "Phase2Ring":
        """A copy of the message with ``acceptor``'s vote appended.

        The hot path mutates in place via :meth:`add_vote`; this copying
        variant remains for callers that must not alias the original (and as
        the oracle the message-plane differential tests pin against).
        """
        clone = Phase2Ring.__new__(Phase2Ring)
        clone.payload_bytes = self.payload_bytes
        clone.size_bytes = self.size_bytes
        clone.ring_id = self.ring_id
        clone.instance = self.instance
        clone.ballot = self.ballot
        clone.value = self.value
        clone.votes = self.votes + (acceptor,)
        clone.origin = self.origin
        clone.span = self.span
        return clone


@dataclass(slots=True)
class Decision(Message):
    """A learned decision circulating along the ring.

    The value itself is not repeated when it already circulated in the
    Phase 2 message (the paper sends value and decision separately); carrying
    ``value`` here keeps the learner logic simple while only charging the
    wire for the small decision record (``payload_bytes`` stays 0 unless the
    decision needs to carry the value, e.g. towards a recovering process).
    """

    ring_id: int = 0
    instance: int = 0
    value: Optional[ProposalValue] = None
    origin: str = ""
    carries_value: bool = False
    #: number of consecutive instances covered (``> 1`` only for skip ranges)
    span: int = 1

    def __post_init__(self) -> None:
        if self.carries_value and self.value is not None and self.value.payload is not SKIP:
            self.payload_bytes = self.value.size_bytes
        self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES

    @property
    def last_instance(self) -> int:
        """Highest instance covered by this decision."""
        return self.instance + self.span - 1

    def strip_value(self) -> None:
        """Stop charging the wire for the value, in place.

        Used by the coordinator when the decision completes its first ring
        turn: downstream hops already saw the value in the Phase 2 message, so
        only the small decision record travels on.  In-place is safe for the
        same sole-ownership reason as :meth:`Phase2Ring.add_vote`.
        """
        self.carries_value = False
        self.payload_bytes = 0
        self.size_bytes = self.OVERHEAD_BYTES

    def without_value(self) -> "Decision":
        """A copy that no longer carries the value (small wire footprint)."""
        return Decision(
            ring_id=self.ring_id,
            instance=self.instance,
            value=self.value,
            origin=self.origin,
            carries_value=False,
            span=self.span,
        )


@dataclass(slots=True)
class RetransmitRequest(Message):
    """Recovering replica asking an acceptor for decided instances.

    ``reason`` distinguishes who consumes the eventual reply: ``"recovery"``
    requests are answered to the replica's :class:`~repro.recovery.recover.RecoveryManager`,
    ``"gap-repair"`` requests come from a live learner plugging a delivery gap
    (messages lost to a partition) and are consumed by the ring node itself.
    """

    ring_id: int = 0
    from_instance: int = 0
    to_instance: int = 0
    requester: str = ""
    reason: str = "recovery"


@dataclass(slots=True)
class RetransmitReply(Message):
    """Acceptor reply carrying ``(instance, value)`` pairs."""

    ring_id: int = 0
    decided: List[Tuple[int, ProposalValue]] = field(default_factory=list)
    trimmed_up_to: int = -1
    reason: str = "recovery"

    def __post_init__(self) -> None:
        self.payload_bytes = sum(
            v.size_bytes for _, v in self.decided if v is not None and not v.is_skip()
        )
        self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES


@dataclass(slots=True)
class TrimQuery(Message):
    """Coordinator asking replicas for their highest safe instance (Section 5.2)."""

    ring_id: int = 0


@dataclass(slots=True)
class TrimReport(Message):
    """Replica reply: its checkpointed instance ``k[x]_p`` for the ring."""

    ring_id: int = 0
    replica: str = ""
    safe_instance: int = -1


@dataclass(slots=True)
class TrimCommand(Message):
    """Coordinator instructing acceptors to trim their log up to ``K[x]_T``."""

    ring_id: int = 0
    up_to_instance: int = -1


@dataclass(slots=True)
class CheckpointRequest(Message):
    """Recovering replica asking a peer for its most recent checkpoint.

    The first round of requests only asks for checkpoint identifiers; once the
    recovering replica picked the most up-to-date checkpoint in its recovery
    quorum it asks that peer again with ``include_state=True`` to download the
    snapshot itself.
    """

    requester: str = ""
    include_state: bool = False


@dataclass(slots=True)
class CheckpointReply(Message):
    """Peer reply carrying its checkpoint identifier and, on demand, the state."""

    replica: str = ""
    checkpoint_id: Any = None
    state: Any = None
    includes_state: bool = False
    state_size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.includes_state:
            self.payload_bytes = self.state_size_bytes
        self.size_bytes = self.payload_bytes + self.OVERHEAD_BYTES


# Cross-shard wire registration (see :func:`repro.sim.network.register_wire_type`).
# ``_Skip`` is deliberately *not* registered: its ``__reduce__`` pickles by
# reference so ``payload is SKIP`` identity survives the process boundary —
# positional rebuild would mint a second sentinel instance.
register_wire_type(ProposalValue)
register_wire_type(ValueForward)
register_wire_type(Phase1A)
register_wire_type(Phase1B)
register_wire_type(Phase2Ring)
register_wire_type(Decision)
register_wire_type(RetransmitRequest)
register_wire_type(RetransmitReply)
register_wire_type(TrimQuery)
register_wire_type(TrimReport)
register_wire_type(TrimCommand)
register_wire_type(CheckpointRequest)
register_wire_type(CheckpointReply)
