"""Acceptor-side state: instances, durable log and retransmission service.

An acceptor in Ring Paxos must log its Phase 1B / Phase 2B responses to stable
storage before replying (Section 5.1) so that it can serve retransmission
requests from recovering replicas.  :class:`AcceptorState` bundles:

* the per-instance Paxos state (:class:`~repro.paxos.instance.AcceptorInstance`),
* the write-ahead log charging the configured storage mode,
* the bounded in-memory slot buffer of decided values used to serve
  retransmissions quickly,
* trimming, driven by the coordinator's :class:`~repro.paxos.messages.TrimCommand`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.actor import Environment
from ..sim.disk import Disk, StorageMode
from ..storage.slots import SlotBuffer, SlotFullError
from ..storage.wal import WriteAheadLog
from .instance import Accepted, AcceptorInstance, Promise
from .messages import SKIP, ProposalValue

__all__ = ["AcceptorState"]


class AcceptorState:
    """All consensus state owned by one acceptor for one ring."""

    def __init__(
        self,
        env: Environment,
        name: str,
        ring_id: int,
        storage_mode: StorageMode = StorageMode.IN_MEMORY,
        slot_count: int = SlotBuffer.DEFAULT_SLOTS,
        disk: Optional[Disk] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.ring_id = ring_id
        self.storage_mode = storage_mode
        self.log = WriteAheadLog(
            env, mode=storage_mode, name=f"{name}.r{ring_id}.wal", disk=disk
        )
        self.slots = SlotBuffer(slot_count=slot_count)
        self._instances: Dict[int, AcceptorInstance] = {}
        self._decided: Dict[int, ProposalValue] = {}
        self._trimmed_up_to = -1
        #: ballot promised for every instance not yet individually touched —
        #: this is how Phase 1 pre-execution over a huge window (2^20
        #: instances, Section 4) is represented without materialising
        #: per-instance state.
        self._range_promised = -1

    # -------------------------------------------------------------- instances
    def _instance(self, instance: int) -> AcceptorInstance:
        if instance not in self._instances:
            created = AcceptorInstance(instance)
            created.promised_ballot = self._range_promised
            self._instances[instance] = created
        return self._instances[instance]

    def promised_ballot(self, instance: int) -> int:
        """Highest ballot promised for ``instance`` (-1 when untouched)."""
        inst = self._instances.get(instance)
        return inst.promised_ballot if inst else self._range_promised

    # ---------------------------------------------------------------- phase 1
    def receive_phase1a(self, from_instance: int, to_instance: int, ballot: int) -> bool:
        """Pre-execute Phase 1 for a window of instances.

        The promise covers the whole window at once (the coordinator
        pre-executes Phase 1 for 2^20 instances, so per-instance bookkeeping
        would be prohibitive); instances that already hold individual state
        are promoted individually.  Returns whether the promise was granted.
        """
        if ballot <= self._range_promised:
            return False
        self._range_promised = ballot
        granted = True
        for instance, state in self._instances.items():
            if from_instance <= instance <= to_instance:
                state.receive_phase1a(ballot)
        return granted

    # ---------------------------------------------------------------- phase 2
    def receive_phase2(
        self,
        instance: int,
        ballot: int,
        value: ProposalValue,
        on_durable: Optional[Callable[..., None]] = None,
        on_durable_args: tuple = (),
    ) -> Accepted:
        """Vote on ``value`` for ``instance`` and log the vote.

        The durable-write callback ``on_durable(*on_durable_args)`` fires when
        the vote is on stable storage; with synchronous storage the caller
        must defer forwarding its Phase 2B until then (this is what puts the
        device on the critical path).  Passing the arguments separately lets
        the per-hop ring path reuse one bound method instead of closing over
        the message.
        """
        if instance <= self._trimmed_up_to:
            # The instance was already trimmed; it is necessarily decided, so
            # refuse the vote — recovering replicas must use checkpoints.
            return Accepted(accepted=False, ballot=ballot)
        inst = self._instances.get(instance)
        if inst is None:
            # Inlined _instance(): on the hot path nearly every vote touches a
            # fresh instance, so the lookup above is almost always a miss.
            inst = AcceptorInstance(instance)
            inst.promised_ballot = self._range_promised
            self._instances[instance] = inst
        result = inst.receive_phase2a(ballot, value)
        if result.accepted and value.payload is not SKIP:
            self.log.append(
                instance,
                ballot,
                value,
                value.size_bytes,
                on_durable,
                on_durable_args,
            )
        elif on_durable is not None:
            # Skip votes carry no application data, so they never sit on the
            # synchronous-durability critical path.
            self.env.simulator._post(0.0, on_durable, on_durable_args)
        return result

    def receive_phase2_range(
        self,
        from_instance: int,
        to_instance: int,
        ballot: int,
        value: ProposalValue,
        on_durable: Optional[Callable[..., None]] = None,
        on_durable_args: tuple = (),
    ) -> bool:
        """Vote on a contiguous range of instances sharing one value.

        Used for skip ranges (rate leveling): the coordinator proposes one
        message that skips many instances, and the acceptor logs a single
        small record for the whole range.  Returns ``True`` when every
        instance in the range was accepted.
        """
        all_accepted = True
        for instance in range(from_instance, to_instance + 1):
            if instance <= self._trimmed_up_to:
                all_accepted = False
                continue
            result = self._instance(instance).receive_phase2a(ballot, value)
            all_accepted = all_accepted and result.accepted
        if all_accepted and not value.is_skip():
            self.log.append(
                instance=to_instance,
                ballot=ballot,
                value=value,
                size_bytes=value.size_bytes,
                on_durable=on_durable,
                on_durable_args=on_durable_args,
            )
        elif on_durable is not None:
            # Skip ranges (rate leveling) never wait for the device: they
            # carry no application payload that could be lost.
            self.env.simulator._post(0.0, on_durable, on_durable_args)
        return all_accepted

    def accepted_value(self, instance: int) -> Optional[ProposalValue]:
        """Value this acceptor voted for in ``instance`` (``None`` if none)."""
        inst = self._instances.get(instance)
        return inst.accepted_value if inst else None

    def accepted_in_range(self, from_instance: int, to_instance: int) -> List[Tuple[int, int, ProposalValue]]:
        """``(instance, ballot, value)`` triples this acceptor voted for in the range.

        Reported back in Phase 1B so that a new coordinator learns which
        instances were already used and does not reuse their numbers.
        """
        return [
            (i, inst.accepted_ballot, inst.accepted_value)
            for i, inst in sorted(self._instances.items())
            if from_instance <= i <= to_instance and inst.has_accepted
        ]

    # --------------------------------------------------------------- decisions
    def record_decision(self, instance: int, value: ProposalValue) -> None:
        """Remember a decided value so it can be retransmitted later."""
        if instance <= self._trimmed_up_to:
            return
        self._decided[instance] = value
        if value.payload is not SKIP:
            try:
                self.slots.put(instance, value, value.size_bytes)
            except SlotFullError:
                # The buffer is full: the value stays only in the WAL (or is
                # lost for in-memory mode).  Retransmission falls back to the
                # log, mirroring the real system's back-pressure behaviour.
                pass

    def is_decided(self, instance: int) -> bool:
        """Whether this acceptor knows the decision of ``instance``."""
        return instance in self._decided

    def decided_between(self, from_instance: int, to_instance: int) -> List[Tuple[int, ProposalValue]]:
        """Decided ``(instance, value)`` pairs in the closed range requested.

        Used to serve :class:`~repro.paxos.messages.RetransmitRequest`s from
        recovering replicas; instances already trimmed are not returned.
        """
        out = []
        for instance in range(max(from_instance, self._trimmed_up_to + 1), to_instance + 1):
            value = self._decided.get(instance)
            if value is not None:
                out.append((instance, value))
        return out

    def decided_from(self, from_instance: int) -> List[Tuple[int, ProposalValue]]:
        """Every decided ``(instance, value)`` at or after ``from_instance``.

        Unlike :meth:`decided_between` this does not need an upper bound, so a
        recovering replica that does not know the current highest instance can
        simply ask for "everything newer than my checkpoint".
        """
        return [
            (instance, self._decided[instance])
            for instance in sorted(self._decided)
            if instance >= from_instance
        ]

    @property
    def highest_decided(self) -> int:
        """Highest instance this acceptor saw a decision for (-1 when none)."""
        return max(self._decided) if self._decided else -1

    # ------------------------------------------------------------------- trim
    def trim(self, up_to_instance: int) -> int:
        """Discard state for all instances up to ``up_to_instance``."""
        if up_to_instance <= self._trimmed_up_to:
            return 0
        removed = 0
        removed += self.log.trim(up_to_instance)
        self.slots.trim(up_to_instance)
        for container in (self._decided, self._instances):
            stale = [i for i in container if i <= up_to_instance]
            for i in stale:
                del container[i]
            removed += len(stale)
        self._trimmed_up_to = up_to_instance
        return removed

    @property
    def trimmed_up_to(self) -> int:
        """Highest instance removed by trimming (-1 when never trimmed)."""
        return self._trimmed_up_to

    # ------------------------------------------------------------------ crash
    def crash(self) -> None:
        """Lose volatile state; the WAL keeps whatever its mode guarantees."""
        self.log.crash()
        self.slots.clear()
        self._instances.clear()
        self._decided.clear()

    def recover_from_log(self) -> int:
        """Rebuild accepted-value state from the durable log after a crash.

        Returns the number of instances restored.  Only votes, not decisions,
        are recoverable this way — decisions are re-learned from the ring or
        not needed because the instance was trimmed.
        """
        restored = 0
        for instance in self.log.instances():
            record = self.log.get(instance)
            if record is None:
                continue
            inst = self._instance(instance)
            inst.promised_ballot = record.ballot
            inst.accepted_ballot = record.ballot
            inst.accepted_value = record.value
            restored += 1
        return restored
