"""Consensus core: Paxos instance rules, acceptor state and protocol messages."""

from .acceptor import AcceptorState
from .instance import Accepted, AcceptorInstance, InstanceLedger, Promise
from .messages import (
    SKIP,
    CheckpointReply,
    CheckpointRequest,
    Decision,
    Phase1A,
    Phase1B,
    Phase2Ring,
    ProposalValue,
    RetransmitReply,
    RetransmitRequest,
    TrimCommand,
    TrimQuery,
    TrimReport,
    ValueForward,
)

__all__ = [
    "AcceptorState",
    "Accepted",
    "AcceptorInstance",
    "InstanceLedger",
    "Promise",
    "SKIP",
    "CheckpointReply",
    "CheckpointRequest",
    "Decision",
    "Phase1A",
    "Phase1B",
    "Phase2Ring",
    "ProposalValue",
    "RetransmitReply",
    "RetransmitRequest",
    "TrimCommand",
    "TrimQuery",
    "TrimReport",
    "ValueForward",
]
