"""Figure 4 — YCSB comparison: Cassandra-like, MRP-Store (two configs), MySQL-like.

The paper runs YCSB with 100 client threads against four systems: Apache
Cassandra (three partitions, replication factor three), MRP-Store with
independent per-partition rings, MRP-Store with an additional global ring
ordering requests across partitions, and a single MySQL instance.  The
database is initialised before the measurement; throughput in operations per
second is reported for workloads A-F, and the bottom graph reports latency
per operation type under workload F (Section 8.3.2).

The stand-ins reproduce the ordering disciplines rather than the systems'
implementations (see ``repro.baselines``); what must hold is the ranking —
no ordering ≥ per-partition ordering ≥ global ordering ≈ single server — and
the workload-E exception where range scans erase the eventual store's edge.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from ..baselines.eventual import EventualStoreService
from ..baselines.singleserver import SingleServerStore
from ..core.amcast import AtomicMulticast
from ..core.client import ClosedLoopClient
from ..core.config import MultiRingConfig
from ..core.swarm import ClientSwarm, shared_factory
from ..kvstore.client import MRPStoreCommands, kv_request_factory
from ..kvstore.partitioning import HashPartitioner
from ..kvstore.service import MRPStoreService
from ..sim.disk import StorageMode
from ..sim.topology import single_datacenter
from ..workloads.arrival import ArrivalCurve, constant
from ..workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload, ycsb_keyspace
from .runner import ExperimentResult, MeasurementWindow, measure

__all__ = ["run_fig4", "run_fig4_point", "FIG4_SYSTEMS", "FIG4_WORKLOADS"]

#: The four systems compared in the figure.
FIG4_SYSTEMS = ("cassandra", "mrp-store-indep", "mrp-store", "mysql")

#: The six YCSB workloads of the figure.
FIG4_WORKLOADS = ("A", "B", "C", "D", "E", "F")

#: Partitions / replication factor used by the paper.
_PARTITIONS = (0, 1, 2)
_REPLICATION = 3


def _build_workload(workload: str, record_count: int, seed: int) -> YCSBWorkload:
    return YCSBWorkload(
        YCSB_WORKLOADS[workload],
        record_count=record_count,
        rng=random.Random(seed),
    )


def _build_mrp(system: AtomicMulticast, global_ring: bool, config: MultiRingConfig) -> MRPStoreService:
    return MRPStoreService(
        system,
        partition_groups=list(_PARTITIONS),
        acceptors_per_partition=3,
        replicas_per_partition=_REPLICATION,
        global_ring_id=9 if global_ring else None,
        config=config,
    )


def run_fig4_point(
    system_name: str,
    workload_name: str,
    client_threads: int = 100,
    record_count: int = 5000,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
    client_engine: str = "actors",
    simulated_users: Optional[int] = None,
    client_mode: str = "closed",
    arrival: Optional[ArrivalCurve] = None,
    slo: Optional[Dict[str, float]] = None,
    sketch: object = "auto",
) -> ExperimentResult:
    """Run one (system, workload) bar of Figure 4.

    ``client_engine="actors"`` (default) drives the system with one
    :class:`ClosedLoopClient` holding ``client_threads`` outstanding requests
    — the paper's setup.  ``client_engine="swarm"`` replaces it with a
    :class:`~repro.core.swarm.ClientSwarm` of ``simulated_users`` flyweight
    clients: closed-loop (one outstanding request per user) or, for very
    large user counts, open-loop following ``arrival``.  ``slo`` enables
    per-class SLO accounting and ``sketch`` bounds recorder memory (see the
    swarm docs).
    """
    if system_name not in FIG4_SYSTEMS:
        raise ValueError(f"unknown system {system_name}")
    if workload_name not in YCSB_WORKLOADS:
        raise ValueError(f"unknown workload {workload_name}")
    if client_engine not in ("actors", "swarm"):
        raise ValueError(f"unknown client engine {client_engine}")

    workload = _build_workload(workload_name, record_count, seed)
    keyspace = ycsb_keyspace(record_count)
    config = MultiRingConfig(
        storage_mode=StorageMode.ASYNC_SSD,
        batching_enabled=True,
        rate_interval=0.005,
        max_rate=3000.0,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(topology=single_datacenter(), config=config, seed=seed)
    partitioner = HashPartitioner(list(_PARTITIONS))
    commands = MRPStoreCommands(partitioner)
    factory = kv_request_factory(commands, workload)

    if system_name in ("mrp-store", "mrp-store-indep"):
        service = _build_mrp(system, global_ring=(system_name == "mrp-store"), config=config)
        service.preload(keyspace)
        frontends = service.frontend_map()
    elif system_name == "cassandra":
        eventual = EventualStoreService(
            system.env, partition_groups=list(_PARTITIONS),
            replication_factor=_REPLICATION, partitioner=partitioner,
        )
        eventual.preload(keyspace)
        frontends = eventual.frontend_map()
    else:  # mysql
        server = SingleServerStore(system.env, "sqlserver")
        server.preload(keyspace)
        frontends = {g: server.name for g in _PARTITIONS}

    if client_engine == "swarm":
        users = simulated_users or client_threads
        swarm = ClientSwarm(
            system.env,
            "ycsb-swarm",
            frontends_by_group=frontends,
            request_factory=shared_factory(factory),
            clients=users,
            mode=client_mode,
            concurrency=1,
            arrival=arrival or constant(float(client_threads) * 25.0),
            metric_prefix="ycsb",
            addressing="auto",
            slo=slo,
            sketch=sketch,
        )
    else:
        client = ClosedLoopClient(
            system.env,
            "ycsb-client",
            frontends_by_group=frontends,
            request_factory=factory,
            concurrency=client_threads,
            metric_prefix="ycsb",
        )

    window = MeasurementWindow(warmup=warmup, duration=duration)
    results = measure(
        system,
        window,
        throughput_metrics=["ycsb.throughput"],
        latency_metrics=["ycsb.latency"],
        slo_classes=sorted(slo) if slo else (),
    )

    metrics = {
        "throughput_ops": results["ycsb.throughput.rate"],
        "latency_mean_ms": results["ycsb.latency.mean_ms"],
        "latency_p95_ms": results["ycsb.latency.p95_ms"],
    }
    if client_engine == "swarm":
        metrics["simulated_users"] = float(swarm.clients)
        metrics["swarm_completed"] = float(swarm.completed)
        metrics["latency_p99_ms"] = results["ycsb.latency.p99_ms"]
        for cls in sorted(slo) if slo else ():
            metrics[f"slo_{cls}_violation_fraction"] = results[
                f"slo.{cls}.violation_fraction"
            ]
    # Workload F's per-operation latency breakdown (bottom graph of Figure 4).
    if workload_name == "F":
        for label, metric_name in (
            ("read", "ycsb.latency.read"),
            ("read_modify_write", "ycsb.latency.read-update"),
        ):
            recorder = system.env.metrics.latency(metric_name)
            metrics[f"latency_{label}_ms"] = recorder.mean() * 1e3
    params = {"system": system_name, "workload": workload_name, "threads": client_threads}
    if client_engine == "swarm":
        params["engine"] = "swarm"
        params["users"] = simulated_users or client_threads
        params["mode"] = client_mode
    return ExperimentResult(name="fig4", params=params, metrics=metrics)


def run_fig4(
    systems: Sequence[str] = FIG4_SYSTEMS,
    workloads: Sequence[str] = FIG4_WORKLOADS,
    client_threads: int = 100,
    record_count: int = 5000,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
) -> List[ExperimentResult]:
    """Run the full Figure 4 grid (systems × workloads)."""
    results = []
    for workload in workloads:
        for system_name in systems:
            results.append(
                run_fig4_point(
                    system_name,
                    workload,
                    client_threads=client_threads,
                    record_count=record_count,
                    warmup=warmup,
                    duration=duration,
                    seed=seed,
                )
            )
    return results
