"""Figure 3 — Multi-Ring Paxos baseline with a dummy service.

One ring with three processes, all of them proposers, acceptors and learners,
one of the acceptors being the coordinator.  Proposers keep ten requests
outstanding each ("10 threads"); request sizes sweep 512 B to 32 KB; five
storage modes are compared (in-memory, async/sync on HDD and SSD); ring
batching is disabled.  Four metrics are reported: throughput in Mbps, mean
latency, coordinator CPU utilisation and the latency CDF for 32 KB requests
(Section 8.3.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.amcast import AtomicMulticast
from ..core.config import MultiRingConfig
from ..multiring.process import MultiRingProcess
from ..paxos.messages import ProposalValue
from ..sim.disk import StorageMode
from ..sim.topology import single_datacenter
from .runner import ExperimentResult, MeasurementWindow

__all__ = ["run_fig3", "run_fig3_point", "FIG3_VALUE_SIZES", "FIG3_STORAGE_MODES"]

#: Request sizes of the x-axis (bytes).
FIG3_VALUE_SIZES = (512, 2048, 8192, 32768)

#: The five storage modes of the figure.
FIG3_STORAGE_MODES = (
    StorageMode.IN_MEMORY,
    StorageMode.ASYNC_SSD,
    StorageMode.ASYNC_HDD,
    StorageMode.SYNC_SSD,
    StorageMode.SYNC_HDD,
)


class _SelfProposingLearner(MultiRingProcess):
    """A ring member that generates its own load (the paper's proposer threads).

    Each process keeps ``threads`` proposals outstanding: a new value is
    proposed as soon as one of its own values is delivered, which is how the
    Java prototype's proposer threads behave.
    """

    def __init__(self, env, name, ring_id: int, value_size: int, threads: int = 10) -> None:
        super().__init__(env, name)
        self._ring_id = ring_id
        self._value_size = value_size
        self._threads = threads
        self._outstanding: Dict[int, float] = {}
        # Instruments are resolved once; registry lookups by name were a
        # measurable slice of the per-delivery cost (reset_all() keeps the
        # instrument objects, so cached references stay valid).  Every value
        # in a run has the same size, so only bytes are tracked and the
        # operation rate is derived as bytes/size.
        self._delivered_bytes = env.metrics.throughput("fig3.delivered_bytes")
        self._latency = env.metrics.latency("fig3.latency")

    def on_start(self) -> None:
        super().on_start()
        for _ in range(self._threads):
            self._propose_next()

    def _propose_next(self) -> None:
        if not self.alive:
            return
        value = self.multicast(self._ring_id, payload=("dummy", self.name), size_bytes=self._value_size)
        self._outstanding[value.proposal_id] = value.created_at

    def on_deliver(self, group_id: int, instance: int, value: ProposalValue) -> None:
        self._delivered_bytes.record(value.size_bytes)
        if value.proposer == self.name and value.proposal_id in self._outstanding:
            latency = self.now - self._outstanding.pop(value.proposal_id)
            self._latency.record(latency)
            self._propose_next()


def run_fig3_point(
    value_size: int,
    storage_mode: StorageMode,
    warmup: float = 1.0,
    duration: float = 8.0,
    threads_per_proposer: int = 10,
    seed: int = 42,
    batching_enabled: bool = False,
    batch_max_bytes: int = 32 * 1024,
    batch_max_delay: float = 0.0005,
    kernel_batch_dispatch: Optional[bool] = None,
    profile: Optional[object] = None,
) -> ExperimentResult:
    """Run one (value size, storage mode) point of Figure 3.

    The figure's baseline runs with batching off (every value gets its own
    consensus instance).  ``batching_enabled`` switches on coordinator value
    batching (size-or-timeout assembly, Sections 7.2/7.3) — the throughput
    configuration — and ``kernel_batch_dispatch`` opts into the kernel's
    same-actor event-run dispatch (defaults to following
    ``batching_enabled`` so the baseline path stays byte-for-byte anchored).
    ``profile`` forwards a :class:`repro.sim.profile.SimProfile` to the
    kernel (default off).
    """
    if kernel_batch_dispatch is None:
        kernel_batch_dispatch = batching_enabled
    config = MultiRingConfig(
        storage_mode=storage_mode,
        batching_enabled=batching_enabled,
        batch_max_bytes=batch_max_bytes,
        batch_max_delay=batch_max_delay,
        kernel_batch_dispatch=kernel_batch_dispatch,
        rate_interval=None,      # single ring: no merge partner to level against
        checkpoint_interval=None,
        trim_interval=None,
        network_stats=False,     # counters are never read: take the send fast lane
    )
    system = AtomicMulticast(topology=single_datacenter(), config=config, seed=seed,
                             profile=profile)
    processes = [
        _SelfProposingLearner(system.env, f"p{i}", ring_id=0, value_size=value_size,
                              threads=threads_per_proposer)
        for i in range(3)
    ]
    system.create_ring(0, [(p.name, "pal") for p in processes])

    window = MeasurementWindow(warmup=warmup, duration=duration)
    system.start()
    system.run(until=window.warmup)
    system.env.metrics.reset_all()
    coordinator = system.env.actor(system.ring(0).coordinator)
    coordinator.cpu.reset_window()
    start = system.env.now
    system.run(until=window.end)
    end = system.env.now

    delivered_bytes = system.env.metrics.throughput("fig3.delivered_bytes")
    latency = system.env.metrics.latency("fig3.latency")
    # Deliveries happen at three learners; each value is counted once per
    # learner, so divide by the learner count for per-value rates.  All
    # values share one size, so the operation rate is the byte rate / size.
    learners = 3
    byte_rate = delivered_bytes.rate(start, end)
    throughput_mbps = byte_rate * 8.0 / 1e6 / learners
    ops_per_second = byte_rate / value_size / learners

    return ExperimentResult(
        name="fig3",
        params={
            "value_size": value_size,
            "storage": storage_mode.value,
            "batching": batching_enabled,
        },
        metrics={
            "throughput_mbps": throughput_mbps,
            "ops_per_s": ops_per_second,
            "latency_mean_ms": latency.mean() * 1e3,
            "latency_p95_ms": latency.percentile(95) * 1e3,
            "coordinator_cpu_pct": coordinator.cpu.utilization_percent(),
            # Kernel-side cost of the run: batching packs many values into one
            # consensus instance, so the events-per-ordered-command ratio is
            # the quantity the kernel benchmark tracks.
            "events_processed": float(system.env.simulator.processed_events),
        },
        series={"latency_cdf": latency.cdf(points=50)},
    )


def run_fig3(
    value_sizes: Sequence[int] = FIG3_VALUE_SIZES,
    storage_modes: Sequence[StorageMode] = FIG3_STORAGE_MODES,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
    batching_enabled: bool = False,
) -> List[ExperimentResult]:
    """Run the full Figure 3 sweep (all sizes × all storage modes)."""
    results = []
    for mode in storage_modes:
        for size in value_sizes:
            results.append(
                run_fig3_point(size, mode, warmup=warmup, duration=duration, seed=seed,
                               batching_enabled=batching_enabled)
            )
    return results
