"""Figure 8 — impact of recovery on performance.

One ring with three acceptors (asynchronous disk writes) and three replicas;
the system operates at 75 % of its peak load with an open-loop client.  The
replicas periodically checkpoint their in-memory store synchronously to disk
so acceptors can trim their logs.  One replica is terminated early in the run
and restarts much later, at which point it downloads the most recent
checkpoint from an operational replica and fetches the remaining instances
from the acceptors.  The figure plots throughput and latency over time and
marks five events: (1) replica terminated, (2) replica checkpoints,
(3) acceptor log trimming, (4) replica recovery, (5) re-proposals caused by
recovery traffic (Section 8.5).

Expected shape: losing one replica barely changes throughput (clients take the
first answer); checkpoints do not disrupt; trimming and the checkpoint
download/installation cause visible but short dips.

The runner accepts a ``time_scale`` so the paper's 300-second timeline can be
compressed for automated benchmarking while preserving the sequence of events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.amcast import AtomicMulticast
from ..core.client import OpenLoopClient
from ..core.config import MultiRingConfig
from ..kvstore.client import MRPStoreCommands, kv_request_factory
from ..kvstore.service import MRPStoreService
from ..sim.disk import StorageMode
from ..sim.topology import single_datacenter
from ..workloads.kv import preload_keys, update_only_workload
from .runner import ExperimentResult

__all__ = ["run_fig8", "RecoveryTimeline", "FIG8_EVENTS"]

#: Event labels of the figure.
FIG8_EVENTS = {
    1: "replica terminated",
    2: "replica checkpoint",
    3: "acceptor log trimming",
    4: "replica recovery",
    5: "re-proposals due to recovery traffic",
}


@dataclass
class RecoveryTimeline:
    """Timeline output of the recovery experiment."""

    throughput: List[Tuple[float, float]] = field(default_factory=list)
    latency_ms: List[Tuple[float, float]] = field(default_factory=list)
    events: List[Tuple[float, int]] = field(default_factory=list)

    def throughput_between(self, start: float, end: float) -> float:
        """Average throughput over a slice of the timeline."""
        values = [rate for t, rate in self.throughput if start <= t < end]
        return sum(values) / len(values) if values else 0.0


def run_fig8(
    duration: float = 300.0,
    crash_at: float = 20.0,
    restart_at: float = 240.0,
    load_ops_per_s: float = 6000.0,
    checkpoint_interval: float = 60.0,
    trim_interval: float = 100.0,
    key_count: int = 2000,
    time_scale: float = 1.0,
    seed: int = 42,
) -> ExperimentResult:
    """Run the recovery experiment and return its timeline.

    ``time_scale`` multiplies every time constant (duration, crash/restart
    times, checkpoint and trim intervals), allowing a faithful but shorter
    rendition of the 300-second experiment.
    """
    duration *= time_scale
    crash_at *= time_scale
    restart_at *= time_scale
    checkpoint_interval *= time_scale
    trim_interval *= time_scale
    if not 0 < crash_at < restart_at < duration:
        raise ValueError("event times must satisfy 0 < crash_at < restart_at < duration")

    config = MultiRingConfig(
        storage_mode=StorageMode.ASYNC_SSD,
        batching_enabled=True,
        rate_interval=None,
        checkpoint_interval=checkpoint_interval,
        trim_interval=trim_interval,
    )
    system = AtomicMulticast(topology=single_datacenter(), config=config, seed=seed)
    service = MRPStoreService(
        system,
        partition_groups=[0],
        acceptors_per_partition=3,
        replicas_per_partition=3,
        config=config,
    )
    service.preload(preload_keys(key_count))

    rng = random.Random(seed)
    workload = update_only_workload(rng, key_count=key_count, value_bytes=1024)
    factory = kv_request_factory(service.commands, workload)
    client = OpenLoopClient(
        system.env,
        "fig8-client",
        frontends_by_group=service.frontend_map(),
        request_factory=factory,
        rate_per_second=load_ops_per_s,
        metric_prefix="fig8",
    )

    victim = service.replicas[0][-1]
    events: List[Tuple[float, int]] = []

    system.start()
    system.run(until=crash_at)
    system.crash_process(victim.name)
    events.append((system.env.now, 1))

    # Checkpoints/trims happen on their periodic timers; record their
    # approximate positions for the timeline annotation.
    next_checkpoint = checkpoint_interval
    while next_checkpoint < duration:
        if next_checkpoint > crash_at:
            events.append((next_checkpoint, 2))
        next_checkpoint += checkpoint_interval
    next_trim = trim_interval
    while next_trim < duration:
        events.append((next_trim, 3))
        next_trim += trim_interval

    system.run(until=restart_at)
    system.restart_process(victim.name)
    events.append((system.env.now, 4))
    events.append((system.env.now, 5))
    system.run(until=duration)

    throughput = system.env.metrics.throughput("fig8.throughput")
    latency = system.env.metrics.latency("fig8.latency")
    timeline = RecoveryTimeline(
        throughput=throughput.timeline(0.0, duration),
        events=sorted(events, key=lambda e: e[0]),
    )

    before_crash = throughput.rate(0.0, crash_at)
    while_down = throughput.rate(crash_at, restart_at)
    after_recovery = throughput.rate(restart_at, duration)
    return ExperimentResult(
        name="fig8",
        params={
            "duration_s": duration,
            "crash_at_s": crash_at,
            "restart_at_s": restart_at,
            "load_ops_per_s": load_ops_per_s,
        },
        metrics={
            "throughput_before_crash": before_crash,
            "throughput_while_down": while_down,
            "throughput_after_recovery": after_recovery,
            "latency_mean_ms": latency.mean() * 1e3,
            "victim_recovered": 1.0 if victim.commands_applied > 0 else 0.0,
            "checkpoints_taken": float(
                sum(
                    r.checkpointer.checkpoints_taken
                    for r in service.all_replicas()
                    if r.checkpointer is not None
                )
            ),
        },
        series={
            "throughput_timeline": timeline.throughput,
            "events": [(t, float(code)) for t, code in timeline.events],
        },
    )
