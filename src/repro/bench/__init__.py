"""Benchmark harness: one module per figure of the paper's evaluation."""

from .fig3_baseline import FIG3_STORAGE_MODES, FIG3_VALUE_SIZES, run_fig3, run_fig3_point
from .fig4_ycsb import FIG4_SYSTEMS, FIG4_WORKLOADS, run_fig4, run_fig4_point
from .fig5_dlog import FIG5_CLIENT_THREADS, FIG5_SYSTEMS, run_fig5, run_fig5_point
from .fig6_vertical import FIG6_RING_COUNTS, run_fig6, run_fig6_point
from .fig7_horizontal import FIG7_REGION_COUNTS, run_fig7, run_fig7_point
from .fig8_recovery import FIG8_EVENTS, RecoveryTimeline, run_fig8
from .parallel import run_fig6_sharded, run_fig7_sharded
from .reporting import format_results, format_table, print_results, relative_increments
from .runner import ExperimentResult, MeasurementWindow, ShardedMeasurement, measure

__all__ = [
    "FIG3_STORAGE_MODES",
    "FIG3_VALUE_SIZES",
    "run_fig3",
    "run_fig3_point",
    "FIG4_SYSTEMS",
    "FIG4_WORKLOADS",
    "run_fig4",
    "run_fig4_point",
    "FIG5_CLIENT_THREADS",
    "FIG5_SYSTEMS",
    "run_fig5",
    "run_fig5_point",
    "FIG6_RING_COUNTS",
    "run_fig6",
    "run_fig6_point",
    "FIG7_REGION_COUNTS",
    "run_fig7",
    "run_fig7_point",
    "FIG8_EVENTS",
    "RecoveryTimeline",
    "run_fig8",
    "format_results",
    "format_table",
    "print_results",
    "relative_increments",
    "ExperimentResult",
    "MeasurementWindow",
    "ShardedMeasurement",
    "measure",
    "run_fig6_sharded",
    "run_fig7_sharded",
]
