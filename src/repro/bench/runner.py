"""Experiment runner utilities shared by every figure's benchmark.

The paper runs each experiment "for a duration of at least 100 seconds"
(Section 8.2) and reports steady-state throughput, latency distributions and,
for the recovery experiment, a per-second timeline.  The helpers here
standardise that measurement discipline for the simulated reproduction:

* :func:`measure` runs a deployment through a warm-up window, resets the
  instruments, runs the measurement window and gathers the standard metrics;
* :class:`ExperimentResult` is the uniform result record every figure module
  returns, with the parameters, the scalar metrics and any per-time or
  per-point series;
The figure modules accept a ``scale`` parameter so the pytest benchmarks can
run shortened versions of the experiments (the paper's 100-second runs are
impractical inside a unit-test budget) while keeping the full-length defaults
available for reproduction runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.amcast import AtomicMulticast
from ..multiring.merge import RingSegmentBuffer
from ..sim.metrics import LatencyRecorder, ThroughputTracker
from ..sim.parallel import ShardHarness

__all__ = [
    "ExperimentResult",
    "collect_window_metrics",
    "measure",
    "MeasurementWindow",
    "ShardedMeasurement",
]


@dataclass
class ExperimentResult:
    """Outcome of one experiment point (one bar / one line point of a figure)."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def metric(self, key: str, default: float = 0.0) -> float:
        """A scalar metric with a default."""
        return self.metrics.get(key, default)

    def describe(self) -> str:
        """One-line human readable summary."""
        params = ", ".join(f"{k}={v}" for k, v in self.params.items())
        metrics = ", ".join(f"{k}={v:.3g}" for k, v in self.metrics.items())
        return f"{self.name} [{params}] {metrics}"


@dataclass
class MeasurementWindow:
    """The warm-up/measurement split of one run."""

    warmup: float = 2.0
    duration: float = 10.0

    @property
    def end(self) -> float:
        """Simulation time at which the measurement stops."""
        return self.warmup + self.duration


def measure(
    system: AtomicMulticast,
    window: MeasurementWindow,
    throughput_metrics: Sequence[str] = (),
    latency_metrics: Sequence[str] = (),
    timeline_metrics: Sequence[str] = (),
    slo_classes: Sequence[str] = (),
) -> Dict[str, Any]:
    """Run ``system`` through a warm-up and a measurement window.

    Returns a dictionary with, for every requested throughput metric, the
    average rate over the window (``<name>.rate``); for every latency metric
    the mean/percentiles in milliseconds; for every timeline metric the
    per-second series relative to the start of the measurement window; and
    for every SLO class its percentile/violation accounting.
    """
    system.start()
    system.run(until=window.warmup)
    system.env.metrics.reset_all()
    start = system.env.now
    system.run(until=window.end)
    end = system.env.now
    return collect_window_metrics(
        system,
        start,
        end,
        throughput_metrics,
        latency_metrics,
        timeline_metrics,
        slo_classes,
    )


def collect_window_metrics(
    system: AtomicMulticast,
    start: float,
    end: float,
    throughput_metrics: Sequence[str] = (),
    latency_metrics: Sequence[str] = (),
    timeline_metrics: Sequence[str] = (),
    slo_classes: Sequence[str] = (),
) -> Dict[str, Any]:
    """Gather the standard metric dictionary over an already-run window."""
    results: Dict[str, Any] = {"window": (start, end)}
    for name in throughput_metrics:
        tracker = system.env.metrics.throughput(name)
        results[f"{name}.rate"] = tracker.rate(start, end)
        results[f"{name}.total"] = tracker.total_between(start, end)
    for name in latency_metrics:
        recorder = system.env.metrics.latency(name)
        results[f"{name}.mean_ms"] = recorder.mean() * 1e3
        results[f"{name}.p50_ms"] = recorder.percentile(50) * 1e3
        results[f"{name}.p95_ms"] = recorder.percentile(95) * 1e3
        results[f"{name}.p99_ms"] = recorder.percentile(99) * 1e3
        results[f"{name}.count"] = recorder.count
        results[f"{name}.cdf"] = recorder.cdf(points=50)
    for name in timeline_metrics:
        tracker = system.env.metrics.throughput(name)
        results[f"{name}.timeline"] = [
            (t - start, rate) for t, rate in tracker.timeline(start, end)
        ]
    # Per-class SLO accounting recorded by a client swarm (see
    # repro.sim.metrics.SloTracker for the instrument names).
    registry = system.env.metrics
    for cls in slo_classes:
        recorder = registry.latency(f"slo.{cls}.latency")
        requests = registry.counter(f"slo.{cls}.requests").value
        violations = registry.counter(f"slo.{cls}.violations").value
        results[f"slo.{cls}.p50_ms"] = recorder.percentile(50) * 1e3
        results[f"slo.{cls}.p99_ms"] = recorder.percentile(99) * 1e3
        results[f"slo.{cls}.requests"] = requests
        results[f"slo.{cls}.violations"] = violations
        results[f"slo.{cls}.violation_fraction"] = (
            violations / requests if requests else 0.0
        )
    return results


class ShardedMeasurement(ShardHarness):
    """One shard of a sharded experiment, measured like :func:`measure`.

    Used by the parallel figure runners (:mod:`repro.bench.parallel`): the
    shard builder constructs its sub-deployment inside the worker process and
    wraps it in this harness.  The standard warm-up/measure script runs in
    two modes, depending on how the engine windows the run:

    * **single window** (``run_sharded`` without lookahead or segment
      interval): ``run_window(None)`` executes the whole script in one call,
      exactly as :func:`measure` would;
    * **windowed streaming** (``run_sharded(..., until=...,
      segment_interval=...)``): the script is executed incrementally across
      barrier windows — the instruments reset when the clock first reaches
      the warm-up boundary, and the metric dictionary is gathered when the
      final window lands on the measurement end.  The event schedule is
      identical either way (windows do not reorder a shard's events), so the
      two modes measure bit-identical runs.

    A builder that installs a segment buffer via :meth:`stream_segments`
    turns the harness into a streaming-merge producer: every barrier ships
    ``(shard time, segments cut since the last barrier)`` to the parent,
    where the segments are incarnation-tagged
    :class:`~repro.multiring.merge.RingSegment` values — crash/restart of
    the in-shard learner bumps the incarnation and the parent-side cursor
    dedups the re-emitted stream prefix.  Rings whose learner is down are
    omitted from the cut (uncovered), so the parent's joint watermark stalls
    honestly instead of over-promising freshness.

    ``extra`` lets a builder attach additional picklable results (delivery
    digests for the differential tests, event counts, ...).
    """

    def __init__(
        self,
        system: AtomicMulticast,
        window: MeasurementWindow,
        throughput_metrics: Sequence[str] = (),
        latency_metrics: Sequence[str] = (),
        slo_classes: Sequence[str] = (),
    ) -> None:
        super().__init__(system.env)
        self.system = system
        self.window = window
        self.throughput_metrics = list(throughput_metrics)
        self.latency_metrics = list(latency_metrics)
        self.slo_classes = list(slo_classes)
        self.results: Dict[str, Any] = {}
        self.extra: Dict[str, Any] = {}
        self.segments: Optional["RingSegmentBuffer"] = None
        self._measure_start: Optional[float] = None

    def stream_segments(self, buffer: "RingSegmentBuffer") -> None:
        """Ship ``buffer``'s decision-stream segments at every barrier."""
        self.segments = buffer

    def start(self) -> None:
        self.system.start()

    def run_window(self, end: Optional[float]) -> None:
        if end is None:
            # Single window: the whole warm-up/measure script in one call.
            if self.results:
                raise RuntimeError(
                    "ShardedMeasurement re-entered its single-window script "
                    "(pass until=/segment_interval= for windowed execution)"
                )
            # start() already ran the deployment's start hooks; measure()'s
            # own system.start() is idempotent for a started deployment.
            self.results = measure(
                self.system,
                self.window,
                throughput_metrics=self.throughput_metrics,
                latency_metrics=self.latency_metrics,
                slo_classes=self.slo_classes,
            )
            return
        # Windowed streaming execution: advance incrementally, resetting the
        # instruments exactly at the warm-up boundary.
        sim = self.env.simulator
        if self._measure_start is None:
            if end < self.window.warmup:
                sim.run_window(end)
                return
            sim.run_window(self.window.warmup)
            self.env.metrics.reset_all()
            self._measure_start = self.env.now
        sim.run_window(end)
        if end >= self.window.end and not self.results:
            self.results = collect_window_metrics(
                self.system,
                self._measure_start,
                self.env.now,
                throughput_metrics=self.throughput_metrics,
                latency_metrics=self.latency_metrics,
                slo_classes=self.slo_classes,
            )

    def drain_segments(self) -> Optional[Any]:
        if self.segments is None:
            return None
        return (self.env.now, self.segments.cut())

    def finalize(self) -> Dict[str, Any]:
        payload = dict(self.results)
        payload["events"] = self.env.simulator.processed_events
        payload.update(self.extra)
        return payload
