"""Figure 7 — horizontal scalability of MRP-Store across EC2-like regions.

MRP-Store is deployed over up to four regions (us-west-2, us-west-1,
us-east-1, eu-west-1).  Each region hosts one ring (one partition) with a
replica and three proposers/acceptors, plus a client on a separate machine;
every replica additionally subscribes to a global ring spanning all regions.
Clients send 1 KB update commands to their local partition only, batched into
32 KB packets; the cross-datacenter Multi-Ring Paxos parameters are used
(M=1, Δ=20 ms, λ=2000).  The figure reports aggregate throughput with the
relative increment per added region and the latency CDF measured in
us-west-2 (Section 8.4.2).

Expected shape: aggregate throughput grows about linearly with regions
because local rings commit at local latency and regions do not interfere;
latency in the observed region stays roughly constant.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.amcast import AtomicMulticast
from ..core.config import MultiRingConfig, global_config
from ..kvstore.service import MRPStoreService
from ..kvstore.partitioning import HashPartitioner
from ..sim.disk import StorageMode
from ..sim.topology import EC2_REGIONS, ec2_global
from ..workloads.kv import preload_keys, update_only_workload
from .reporting import relative_increments
from .runner import ExperimentResult, MeasurementWindow, measure

__all__ = ["run_fig7", "run_fig7_point", "FIG7_REGION_COUNTS"]

#: Number of synchronised partitions (regions) on the x-axis.
FIG7_REGION_COUNTS = (1, 2, 3, 4)

#: Region the paper measures latency in.
OBSERVED_REGION = "us-west-2"

_GLOBAL_RING_ID = 50
_UPDATE_BYTES = 1024


def run_fig7_point(
    region_count: int,
    clients_per_region: int = 24,
    key_count: int = 2000,
    warmup: float = 2.0,
    duration: float = 10.0,
    seed: int = 42,
    offered_rate_per_region: float = 400.0,
    workers: Optional[int] = None,
    sharded_configuration: str = "independent",
    batching_enabled: bool = True,
) -> ExperimentResult:
    """Run one region-count point of Figure 7.

    Clients are open-loop at ``offered_rate_per_region``: the paper's
    scalability argument is that "the local throughput of a region is not
    influenced by other regions", so the reproduction offers the same load per
    region and checks that every region absorbs it regardless of how many
    other regions participate.  ``clients_per_region`` is kept for API
    compatibility and bounds the number of outstanding requests implicitly
    through the offered rate.

    ``workers`` switches to the sharded engine spread over that many cores
    (see :func:`repro.bench.parallel.run_fig7_sharded`);
    ``sharded_configuration="shared"`` keeps the figure's *original* shape —
    partition rings plus the global ring all replicas subscribe to — with the
    global ring in its own shard and a parent-side merge stage, while
    ``"independent"`` drops the global ring.  ``workers=None`` runs the
    original globally ordered deployment on one event loop.
    ``batching_enabled`` controls coordinator value batching (on by default,
    as in the prototype); off gives the unbatched reference point.
    """
    if not 1 <= region_count <= len(EC2_REGIONS):
        raise ValueError(f"region_count must be within 1..{len(EC2_REGIONS)}")
    if workers is not None:
        from .parallel import run_fig7_sharded

        return run_fig7_sharded(
            region_count,
            workers=workers,
            key_count=key_count,
            warmup=warmup,
            duration=duration,
            seed=seed,
            offered_rate_per_region=offered_rate_per_region,
            configuration=sharded_configuration,
            batching_enabled=batching_enabled,
        )
    regions = list(EC2_REGIONS[:region_count])
    config = global_config(storage_mode=StorageMode.ASYNC_SSD).with_(
        batching_enabled=batching_enabled,
        batch_max_bytes=32 * 1024,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(topology=ec2_global(regions), config=config, seed=seed)
    groups = list(range(region_count))
    service = MRPStoreService(
        system,
        partition_groups=groups,
        acceptors_per_partition=3,
        replicas_per_partition=1,
        site_for_partition={g: regions[g] for g in groups},
        global_ring_id=_GLOBAL_RING_ID,
        config=config,
    )
    service.preload(preload_keys(key_count))

    # Clients only touch their local partition (Section 8.4.2): each client
    # uses a single-group partitioner pinned to its region's group, so every
    # command it issues is routed to the local ring.
    from ..core.client import OpenLoopClient
    from ..kvstore.client import MRPStoreCommands, kv_request_factory

    clients = []
    for g, region in enumerate(regions):
        rng = random.Random(seed + g)
        workload = update_only_workload(
            rng, key_count=key_count, value_bytes=_UPDATE_BYTES, key_prefix=f"r{g}-key"
        )
        local_commands = MRPStoreCommands(HashPartitioner([g]))
        factory = kv_request_factory(local_commands, workload)
        client = OpenLoopClient(
            system.env,
            f"fig7-client-{region}",
            frontends_by_group=service.frontend_map(preferred_site=region),
            request_factory=factory,
            rate_per_second=offered_rate_per_region,
            site=region,
            metric_prefix=f"fig7.{region}",
        )
        clients.append(client)

    window = MeasurementWindow(warmup=warmup, duration=duration)
    results = measure(
        system,
        window,
        throughput_metrics=[f"fig7.{r}.throughput" for r in regions],
        latency_metrics=[f"fig7.{r}.latency" for r in regions],
    )
    per_region = {r: results[f"fig7.{r}.throughput.rate"] for r in regions}
    observed = OBSERVED_REGION if OBSERVED_REGION in regions else regions[0]
    return ExperimentResult(
        name="fig7",
        params={"regions": region_count},
        metrics={
            "aggregate_ops": sum(per_region.values()),
            "observed_region_ops": per_region[observed],
            "latency_mean_ms": results[f"fig7.{observed}.latency.mean_ms"],
            "latency_p95_ms": results[f"fig7.{observed}.latency.p95_ms"],
        },
        series={"latency_cdf_observed": results[f"fig7.{observed}.latency.cdf"]},
    )


def run_fig7(
    region_counts: Sequence[int] = FIG7_REGION_COUNTS,
    clients_per_region: int = 24,
    warmup: float = 2.0,
    duration: float = 10.0,
    seed: int = 42,
) -> List[ExperimentResult]:
    """Run the full Figure 7 sweep and annotate relative increments."""
    results = [
        run_fig7_point(
            count, clients_per_region=clients_per_region, warmup=warmup, duration=duration, seed=seed
        )
        for count in region_counts
    ]
    increments = relative_increments([r.metrics["aggregate_ops"] for r in results])
    for result, increment in zip(results, increments):
        result.metrics["relative_increment_pct"] = increment
    return results
