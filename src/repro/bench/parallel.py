"""Sharded (multi-core) variants of the scalability figures.

The single-process figure runners execute every ring on one event loop; the
runners here re-measure vertical (Figure 6) and horizontal (Figure 7)
scalability with the deployment's rings partitioned across real cores via
:func:`repro.sim.parallel.run_sharded`.  Two configurations per figure:

* ``configuration="independent"`` — each shard hosts complete rings:
  acceptors, its own replica/learner, its own clients; no process
  participates in rings of two shards.  This isolates the paper's scaling
  claim (rings do not interfere) but is *not* the deployment the figures
  measured.
* ``configuration="shared"`` — the figures' **original** shape: Figure 6's
  learner subscribes to every log ring plus a common ring, Figure 7's
  replicas subscribe to their partition ring plus a global ring.  The rings
  share *learners only*, so each ring still runs in its own shard.  The
  shared learner itself is **reactive**: the run executes in barrier windows
  (``segment_interval``), every shard ships the decision-stream segments it
  recorded since the last barrier (skips included, with its watermark), and
  a parent-hosted :class:`~repro.core.smr.ReactiveReplicaHost` — a *real*
  MRP-Store/dLog replica driven by a streaming
  :class:`~repro.multiring.merge.MergeCursor` — applies merged deliveries
  barrier by barrier, so clients observe merged cross-ring state during the
  run and the results carry client-visible latency accounting
  (``reactive_latency_*``).  The shards still exchange no messages (the
  coupling is the merge, not traffic).

Determinism: ``run_figN_sharded(..., workers=k)`` is bit-identical for every
``k`` — the engine executes the same per-shard simulators whether they run
sequentially in-process (``workers=1``, the single-process reference engine)
or in ``k`` worker processes, windowed execution runs the same events as a
single window, and the merge stage is a pure function of the streamed
segments.  The reactive merged order is additionally bit-identical to the
offline :func:`~repro.multiring.merge.replay_streams` of the concatenated
segments (``series['merged_deliveries_offline']``).  This holds under
faults too: a fixed ``crash_schedule`` crashes and restarts the shared
learner's in-shard mirrors at scheduled simulated instants, the restarted
incarnations re-emit their stream prefixes, and the merge stage's
incarnation-aware dedup reconstructs the same merged state whatever the
worker count.  ``tests/bench/test_parallel_differential.py`` asserts all of
this on full per-learner delivery sequences, and
``benchmarks/bench_parallel.py`` records the wall-clock speedup — with the
merge/reactive stage accounted separately from the shard stage, plus a
faulted-run determinism section — in ``BENCH_parallel.json``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.amcast import AtomicMulticast
from ..core.client import ClosedLoopClient, OpenLoopClient
from ..core.config import MultiRingConfig, global_config
from ..core.swarm import ChurnSpec, PORT_ADDRESSING_LIMIT
from ..core.smr import ProposerFrontend, ReactiveReplicaHost
from ..multiring.merge import (
    RingSegment,
    RingSegmentBuffer,
    effective_streams,
    replay_streams,
)
from ..multiring.process import MultiRingProcess
from ..net.ring import RingMember
from ..paxos.messages import SKIP
from ..sim.actor import Environment
from ..sim.disk import StorageMode
from ..sim.parallel import ParallelRunResult, ShardSpec, run_sharded
from ..sim.topology import EC2_REGIONS, ec2_global, single_datacenter
from ..workloads.arrival import ArrivalCurve, constant
from .runner import ExperimentResult, MeasurementWindow, ShardedMeasurement

__all__ = ["run_fig6_sharded", "run_fig7_sharded"]

#: Default barrier cadence (simulated seconds) at which shared-configuration
#: shards ship decision-stream segments to the reactive merge stage.
DEFAULT_SEGMENT_INTERVAL = 0.25

#: Ring ids of the original (shared-learner) deployments, mirrored from the
#: single-process figure runners.
FIG6_COMMON_RING_ID = 99
FIG7_GLOBAL_RING_ID = 50


def _stable_payload_key(payload: Any) -> Any:
    """A payload identity stable across engine configurations.

    ``Command.command_id`` is drawn from a process-global counter whose value
    depends on how shards interleave in one process, so raw ``repr`` strings
    are not comparable between a ``workers=1`` and a ``workers=k`` run.  The
    semantic identity — who issued what operation with which arguments at
    what time — is.
    """
    from ..core.client import Command, CommandBatch
    from ..core.packing import PackedValues, iter_payloads

    if isinstance(payload, Command):
        return (payload.op, payload.args, payload.group_id, payload.client,
                payload.created_at)
    if isinstance(payload, CommandBatch):
        return tuple(_stable_payload_key(command) for command in payload)
    if payload is SKIP:
        return "<SKIP>"
    if isinstance(payload, PackedValues):
        # Shared recursive unpacker: the identity of a packed instance is
        # the ordered identities of its leaf payloads.
        return tuple(_stable_payload_key(leaf) for leaf in iter_payloads(payload))
    return repr(payload)


def _delivery_digest(recorder) -> Dict[str, List[tuple]]:
    """Per-learner delivery sequences in a picklable, comparable form."""
    return {
        name: [
            (record.group, record.instance, _stable_payload_key(record.payload))
            for record in trace.records
        ]
        for name, trace in recorder.traces.items()
    }


# ---------------------------------------------------------------------------
# Shared-learner (original-configuration) plumbing: segment taps + reactive
# merge stage
# ---------------------------------------------------------------------------

#: Flattened per-ring streams: ring id → ordered ``(instance, value)`` pairs,
#: skips included (pre-merge).
RingStreams = Dict[int, List[Tuple[int, Any]]]

#: Ring output accumulated in the parent from the shards' streamed segments:
#: ring id → incarnation-tagged :class:`~repro.multiring.merge.RingSegment`
#: runs in arrival order.  A crashed-and-restarted in-shard learner re-emits
#: its ring's prefix under a bumped incarnation;
#: :func:`~repro.multiring.merge.effective_streams` flattens the runs into
#: the deduped :data:`RingStreams` the offline replay consumes.
RingHistory = Dict[int, List[RingSegment]]


def _stream_digest(history: RingHistory) -> Dict[int, List[tuple]]:
    """Per-ring deduped stream digests (stable payload keys, skips marked)."""
    return {
        ring: [(instance, _stable_payload_key(value.payload)) for instance, value in stream]
        for ring, stream in effective_streams(history).items()
    }


def _attach_delivery_digest(harness: ShardedMeasurement, replicas) -> None:
    """Trace the replicas' deliveries and digest them into ``finalize()``.

    The digest must be computed in-worker *after* the run, so the recorder
    is wrapped into ``finalize`` rather than stored in ``harness.extra``.
    """
    from ..chaos.trace import TraceRecorder

    recorder = TraceRecorder()
    for replica in replicas:
        recorder.attach(replica)
    original_finalize = harness.finalize

    def finalize() -> Dict[str, Any]:
        result = original_finalize()
        result["deliveries"] = _delivery_digest(recorder)
        return result

    harness.finalize = finalize  # type: ignore[method-assign]


def _attach_swarm_stats(harness: ShardedMeasurement, swarm, trace: bool) -> None:
    """Ship a shard's swarm accounting (and optional command trace) home.

    Wrapped into ``finalize`` so the counters are read in-worker *after* the
    run; the trace tuples are already picklable.
    """
    original_finalize = harness.finalize

    def finalize() -> Dict[str, Any]:
        result = original_finalize()
        result["swarm_users"] = swarm.clients
        result["swarm_issued"] = swarm.issued
        result["swarm_completed"] = swarm.completed
        result["swarm_addressing"] = swarm.addressing
        if trace:
            result["swarm_trace"] = swarm.command_trace
        return result

    harness.finalize = finalize  # type: ignore[method-assign]


def _merge_stage(
    streams: RingStreams, messages_per_round: int
) -> List[Tuple[int, int, Any]]:
    """Replay recorded streams into the shared learner's delivery digest."""
    merged = replay_streams(streams, messages_per_round=messages_per_round)
    return [
        (group, instance, _stable_payload_key(value.payload))
        for group, instance, value in merged
    ]


def _delivery_digest_from(merged: Sequence[Tuple[int, int, Any]]) -> List[tuple]:
    """Digest raw merged ``(group, instance, value)`` triples."""
    return [
        (group, instance, _stable_payload_key(value.payload))
        for group, instance, value in merged
    ]


class _ReactiveMergeStage:
    """Parent-side streaming merge: hosts reactive replicas, ingests barriers.

    The ``segment_sink`` of a shared-configuration run: at every barrier the
    engine hands over ``{shard_id: (watermark, segments)}``; the stage
    combines the shards' disjoint rings, advances the joint watermark, and
    feeds every hosted :class:`~repro.core.smr.ReactiveReplicaHost` the rings
    it subscribes to.  Its wall clock is accounted separately from the
    shards' (``merge_stage_s``) so speedup claims state what they include.
    """

    def __init__(
        self,
        hosts: Dict[str, ReactiveReplicaHost],
        collect_streams: bool,
    ) -> None:
        self.hosts = hosts
        self.streams: RingHistory = {}
        self._collect = collect_streams
        self.seconds = 0.0
        self.barriers_fed = 0

    def sink(self, segments_by_shard: Dict[int, Any]) -> None:
        started = time.perf_counter()
        watermark: Optional[float] = None
        merged_segments: Dict[int, RingSegment] = {}
        for shard_id in sorted(segments_by_shard):
            shard_watermark, rings = segments_by_shard[shard_id]
            if watermark is None or shard_watermark < watermark:
                watermark = shard_watermark
            for ring, segment in rings.items():
                # Rings are disjoint across shards: each ring's segment
                # arrives from exactly one shard per barrier.  A ring whose
                # in-shard learner is down is absent from its shard's cut, so
                # it drops out of ``covered`` and the hosts' joint watermark
                # stalls honestly until the learner restarts.
                merged_segments[ring] = segment
                if self._collect:
                    self._record(ring, segment)
        covered = sorted(merged_segments)
        for name in sorted(self.hosts):
            host = self.hosts[name]
            subscribed = set(host.groups)
            host.ingest(
                {r: s for r, s in merged_segments.items() if r in subscribed},
                watermark=watermark,
                covered=[r for r in covered if r in subscribed],
            )
        self.barriers_fed += 1
        self.seconds += time.perf_counter() - started

    def _record(self, ring: int, segment: RingSegment) -> None:
        """Accumulate a barrier's segment into the per-ring incarnation runs.

        Segments of one incarnation are contiguous (the buffer's resume
        position advances by exactly the entries cut), so they coalesce into
        a single run; a bumped incarnation opens a new run whose re-emitted
        prefix ``effective_streams`` dedups at replay time.
        """
        runs = self.streams.setdefault(ring, [])
        last = runs[-1] if runs else None
        if last is not None and last.incarnation == segment.incarnation:
            last.entries.extend(segment.entries)
        else:
            runs.append(
                RingSegment(
                    incarnation=segment.incarnation,
                    start=segment.start,
                    entries=list(segment.entries),
                )
            )

    # ------------------------------------------------------------- reporting
    def delivery_digests(self) -> Dict[str, List[tuple]]:
        """Per-replica digests of the reactively applied merge output."""
        return {
            name: _delivery_digest_from(host.deliveries)
            for name, host in self.hosts.items()
        }

    def offline_digests(self, messages_per_round: int) -> Dict[str, List[tuple]]:
        """Offline ``replay_streams`` digests over the accumulated history.

        The differential anchor: must be bit-identical to
        :meth:`delivery_digests` (streaming and offline merges agree).  The
        incarnation runs are flattened through
        :func:`~repro.multiring.merge.effective_streams` first, so a crashed
        producer's re-emitted prefixes dedup exactly as the streaming cursor
        deduped them barrier by barrier.
        """
        flat = effective_streams(self.streams)
        return {
            name: _merge_stage(
                {ring: flat.get(ring, []) for ring in host.groups},
                messages_per_round=messages_per_round,
            )
            for name, host in self.hosts.items()
        }

    def annotate(
        self,
        result: ExperimentResult,
        observed: str,
        run: Optional[ParallelRunResult] = None,
    ) -> None:
        """Record the reactive stage's metrics on an experiment result.

        ``shard_wall_clock_s`` keeps its historical meaning — wall clock minus
        *total* merge-stage time — so the figure is comparable across rounds.
        How much of the merge stage actually ran concurrently with the next
        window (and therefore never extended the wall clock) is reported
        separately as ``merge_overlap_s`` / ``merge_overlap_fraction``.
        """
        stats = self.hosts[observed].latency_stats()
        if run is not None:
            overlap = min(run.merge_overlap_s, self.seconds)
            result.metrics["merge_overlap_s"] = overlap
            result.metrics["merge_overlap_fraction"] = (
                overlap / self.seconds if self.seconds > 0.0 else 0.0
            )
        result.metrics["merge_stage_s"] = self.seconds
        result.metrics["shard_wall_clock_s"] = (
            result.metrics["wall_clock_s"] - self.seconds
        )
        result.metrics["reactive_latency_mean_ms"] = stats["mean_ms"]
        result.metrics["reactive_latency_p95_ms"] = stats["p95_ms"]
        result.metrics["reactive_latency_count"] = stats["count"]
        result.metrics["reactive_stall_count"] = stats["stall_count"]
        result.metrics["reactive_stalled_ms"] = stats["stalled_ms"]
        result.metrics["reactive_commands_applied"] = float(
            sum(host.commands_applied for host in self.hosts.values())
        )


def _schedule_crashes(system: AtomicMulticast, schedule: Any) -> None:
    """Install a fixed ``(at, process, down_for)`` crash plan inside a shard.

    Only names that exist in this shard are touched.  The shared learner is
    mirrored into every shard under one name, so a single schedule entry
    crashes the whole logical process across shards at the same simulated
    instant — deterministically, whatever the worker count.  The crashed
    mirror's segment buffer marks its rings down (they vanish from the
    barrier cuts until restart), and the restarted incarnation's gap repair
    re-emits the decided prefix for the parent-side cursor to dedup.
    """
    sim = system.env.simulator
    for at, name, down_for in schedule or ():
        if not system.env.has_actor(name):
            continue
        sim.call_later(float(at), system.crash_process, name)
        sim.call_later(float(at) + float(down_for), system.restart_process, name)


# ---------------------------------------------------------------------------
# Figure 6 (vertical scalability) — one shard per ring+disk
# ---------------------------------------------------------------------------

def _fig6_config(faulted: bool = False, batching: bool = True) -> MultiRingConfig:
    """The Figure 6 configuration, mirrored from ``run_fig6_point``.

    ``faulted`` enables the learner gap-repair timer: a crash-schedule run
    restarts in-shard learners, and the fresh incarnation must re-fetch the
    decided prefix from the acceptors before it can re-emit its stream.
    ``batching`` mirrors ``run_fig6_point``'s ``batching_enabled``.
    """
    return MultiRingConfig(
        storage_mode=StorageMode.ASYNC_HDD,
        batching_enabled=batching,
        batch_max_bytes=32 * 1024,
        rate_interval=0.005,
        max_rate=4000.0,
        checkpoint_interval=None,
        trim_interval=None,
        gap_repair_interval=0.1 if faulted else None,
    )


def _build_fig6_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Build one Figure 6 log-ring shard with its own replica.

    Runs inside the worker process.  Mirrors
    :func:`repro.bench.fig6_vertical.run_fig6_point` for the shard's rings.
    In the independent-rings configuration the shard's replica *is* the
    deployment's learner; in the shared configuration it stands in for the
    shared learner's per-ring half, and ``stream_segments`` additionally taps
    the ring's ordered decision stream (skips included) into a segment
    buffer cut and shipped at every barrier for the parent-side reactive
    merge stage.
    """
    from ..dlog.client import append_request_factory
    from ..dlog.service import DLogService
    from ..workloads.log import single_log

    config = _fig6_config(
        faulted=bool(payload.get("crash_schedule")),
        batching=payload.get("batching", True),
    )
    system = AtomicMulticast(
        topology=single_datacenter(), config=config, seed=payload["seed"]
    )
    log_ids = list(payload["log_ids"])
    service = DLogService(
        system,
        log_ids=log_ids,
        acceptors_per_log=2,
        replica_count=1,
        common_ring_id=None,
        dedicated_disks=True,
        config=config,
    )
    for log_id in log_ids:
        factory = append_request_factory(
            service.commands,
            log_chooser=single_log(log_id),
            append_bytes=payload["append_bytes"],
        )
        ClosedLoopClient(
            system.env,
            f"fig6-client{log_id}",
            frontends_by_group=service.frontend_map(),
            request_factory=factory,
            concurrency=payload["clients_per_ring"],
            metric_prefix=f"fig6.ring{log_id}",
        )

    _schedule_crashes(system, payload.get("crash_schedule"))
    metric_names = [f"fig6.ring{log_id}" for log_id in log_ids]
    harness = ShardedMeasurement(
        system,
        MeasurementWindow(warmup=payload["warmup"], duration=payload["duration"]),
        throughput_metrics=[f"{m}.throughput" for m in metric_names],
        latency_metrics=[f"{m}.latency" for m in metric_names],
    )
    if payload.get("record_deliveries"):
        _attach_delivery_digest(harness, service.replicas)
    if payload.get("stream_segments"):
        buffer = RingSegmentBuffer()
        for replica in service.replicas:
            replica.record_ring_segments(into=buffer)
        harness.stream_segments(buffer)
    return harness


def _build_fig6_common_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Build the shared configuration's common-ring shard.

    The common ring of the original Figure 6 deployment carries no client
    traffic — it exists so every learner shares one ring — so its shard is
    just the ring's proposer/acceptor front ends plus a recording learner
    standing in for the shared learner's subscription.  Its rate-leveled skip
    stream is exactly what the merge stage needs to advance the round-robin
    past the idle ring.
    """
    config = _fig6_config(
        faulted=bool(payload.get("crash_schedule")),
        batching=payload.get("batching", True),
    )
    system = AtomicMulticast(
        topology=single_datacenter(), config=config, seed=payload["seed"]
    )
    site = system.topology.sites()[0].name
    frontends = [
        ProposerFrontend(system.env, f"dlogc-node{i}", site=site, config=config)
        for i in range(2)
    ]
    learner = MultiRingProcess(
        system.env, "dlog-replica0", site=site,
        messages_per_round=config.messages_per_round,
    )
    members: List[RingMember] = [
        RingMember(name=f.name, proposer=True, acceptor=True, learner=False)
        for f in frontends
    ] + [RingMember(name=learner.name, proposer=False, acceptor=False, learner=True)]
    system.create_ring(FIG6_COMMON_RING_ID, members, config=config)
    _schedule_crashes(system, payload.get("crash_schedule"))

    harness = ShardedMeasurement(
        system,
        MeasurementWindow(warmup=payload["warmup"], duration=payload["duration"]),
    )
    if payload.get("stream_segments"):
        harness.stream_segments(learner.record_ring_segments())
    return harness


def _build_fig6_shared_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Dispatch builder for the shared configuration's two shard kinds."""
    if payload.get("common_ring"):
        return _build_fig6_common_shard(payload)
    return _build_fig6_shard(payload)


def _fig6_reactive_stage(
    ring_count: int, config: MultiRingConfig, collect_streams: bool
) -> _ReactiveMergeStage:
    """The parent-hosted reactive dLog replica of the shared configuration.

    The deployment's single shared learner subscribes to every log ring plus
    the common ring; a real :class:`~repro.dlog.replica.DLogReplica` in a
    parent-side environment applies the merged deliveries as they stream in.
    """
    from ..dlog.replica import DLogReplica

    env = Environment()
    replica = DLogReplica(
        env, "dlog-replica0", config=config, respond_to_clients=False
    )
    host = ReactiveReplicaHost(
        replica,
        list(range(ring_count)) + [FIG6_COMMON_RING_ID],
        messages_per_round=config.messages_per_round,
        retain_history=collect_streams,
    )
    return _ReactiveMergeStage({replica.name: host}, collect_streams)


def run_fig6_sharded(
    ring_count: int,
    workers: int = 1,
    clients_per_ring: int = 8,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
    append_bytes: int = 1024,
    record_deliveries: bool = False,
    configuration: str = "independent",
    segment_interval: float = DEFAULT_SEGMENT_INTERVAL,
    crash_schedule: Optional[Sequence[Tuple[float, str, float]]] = None,
    batching_enabled: bool = True,
    wire_codec: bool = True,
) -> ExperimentResult:
    """Figure 6 point with one shard per ring, spread over ``workers`` cores.

    ``configuration="independent"`` runs one self-contained ring (with its
    own replica) per shard; ``configuration="shared"`` runs the figure's
    *original* deployment shape — ``ring_count`` log rings plus the common
    ring, coupled only by the shared learner — with one shard per ring and a
    parent-hosted **reactive** merge stage: the run executes in barrier
    windows of ``segment_interval`` simulated seconds, every shard ships the
    decision-stream segments recorded since the last barrier, and a real
    dLog replica applies the merged round-robin deliveries as they stream
    in, with client-visible latency accounting (``reactive_latency_mean_ms``
    / ``_p95_ms``, ``merge_stage_s`` vs ``shard_wall_clock_s``).

    Returns the usual :class:`ExperimentResult` plus parallel-run accounting
    (``wall_clock_s``, ``events_total``, ``workers``, ``barrier_count``).
    With ``record_deliveries=True`` each shard's full per-learner delivery
    sequence is included under ``series['deliveries']`` keyed by shard id —
    the payload the seed-differential test compares across worker counts —
    and the shared configuration additionally reports
    ``series['merged_deliveries']`` (the reactively applied merge output),
    ``series['merged_deliveries_offline']`` (the offline
    :func:`~repro.multiring.merge.replay_streams` of the same streams, which
    must be bit-identical) and ``series['ring_streams']`` (the per-ring
    decision-stream digests).

    ``crash_schedule`` (shared configuration only) is a fixed list of
    ``(at, process, down_for)`` fault points: the named process — typically
    the shared learner, whose name is mirrored into every shard — crashes at
    simulated time ``at`` and restarts ``down_for`` seconds later, in every
    shard that hosts it.  The schedule is part of the deterministic event
    plan, so a faulted run is still bit-identical across worker counts; the
    restarted learner's re-emitted stream prefix is deduped by the reactive
    merge stage (incarnation tags), and the stall the crash opens shows up
    in ``reactive_stall_count`` / ``reactive_stalled_ms``.
    """
    if ring_count < 1:
        raise ValueError("ring_count must be >= 1")
    if configuration not in ("independent", "shared"):
        raise ValueError(
            f"configuration must be 'independent' or 'shared', not {configuration!r}"
        )
    shared = configuration == "shared"
    if crash_schedule and not shared:
        raise ValueError("crash_schedule requires configuration='shared'")
    payload_base = {
        "clients_per_ring": clients_per_ring,
        "warmup": warmup,
        "duration": duration,
        "seed": seed,
        "append_bytes": append_bytes,
        "record_deliveries": record_deliveries,
        "stream_segments": shared,
        "crash_schedule": [tuple(point) for point in crash_schedule or ()] or None,
        "batching": batching_enabled,
    }
    specs = [
        ShardSpec(
            shard_id=ring,
            build=_build_fig6_shared_shard if shared else _build_fig6_shard,
            payload={**payload_base, "log_ids": [ring]},
            # Load ∝ the shard's driven actors: ring members plus its
            # closed-loop clients (the traffic-less common ring keeps the
            # default weight 1.0 below).
            weight=2.0 + clients_per_ring,
        )
        for ring in range(ring_count)
    ]
    config = _fig6_config(faulted=bool(crash_schedule), batching=batching_enabled)
    if shared:
        specs.append(
            ShardSpec(
                shard_id=ring_count,
                build=_build_fig6_shared_shard,
                payload={**payload_base, "common_ring": True},
            )
        )
        stage = _fig6_reactive_stage(
            ring_count, config, collect_streams=record_deliveries
        )
        run = run_sharded(
            specs,
            workers=workers,
            until=warmup + duration,
            segment_interval=segment_interval,
            segment_sink=stage.sink,
            wire_codec=wire_codec,
        )
    else:
        run = run_sharded(specs, workers=workers, wire_codec=wire_codec)
    result = _collect(
        "fig6-sharded" if configuration == "independent" else "fig6-sharded-shared",
        run,
        params={
            "rings": ring_count,
            "workers": run.workers,
            "configuration": configuration,
            "faulted": bool(crash_schedule),
        },
        rate_keys={
            ring: [f"fig6.ring{ring}.throughput.rate"] for ring in range(ring_count)
        },
        latency_key=(0, "fig6.ring0.latency.mean_ms"),
    )
    if shared:
        stage.annotate(result, observed="dlog-replica0", run=run)
        if record_deliveries:
            result.series["ring_streams"] = _stream_digest(stage.streams)
            result.series["merged_deliveries"] = stage.delivery_digests()
            result.series["merged_deliveries_offline"] = stage.offline_digests(
                config.messages_per_round
            )
    return result


# ---------------------------------------------------------------------------
# Figure 7 (horizontal scalability) — one shard per region
# ---------------------------------------------------------------------------

def _fig7_config(faulted: bool = False, batching: bool = True) -> MultiRingConfig:
    """The Figure 7 configuration, mirrored from ``run_fig7_point``.

    ``faulted`` enables the learner gap-repair timer (see
    :func:`_fig6_config`); ``batching`` mirrors ``batching_enabled``.
    """
    return global_config(storage_mode=StorageMode.ASYNC_SSD).with_(
        batching_enabled=batching,
        batch_max_bytes=32 * 1024,
        checkpoint_interval=None,
        trim_interval=None,
        gap_repair_interval=0.1 if faulted else None,
    )


def _build_fig7_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Build one Figure 7 shard: one region's partition ring plus its client.

    Mirrors :func:`repro.bench.fig7_horizontal.run_fig7_point` for one
    region: clients only ever touch their local partition, which is the
    property the figure measures.  In the shared configuration the region's
    replica stands in for the original replica's partition-ring half, and
    ``stream_segments`` taps the ring's ordered decision stream (skips
    included) into a segment buffer shipped at every barrier for the
    parent-side reactive merge stage.
    """
    import random as _random

    from ..kvstore.client import MRPStoreCommands, kv_request_factory
    from ..kvstore.partitioning import HashPartitioner
    from ..kvstore.service import MRPStoreService
    from ..workloads.kv import preload_keys, update_only_workload

    region = payload["region"]
    group = payload["group"]
    config = _fig7_config(
        faulted=bool(payload.get("crash_schedule")),
        batching=payload.get("batching", True),
    )
    system = AtomicMulticast(
        topology=ec2_global([region]), config=config, seed=payload["seed"]
    )
    service = MRPStoreService(
        system,
        partition_groups=[group],
        acceptors_per_partition=3,
        replicas_per_partition=1,
        site_for_partition={group: region},
        global_ring_id=None,
        config=config,
    )
    service.preload(preload_keys(payload["key_count"]))

    commands = MRPStoreCommands(HashPartitioner([group]))
    frontends = service.frontend_map(preferred_site=region)
    engine = payload.get("client_engine", "actors")
    users = payload.get("users") or 1

    def factory_for(i: int):
        # Per-user workload stream: identical (engine-independent) seeds, so
        # the swarm engine's flyweight client ``i`` draws the exact request
        # sequence the individual actor ``fig7-client-{region}-{i}`` draws.
        workload = update_only_workload(
            _random.Random((payload["seed"] + group) * 100_003 + i),
            key_count=payload["key_count"],
            value_bytes=payload["update_bytes"],
            key_prefix=f"r{group}-key",
        )
        return kv_request_factory(commands, workload)

    swarm = None
    if engine == "swarm":
        from ..core.swarm import ClientSwarm

        factories = [factory_for(i) for i in range(users)]
        swarm = ClientSwarm(
            system.env,
            f"fig7-swarm-{region}",
            frontends_by_group=frontends,
            request_factory=lambda index, sequence: factories[index](sequence),
            clients=users,
            mode="open",
            arrival=payload.get("arrival") or constant(payload["offered_rate"]),
            stagger=payload.get("stagger", False),
            site=region,
            metric_prefix=f"fig7.{region}",
            addressing="auto",
            port_names=(
                [f"fig7-client-{region}-{i}" for i in range(users)]
                if users <= PORT_ADDRESSING_LIMIT
                else None
            ),
            churn=payload.get("churn"),
            sketch=payload.get("sketch", "auto"),
            record_trace=bool(payload.get("record_swarm_trace")),
        )
    elif users > 1:
        # Actors engine at swarm scale: the differential reference — one
        # OpenLoopClient per user, each carrying 1/users of the offered rate,
        # named exactly like the swarm's ports.
        for i in range(users):
            OpenLoopClient(
                system.env,
                f"fig7-client-{region}-{i}",
                frontends_by_group=frontends,
                request_factory=factory_for(i),
                rate_per_second=payload["offered_rate"] / users,
                site=region,
                metric_prefix=f"fig7.{region}",
            )
    else:
        # The original single-client deployment (legacy seed arithmetic —
        # existing runs stay byte-identical).
        rng = _random.Random(payload["seed"] + group)
        workload = update_only_workload(
            rng,
            key_count=payload["key_count"],
            value_bytes=payload["update_bytes"],
            key_prefix=f"r{group}-key",
        )
        OpenLoopClient(
            system.env,
            f"fig7-client-{region}",
            frontends_by_group=frontends,
            request_factory=kv_request_factory(commands, workload),
            rate_per_second=payload["offered_rate"],
            site=region,
            metric_prefix=f"fig7.{region}",
        )
    _schedule_crashes(system, payload.get("crash_schedule"))
    harness = ShardedMeasurement(
        system,
        MeasurementWindow(warmup=payload["warmup"], duration=payload["duration"]),
        throughput_metrics=[f"fig7.{region}.throughput"],
        latency_metrics=[f"fig7.{region}.latency"],
    )
    if swarm is not None:
        _attach_swarm_stats(harness, swarm, bool(payload.get("record_swarm_trace")))
    if payload.get("record_deliveries"):
        _attach_delivery_digest(harness, service.all_replicas())
    if payload.get("stream_segments"):
        buffer = RingSegmentBuffer()
        for replica in service.all_replicas():
            replica.record_ring_segments(into=buffer)
        harness.stream_segments(buffer)
    return harness


def _build_fig7_global_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Build the shared configuration's global-ring shard.

    The global ring of the original Figure 7 deployment spans every region;
    its shard hosts one dedicated proposer/acceptor per region (the
    ``dedicated_global_acceptors`` shape of
    :class:`repro.kvstore.service.MRPStoreService`, which is what makes the
    deployment share learners only) plus one recording learner standing in
    for the replicas' global subscription.  Clients never address the global
    group, so the recorded stream is the ring's rate-leveled skips — exactly
    what the merge stage needs to advance each replica's round-robin.
    """
    regions = list(payload["regions"])
    config = _fig7_config(
        faulted=bool(payload.get("crash_schedule")),
        batching=payload.get("batching", True),
    )
    system = AtomicMulticast(
        topology=ec2_global(regions), config=config, seed=payload["seed"]
    )
    frontends = [
        ProposerFrontend(system.env, f"kvg-node{g}", site=region, config=config)
        for g, region in enumerate(regions)
    ]
    learner = MultiRingProcess(
        system.env, "kvg-learner", site=regions[0],
        messages_per_round=config.messages_per_round,
    )
    members: List[RingMember] = [
        RingMember(name=f.name, proposer=True, acceptor=True, learner=False)
        for f in frontends
    ] + [RingMember(name=learner.name, proposer=False, acceptor=False, learner=True)]
    system.create_ring(FIG7_GLOBAL_RING_ID, members, config=config)
    _schedule_crashes(system, payload.get("crash_schedule"))

    harness = ShardedMeasurement(
        system,
        MeasurementWindow(warmup=payload["warmup"], duration=payload["duration"]),
    )
    if payload.get("stream_segments"):
        harness.stream_segments(learner.record_ring_segments())
    return harness


def _build_fig7_shared_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Dispatch builder for the shared configuration's two shard kinds."""
    if payload.get("global_ring"):
        return _build_fig7_global_shard(payload)
    return _build_fig7_shard(payload)


def _fig7_reactive_stage(
    region_count: int,
    config: MultiRingConfig,
    key_count: int,
    collect_streams: bool,
) -> _ReactiveMergeStage:
    """The parent-hosted reactive MRP-Store replicas of the shared shape.

    One real :class:`~repro.kvstore.replica.MRPStoreReplica` per region, each
    merging its partition ring with the global ring — preloaded with the same
    initial dataset the in-shard replicas carry, so the reactive store state
    is the state a client of the original deployment would read.
    """
    from ..kvstore.replica import MRPStoreReplica
    from ..workloads.kv import preload_keys

    env = Environment()
    dataset = preload_keys(key_count)
    hosts: Dict[str, ReactiveReplicaHost] = {}
    for group in range(region_count):
        replica = MRPStoreReplica(
            env, f"kv{group}-replica0", config=config, respond_to_clients=False
        )
        for key, size in dataset.items():
            replica.store.insert(key, None, size)
        hosts[replica.name] = ReactiveReplicaHost(
            replica,
            [group, FIG7_GLOBAL_RING_ID],
            messages_per_round=config.messages_per_round,
            retain_history=collect_streams,
        )
    return _ReactiveMergeStage(hosts, collect_streams)


def run_fig7_sharded(
    region_count: int,
    workers: int = 1,
    key_count: int = 2000,
    warmup: float = 2.0,
    duration: float = 10.0,
    seed: int = 42,
    offered_rate_per_region: float = 400.0,
    update_bytes: int = 1024,
    record_deliveries: bool = False,
    configuration: str = "independent",
    segment_interval: float = DEFAULT_SEGMENT_INTERVAL,
    crash_schedule: Optional[Sequence[Tuple[float, str, float]]] = None,
    batching_enabled: bool = True,
    client_engine: str = "actors",
    users_per_region: Optional[int] = None,
    arrival: Optional[ArrivalCurve] = None,
    churn: Optional[ChurnSpec] = None,
    stagger: bool = False,
    record_swarm_trace: bool = False,
    wire_codec: bool = True,
) -> ExperimentResult:
    """Figure 7 point with one shard per region, spread over ``workers`` cores.

    ``client_engine`` selects the workload driver per region shard:
    ``"actors"`` (default) keeps the original actor clients — the historical
    single :class:`~repro.core.client.OpenLoopClient` when
    ``users_per_region`` is unset, or ``users_per_region`` individual actors
    named ``fig7-client-<region>-<i>`` each offering ``1/users`` of the
    region rate.  ``"swarm"`` drives the same load from one
    :class:`~repro.core.swarm.ClientSwarm` of ``users_per_region`` flyweight
    clients whose port names match the individual actors', optionally
    following an :class:`~repro.workloads.arrival.ArrivalCurve` (``arrival``;
    e.g. a flash crowd) and a :class:`~repro.core.swarm.ChurnSpec`
    (``churn``).  ``record_swarm_trace=True`` ships every shard swarm's
    issued-command trace home under ``series['swarm_traces']`` (keyed by
    shard id) — the flash-crowd determinism differential compares these
    across runs and worker counts.

    ``configuration="shared"`` runs the figure's *original* shape — every
    region's partition ring plus the global ring all replicas subscribe to —
    with the global ring in its own shard and a parent-hosted **reactive**
    merge stage: one real MRP-Store replica per region applies its merged
    round-robin order (partition ring + global ring) barrier by barrier as
    the shards stream their decision-stream segments, with client-visible
    latency accounting (``reactive_latency_*``, ``merge_stage_s``).  With
    ``record_deliveries=True`` the reactively applied merge output is
    reported under ``series['merged_deliveries']`` (keyed by replica name),
    alongside the bit-identical offline replay
    (``series['merged_deliveries_offline']``) and the per-ring stream
    digests (``series['ring_streams']``).

    ``crash_schedule`` (shared configuration only) injects fixed
    ``(at, process, down_for)`` crash/restart points into every shard that
    hosts the named process — see :func:`run_fig6_sharded` for the
    semantics; the faulted run stays bit-identical across worker counts.
    """
    if not 1 <= region_count <= len(EC2_REGIONS):
        raise ValueError(f"region_count must be within 1..{len(EC2_REGIONS)}")
    if configuration not in ("independent", "shared"):
        raise ValueError(
            f"configuration must be 'independent' or 'shared', not {configuration!r}"
        )
    shared = configuration == "shared"
    if crash_schedule and not shared:
        raise ValueError("crash_schedule requires configuration='shared'")
    if client_engine not in ("actors", "swarm"):
        raise ValueError(
            f"client_engine must be 'actors' or 'swarm', not {client_engine!r}"
        )
    if client_engine == "swarm" and not users_per_region:
        raise ValueError("client_engine='swarm' requires users_per_region")
    regions = list(EC2_REGIONS[:region_count])
    payload_base = {
        "key_count": key_count,
        "warmup": warmup,
        "duration": duration,
        "seed": seed,
        "offered_rate": offered_rate_per_region,
        "update_bytes": update_bytes,
        "record_deliveries": record_deliveries,
        "stream_segments": shared,
        "crash_schedule": [tuple(point) for point in crash_schedule or ()] or None,
        "batching": batching_enabled,
        "client_engine": client_engine,
        "users": users_per_region,
        "arrival": arrival,
        "churn": churn,
        "stagger": stagger,
        "record_swarm_trace": record_swarm_trace,
    }
    specs = [
        ShardSpec(
            shard_id=group,
            build=_build_fig7_shared_shard if shared else _build_fig7_shard,
            payload={**payload_base, "region": region, "group": group},
            # Load ∝ the region's driven clients (the traffic-less global
            # ring keeps the default weight 1.0 below).
            weight=2.0 + (users_per_region or 1),
        )
        for group, region in enumerate(regions)
    ]
    config = _fig7_config(faulted=bool(crash_schedule), batching=batching_enabled)
    if shared:
        specs.append(
            ShardSpec(
                shard_id=region_count,
                build=_build_fig7_shared_shard,
                payload={**payload_base, "global_ring": True, "regions": regions},
            )
        )
        stage = _fig7_reactive_stage(
            region_count, config, key_count, collect_streams=record_deliveries
        )
        run = run_sharded(
            specs,
            workers=workers,
            until=warmup + duration,
            segment_interval=segment_interval,
            segment_sink=stage.sink,
            wire_codec=wire_codec,
        )
    else:
        run = run_sharded(specs, workers=workers, wire_codec=wire_codec)
    observed = 0 if "us-west-2" not in regions else regions.index("us-west-2")
    result = _collect(
        "fig7-sharded" if configuration == "independent" else "fig7-sharded-shared",
        run,
        params={
            "regions": region_count,
            "workers": run.workers,
            "configuration": configuration,
            "faulted": bool(crash_schedule),
            "client_engine": client_engine,
            "users_per_region": users_per_region,
        },
        rate_keys={
            group: [f"fig7.{region}.throughput.rate"]
            for group, region in enumerate(regions)
        },
        latency_key=(observed, f"fig7.{regions[observed]}.latency.mean_ms"),
    )
    swarm_traces = {
        shard_id: shard["swarm_trace"]
        for shard_id, shard in run.results.items()
        if isinstance(shard, dict) and "swarm_trace" in shard
    }
    if swarm_traces:
        result.series["swarm_traces"] = swarm_traces
    swarm_completed = sum(
        shard.get("swarm_completed", 0)
        for shard in run.results.values()
        if isinstance(shard, dict)
    )
    if client_engine == "swarm":
        result.metrics["swarm_completed"] = float(swarm_completed)
    if shared:
        stage.annotate(result, observed=f"kv{observed}-replica0", run=run)
        if record_deliveries:
            result.series["ring_streams"] = _stream_digest(stage.streams)
            result.series["merged_deliveries"] = stage.delivery_digests()
            result.series["merged_deliveries_offline"] = stage.offline_digests(
                config.messages_per_round
            )
    return result


# ---------------------------------------------------------------------------
# Shared result assembly
# ---------------------------------------------------------------------------

def _collect(
    name: str,
    run: ParallelRunResult,
    params: Dict[str, Any],
    rate_keys: Dict[int, List[str]],
    latency_key,
) -> ExperimentResult:
    aggregate = 0.0
    per_shard: Dict[int, float] = {}
    for shard_id, keys in rate_keys.items():
        shard_rate = sum(run.results[shard_id].get(key, 0.0) for key in keys)
        per_shard[shard_id] = shard_rate
        aggregate += shard_rate
    latency_shard, latency_name = latency_key
    deliveries = {
        shard_id: result["deliveries"]
        for shard_id, result in run.results.items()
        if isinstance(result, dict) and "deliveries" in result
    }
    result = ExperimentResult(
        name=name,
        params=params,
        metrics={
            "aggregate_ops": aggregate,
            "latency_mean_ms": run.results[latency_shard].get(latency_name, 0.0),
            "wall_clock_s": run.wall_clock,
            "events_total": float(run.total_events),
            "workers": float(run.workers),
            "barrier_count": float(run.barrier_count),
            "ipc_bytes": float(run.ipc_bytes),
            "ipc_messages": float(run.ipc_messages),
            "worker_windows_skipped": float(run.worker_windows_skipped),
        },
        series={"per_shard_ops": sorted(per_shard.items())},
    )
    if deliveries:
        result.series["deliveries"] = deliveries
    return result
