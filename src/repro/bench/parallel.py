"""Sharded (multi-core) variants of the scalability figures.

The single-process figure runners execute every ring on one event loop; the
runners here re-measure vertical (Figure 6) and horizontal (Figure 7)
scalability with the deployment's independent rings partitioned across real
cores via :func:`repro.sim.parallel.run_sharded`.

The sharded deployments use the *independent rings* configuration: each
shard hosts complete rings — acceptors, its own replica/learner, its own
clients — and no process participates in rings of two shards, which is the
precondition for sharded execution (see :mod:`repro.multiring.sharding`).
Figure 6's shared learner set (every replica subscribed to all rings plus a
common ring) and Figure 7's global ring tie all rings into one component and
therefore cannot shard; the paper's scaling claim — rings do not interfere —
is exactly what the independent configuration isolates, so the sharded
curves measure the same property on real cores.

Determinism: ``run_figN_sharded(..., workers=k)`` is bit-identical for every
``k`` — the engine executes the same per-shard simulators whether they run
sequentially in-process (``workers=1``, the single-process reference engine)
or in ``k`` worker processes.  ``tests/bench/test_parallel_differential.py``
asserts this on full per-learner delivery sequences, and
``benchmarks/bench_parallel.py`` records the wall-clock speedup in
``BENCH_parallel.json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..core.amcast import AtomicMulticast
from ..core.client import ClosedLoopClient, OpenLoopClient
from ..core.config import MultiRingConfig, global_config
from ..sim.disk import StorageMode
from ..sim.parallel import ParallelRunResult, ShardSpec, run_sharded
from ..sim.topology import EC2_REGIONS, ec2_global, single_datacenter
from .runner import ExperimentResult, MeasurementWindow, ShardedMeasurement

__all__ = ["run_fig6_sharded", "run_fig7_sharded"]


def _stable_payload_key(payload: Any) -> Any:
    """A payload identity stable across engine configurations.

    ``Command.command_id`` is drawn from a process-global counter whose value
    depends on how shards interleave in one process, so raw ``repr`` strings
    are not comparable between a ``workers=1`` and a ``workers=k`` run.  The
    semantic identity — who issued what operation with which arguments at
    what time — is.
    """
    from ..core.client import Command, CommandBatch

    if isinstance(payload, Command):
        return (payload.op, payload.args, payload.group_id, payload.client,
                payload.created_at)
    if isinstance(payload, CommandBatch):
        return tuple(_stable_payload_key(command) for command in payload)
    return repr(payload)


def _delivery_digest(recorder) -> Dict[str, List[tuple]]:
    """Per-learner delivery sequences in a picklable, comparable form."""
    return {
        name: [
            (record.group, record.instance, _stable_payload_key(record.payload))
            for record in trace.records
        ]
        for name, trace in recorder.traces.items()
    }


# ---------------------------------------------------------------------------
# Figure 6 (vertical scalability) — one shard per ring+disk
# ---------------------------------------------------------------------------

def _build_fig6_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Build one Figure 6 shard: a subset of log rings with its own replica.

    Runs inside the worker process.  Mirrors
    :func:`repro.bench.fig6_vertical.run_fig6_point` except that the shard's
    replica learns only from the shard's rings (independent-rings
    configuration) — the shared learner set of the figure's original
    deployment would tie every ring into one component.
    """
    from ..dlog.client import append_request_factory
    from ..dlog.service import DLogService
    from ..workloads.log import single_log

    config = MultiRingConfig(
        storage_mode=StorageMode.ASYNC_HDD,
        batching_enabled=True,
        batch_max_bytes=32 * 1024,
        rate_interval=0.005,
        max_rate=4000.0,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(
        topology=single_datacenter(), config=config, seed=payload["seed"]
    )
    log_ids = list(payload["log_ids"])
    service = DLogService(
        system,
        log_ids=log_ids,
        acceptors_per_log=2,
        replica_count=1,
        common_ring_id=None,
        dedicated_disks=True,
        config=config,
    )
    for log_id in log_ids:
        factory = append_request_factory(
            service.commands,
            log_chooser=single_log(log_id),
            append_bytes=payload["append_bytes"],
        )
        ClosedLoopClient(
            system.env,
            f"fig6-client{log_id}",
            frontends_by_group=service.frontend_map(),
            request_factory=factory,
            concurrency=payload["clients_per_ring"],
            metric_prefix=f"fig6.ring{log_id}",
        )

    metric_names = [f"fig6.ring{log_id}" for log_id in log_ids]
    harness = ShardedMeasurement(
        system,
        MeasurementWindow(warmup=payload["warmup"], duration=payload["duration"]),
        throughput_metrics=[f"{m}.throughput" for m in metric_names],
        latency_metrics=[f"{m}.latency" for m in metric_names],
    )
    if payload.get("record_deliveries"):
        from ..chaos.trace import TraceRecorder

        recorder = TraceRecorder()
        for replica in service.replicas:
            recorder.attach(replica)

        original_finalize = harness.finalize

        def finalize() -> Dict[str, Any]:
            result = original_finalize()
            result["deliveries"] = _delivery_digest(recorder)
            return result

        harness.finalize = finalize  # type: ignore[method-assign]
    return harness


def run_fig6_sharded(
    ring_count: int,
    workers: int = 1,
    clients_per_ring: int = 8,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
    append_bytes: int = 1024,
    record_deliveries: bool = False,
) -> ExperimentResult:
    """Figure 6 point with one shard per ring, spread over ``workers`` cores.

    Returns the usual :class:`ExperimentResult` plus parallel-run accounting
    (``wall_clock_s``, ``events_total``, ``workers``).  With
    ``record_deliveries=True`` each shard's full per-learner delivery
    sequence is included under ``series['deliveries']`` keyed by shard id —
    the payload the seed-differential test compares across worker counts.
    """
    if ring_count < 1:
        raise ValueError("ring_count must be >= 1")
    specs = [
        ShardSpec(
            shard_id=ring,
            build=_build_fig6_shard,
            payload={
                "log_ids": [ring],
                "clients_per_ring": clients_per_ring,
                "warmup": warmup,
                "duration": duration,
                "seed": seed,
                "append_bytes": append_bytes,
                "record_deliveries": record_deliveries,
            },
        )
        for ring in range(ring_count)
    ]
    run = run_sharded(specs, workers=workers)
    return _collect(
        "fig6-sharded",
        run,
        params={"rings": ring_count, "workers": run.workers},
        rate_keys={
            ring: [f"fig6.ring{ring}.throughput.rate"] for ring in range(ring_count)
        },
        latency_key=(0, "fig6.ring0.latency.mean_ms"),
    )


# ---------------------------------------------------------------------------
# Figure 7 (horizontal scalability) — one shard per region
# ---------------------------------------------------------------------------

def _build_fig7_shard(payload: Dict[str, Any]) -> ShardedMeasurement:
    """Build one Figure 7 shard: one region's partition ring plus its client.

    Mirrors :func:`repro.bench.fig7_horizontal.run_fig7_point` in the
    independent-rings configuration (no global ring): clients only ever touch
    their local partition, which is the property the figure measures.
    """
    import random as _random

    from ..kvstore.client import MRPStoreCommands, kv_request_factory
    from ..kvstore.partitioning import HashPartitioner
    from ..kvstore.service import MRPStoreService
    from ..workloads.kv import preload_keys, update_only_workload

    region = payload["region"]
    group = payload["group"]
    config = global_config(storage_mode=StorageMode.ASYNC_SSD).with_(
        batching_enabled=True,
        batch_max_bytes=32 * 1024,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(
        topology=ec2_global([region]), config=config, seed=payload["seed"]
    )
    service = MRPStoreService(
        system,
        partition_groups=[group],
        acceptors_per_partition=3,
        replicas_per_partition=1,
        site_for_partition={group: region},
        global_ring_id=None,
        config=config,
    )
    service.preload(preload_keys(payload["key_count"]))

    rng = _random.Random(payload["seed"] + group)
    workload = update_only_workload(
        rng,
        key_count=payload["key_count"],
        value_bytes=payload["update_bytes"],
        key_prefix=f"r{group}-key",
    )
    commands = MRPStoreCommands(HashPartitioner([group]))
    OpenLoopClient(
        system.env,
        f"fig7-client-{region}",
        frontends_by_group=service.frontend_map(preferred_site=region),
        request_factory=kv_request_factory(commands, workload),
        rate_per_second=payload["offered_rate"],
        site=region,
        metric_prefix=f"fig7.{region}",
    )
    harness = ShardedMeasurement(
        system,
        MeasurementWindow(warmup=payload["warmup"], duration=payload["duration"]),
        throughput_metrics=[f"fig7.{region}.throughput"],
        latency_metrics=[f"fig7.{region}.latency"],
    )
    if payload.get("record_deliveries"):
        from ..chaos.trace import TraceRecorder

        recorder = TraceRecorder()
        for replicas in service.replicas.values():
            for replica in replicas:
                recorder.attach(replica)

        original_finalize = harness.finalize

        def finalize() -> Dict[str, Any]:
            result = original_finalize()
            result["deliveries"] = _delivery_digest(recorder)
            return result

        harness.finalize = finalize  # type: ignore[method-assign]
    return harness


def run_fig7_sharded(
    region_count: int,
    workers: int = 1,
    key_count: int = 2000,
    warmup: float = 2.0,
    duration: float = 10.0,
    seed: int = 42,
    offered_rate_per_region: float = 400.0,
    update_bytes: int = 1024,
    record_deliveries: bool = False,
) -> ExperimentResult:
    """Figure 7 point with one shard per region, spread over ``workers`` cores."""
    if not 1 <= region_count <= len(EC2_REGIONS):
        raise ValueError(f"region_count must be within 1..{len(EC2_REGIONS)}")
    regions = list(EC2_REGIONS[:region_count])
    specs = [
        ShardSpec(
            shard_id=group,
            build=_build_fig7_shard,
            payload={
                "region": region,
                "group": group,
                "key_count": key_count,
                "warmup": warmup,
                "duration": duration,
                "seed": seed,
                "offered_rate": offered_rate_per_region,
                "update_bytes": update_bytes,
                "record_deliveries": record_deliveries,
            },
        )
        for group, region in enumerate(regions)
    ]
    run = run_sharded(specs, workers=workers)
    observed = 0 if "us-west-2" not in regions else regions.index("us-west-2")
    return _collect(
        "fig7-sharded",
        run,
        params={"regions": region_count, "workers": run.workers},
        rate_keys={
            group: [f"fig7.{region}.throughput.rate"]
            for group, region in enumerate(regions)
        },
        latency_key=(observed, f"fig7.{regions[observed]}.latency.mean_ms"),
    )


# ---------------------------------------------------------------------------
# Shared result assembly
# ---------------------------------------------------------------------------

def _collect(
    name: str,
    run: ParallelRunResult,
    params: Dict[str, Any],
    rate_keys: Dict[int, List[str]],
    latency_key,
) -> ExperimentResult:
    aggregate = 0.0
    per_shard: Dict[int, float] = {}
    for shard_id, keys in rate_keys.items():
        shard_rate = sum(run.results[shard_id].get(key, 0.0) for key in keys)
        per_shard[shard_id] = shard_rate
        aggregate += shard_rate
    latency_shard, latency_name = latency_key
    deliveries = {
        shard_id: result["deliveries"]
        for shard_id, result in run.results.items()
        if isinstance(result, dict) and "deliveries" in result
    }
    result = ExperimentResult(
        name=name,
        params=params,
        metrics={
            "aggregate_ops": aggregate,
            "latency_mean_ms": run.results[latency_shard].get(latency_name, 0.0),
            "wall_clock_s": run.wall_clock,
            "events_total": float(run.total_events),
            "workers": float(run.workers),
        },
        series={"per_shard_ops": sorted(per_shard.items())},
    )
    if deliveries:
        result.series["deliveries"] = deliveries
    return result
