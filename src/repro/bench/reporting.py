"""Formatting of benchmark results into paper-style tables and series."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .runner import ExperimentResult

__all__ = ["format_table", "format_results", "relative_increments", "print_results"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a plain-text table with aligned columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in str_rows
    ]
    return "\n".join([line, separator] + body)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def format_results(
    results: Sequence[ExperimentResult],
    param_keys: Sequence[str],
    metric_keys: Sequence[str],
    title: str = "",
) -> str:
    """Render experiment results as a table keyed by their parameters."""
    headers = list(param_keys) + list(metric_keys)
    rows = [
        [r.params.get(k, "") for k in param_keys] + [r.metrics.get(k, 0.0) for k in metric_keys]
        for r in results
    ]
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def relative_increments(values: Sequence[float]) -> List[float]:
    """Per-step relative increase, as the percentages printed on Figures 6 and 7.

    The first entry is 100 %; subsequent entries are the ratio between the
    marginal gain and the previous per-unit value, e.g. ``[100.0, 95.3, ...]``.
    """
    if not values:
        return []
    increments = [100.0]
    for i in range(1, len(values)):
        marginal = values[i] - values[i - 1]
        per_unit_before = values[i - 1] / i
        if per_unit_before <= 0:
            increments.append(0.0)
        else:
            increments.append(100.0 * marginal / per_unit_before)
    return increments


def print_results(
    results: Sequence[ExperimentResult],
    param_keys: Sequence[str],
    metric_keys: Sequence[str],
    title: str = "",
) -> None:
    """Print a result table (used by the pytest benchmarks' ``-s`` mode)."""
    print()
    print(format_results(results, param_keys, metric_keys, title=title))
