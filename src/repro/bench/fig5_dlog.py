"""Figure 5 — dLog versus the sequencer-based ensemble log (Bookkeeper stand-in).

Both systems implement a strongly consistent distributed log and write every
request to disk synchronously.  dLog uses two rings with three acceptors per
ring, learners subscribed to both rings and co-located with the acceptors; the
comparator uses an ensemble of three storage nodes behind a sequencer with
aggressive batching.  A multithreaded client sends 1 KB append requests; the
client-thread count sweeps up to 200 (Section 8.3.3).

Expected shape: dLog achieves higher throughput and much lower latency; the
sequencer log's latency is dominated by its batching window.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..baselines.seqlog import SequencerLogService
from ..core.amcast import AtomicMulticast
from ..core.client import ClosedLoopClient
from ..core.config import MultiRingConfig
from ..dlog.client import DLogCommands, append_request_factory
from ..dlog.service import DLogService
from ..sim.disk import StorageMode
from ..sim.topology import single_datacenter
from ..workloads.log import round_robin_logs
from .runner import ExperimentResult, MeasurementWindow, measure

__all__ = ["run_fig5", "run_fig5_point", "FIG5_SYSTEMS", "FIG5_CLIENT_THREADS"]

FIG5_SYSTEMS = ("dlog", "bookkeeper")

#: Client thread counts of the x-axis (the paper sweeps 1..200).
FIG5_CLIENT_THREADS = (1, 25, 50, 100, 200)

_APPEND_BYTES = 1024
_DLOG_LOGS = (0, 1)


def run_fig5_point(
    system_name: str,
    client_threads: int,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
) -> ExperimentResult:
    """Run one (system, client threads) point of Figure 5."""
    if system_name not in FIG5_SYSTEMS:
        raise ValueError(f"unknown system {system_name}")
    config = MultiRingConfig(
        storage_mode=StorageMode.SYNC_HDD,
        batching_enabled=True,
        batch_max_bytes=32 * 1024,
        rate_interval=0.005,
        max_rate=2000.0,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(topology=single_datacenter(), config=config, seed=seed)

    if system_name == "dlog":
        service = DLogService(
            system,
            log_ids=list(_DLOG_LOGS),
            acceptors_per_log=3,
            replica_count=2,
            dedicated_disks=True,
            config=config,
        )
        frontends = service.frontend_map()
    else:
        ensemble = SequencerLogService(
            system.env,
            ensemble_size=3,
            batch_bytes=512 * 1024,
            batch_window=0.020,
        )
        frontends = ensemble.frontend_map(_DLOG_LOGS)

    commands = DLogCommands()
    factory = append_request_factory(
        commands,
        log_chooser=round_robin_logs(_DLOG_LOGS),
        append_bytes=_APPEND_BYTES,
    )
    client = ClosedLoopClient(
        system.env,
        "log-client",
        frontends_by_group=frontends,
        request_factory=factory,
        concurrency=client_threads,
        metric_prefix="fig5",
    )

    window = MeasurementWindow(warmup=warmup, duration=duration)
    results = measure(
        system,
        window,
        throughput_metrics=["fig5.throughput"],
        latency_metrics=["fig5.latency"],
    )
    return ExperimentResult(
        name="fig5",
        params={"system": system_name, "threads": client_threads},
        metrics={
            "throughput_ops": results["fig5.throughput.rate"],
            "latency_mean_ms": results["fig5.latency.mean_ms"],
            "latency_p95_ms": results["fig5.latency.p95_ms"],
        },
    )


def run_fig5(
    systems: Sequence[str] = FIG5_SYSTEMS,
    client_threads: Sequence[int] = FIG5_CLIENT_THREADS,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
) -> List[ExperimentResult]:
    """Run the full Figure 5 sweep (both systems × all thread counts)."""
    results = []
    for system_name in systems:
        for threads in client_threads:
            results.append(
                run_fig5_point(system_name, threads, warmup=warmup, duration=duration, seed=seed)
            )
    return results
