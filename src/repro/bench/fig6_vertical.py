"""Figure 6 — vertical scalability of dLog (rings ↔ disks).

The number of rings grows from 1 to 5; each ring is bound to its own disk, so
adding a ring adds storage resources to the same three physical machines.
Learners subscribe to the ``k`` log rings plus one common ring shared by all
learners.  Clients issue 1 KB appends batched into 32 KB packets; acceptors
write asynchronously.  The figure reports aggregate throughput (with the
relative increment per added ring printed on the bars) and the latency CDF of
writes to disk 1 (Section 8.4.1).

Expected shape: aggregate throughput grows close to linearly with the number
of rings (the paper reports 95-106 % relative increments) while latency stays
roughly flat.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.amcast import AtomicMulticast
from ..core.client import ClosedLoopClient
from ..core.config import MultiRingConfig
from ..dlog.client import DLogCommands, append_request_factory
from ..dlog.service import DLogService
from ..sim.disk import StorageMode
from ..sim.topology import single_datacenter
from ..workloads.log import single_log
from .reporting import relative_increments
from .runner import ExperimentResult, MeasurementWindow, measure

__all__ = ["run_fig6", "run_fig6_point", "FIG6_RING_COUNTS"]

#: Number of synchronised logs (rings) on the x-axis.
FIG6_RING_COUNTS = (1, 2, 3, 4, 5)

_APPEND_BYTES = 1024
_COMMON_RING_ID = 99


def run_fig6_point(
    ring_count: int,
    clients_per_ring: int = 16,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
    workers: Optional[int] = None,
    sharded_configuration: str = "independent",
    batching_enabled: bool = True,
) -> ExperimentResult:
    """Run one ring-count point of Figure 6.

    ``workers`` switches to the sharded engine spread over that many cores
    (see :func:`repro.bench.parallel.run_fig6_sharded`).
    ``sharded_configuration`` selects the sharded deployment shape:
    ``"independent"`` gives every shard its own replica (one ring per shard),
    ``"shared"`` runs the figure's *original* shape — shared learner, common
    ring — one ring per shard with a parent-side merge stage.  ``workers=None``
    (default) runs the original deployment on one event loop.
    ``batching_enabled`` controls coordinator value batching; the figure runs
    with it on (the paper's prototype batches to 32 KB), turning it off gives
    the unbatched reference point for the same deployment.
    """
    if ring_count < 1:
        raise ValueError("ring_count must be >= 1")
    if workers is not None:
        from .parallel import run_fig6_sharded

        return run_fig6_sharded(
            ring_count,
            workers=workers,
            clients_per_ring=clients_per_ring,
            warmup=warmup,
            duration=duration,
            seed=seed,
            configuration=sharded_configuration,
            batching_enabled=batching_enabled,
        )
    config = MultiRingConfig(
        storage_mode=StorageMode.ASYNC_HDD,
        batching_enabled=batching_enabled,
        batch_max_bytes=32 * 1024,
        rate_interval=0.005,
        max_rate=4000.0,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(topology=single_datacenter(), config=config, seed=seed)
    log_ids = list(range(ring_count))
    service = DLogService(
        system,
        log_ids=log_ids,
        acceptors_per_log=2,
        replica_count=1,
        common_ring_id=_COMMON_RING_ID,
        dedicated_disks=True,
        config=config,
    )
    commands = DLogCommands()
    clients = []
    for log_id in log_ids:
        factory = append_request_factory(
            commands, log_chooser=single_log(log_id), append_bytes=_APPEND_BYTES
        )
        clients.append(
            ClosedLoopClient(
                system.env,
                f"fig6-client{log_id}",
                frontends_by_group=service.frontend_map(),
                request_factory=factory,
                concurrency=clients_per_ring,
                metric_prefix=f"fig6.ring{log_id}",
            )
        )

    window = MeasurementWindow(warmup=warmup, duration=duration)
    metric_names = [f"fig6.ring{log_id}" for log_id in log_ids]
    results = measure(
        system,
        window,
        throughput_metrics=[f"{m}.throughput" for m in metric_names],
        latency_metrics=[f"{m}.latency" for m in metric_names],
    )

    per_ring = [results[f"{m}.throughput.rate"] for m in metric_names]
    aggregate = sum(per_ring)
    disk1_latency_mean = results[f"{metric_names[0]}.latency.mean_ms"]
    return ExperimentResult(
        name="fig6",
        params={"rings": ring_count},
        metrics={
            "aggregate_ops": aggregate,
            "per_ring_ops": per_ring[0] if per_ring else 0.0,
            "latency_disk1_mean_ms": disk1_latency_mean,
            "latency_disk1_p95_ms": results[f"{metric_names[0]}.latency.p95_ms"],
        },
        series={"latency_cdf_disk1": results[f"{metric_names[0]}.latency.cdf"]},
    )


def run_fig6(
    ring_counts: Sequence[int] = FIG6_RING_COUNTS,
    clients_per_ring: int = 16,
    warmup: float = 1.0,
    duration: float = 8.0,
    seed: int = 42,
) -> List[ExperimentResult]:
    """Run the full Figure 6 sweep and annotate relative increments."""
    results = [
        run_fig6_point(k, clients_per_ring=clients_per_ring, warmup=warmup, duration=duration, seed=seed)
        for k in ring_counts
    ]
    increments = relative_increments([r.metrics["aggregate_ops"] for r in results])
    for result, increment in zip(results, increments):
        result.metrics["relative_increment_pct"] = increment
    return results
