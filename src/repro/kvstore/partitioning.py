"""Key partitioning for MRP-Store.

MRP-Store divides its key space into partitions, each replicated by one
multicast group/ring (Section 6.1).  Applications choose between hash and
range partitioning; clients must know the partitioning scheme to address the
right group, and the scheme is published in the coordination service so every
process can read it (Section 7.2).

* :class:`HashPartitioner` spreads keys uniformly; range scans must be sent to
  every partition.
* :class:`RangePartitioner` assigns contiguous key ranges; range scans only go
  to the partitions that may hold keys of the interval.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence

__all__ = ["Partitioner", "HashPartitioner", "RangePartitioner"]


class Partitioner:
    """Maps keys (strings) to multicast group ids."""

    def group_for_key(self, key: str) -> int:
        """The group responsible for ``key``."""
        raise NotImplementedError

    def groups_for_range(self, start_key: str, end_key: str) -> List[int]:
        """Groups that may hold keys in ``[start_key, end_key]``."""
        raise NotImplementedError

    def groups(self) -> List[int]:
        """All group ids, ascending."""
        raise NotImplementedError

    @property
    def partition_count(self) -> int:
        """Number of partitions."""
        return len(self.groups())


class HashPartitioner(Partitioner):
    """Hash partitioning: uniform spread, scans hit every partition."""

    def __init__(self, group_ids: Sequence[int]) -> None:
        if not group_ids:
            raise ValueError("need at least one group")
        self._groups = sorted(set(group_ids))

    def group_for_key(self, key: str) -> int:
        digest = hashlib.md5(key.encode()).digest()
        index = int.from_bytes(digest[:4], "big") % len(self._groups)
        return self._groups[index]

    def groups_for_range(self, start_key: str, end_key: str) -> List[int]:
        # Hash partitioning cannot narrow a range: every partition may hold
        # keys of the interval (Section 6.1).
        return list(self._groups)

    def groups(self) -> List[int]:
        return list(self._groups)


class RangePartitioner(Partitioner):
    """Range partitioning over sorted split points.

    ``splits`` are the exclusive upper bounds of each partition except the
    last; with groups ``[10, 11, 12]`` and splits ``["g", "p"]``, keys below
    ``"g"`` go to group 10, keys in ``["g", "p")`` to group 11, the rest to
    group 12.
    """

    def __init__(self, group_ids: Sequence[int], splits: Sequence[str]) -> None:
        group_ids = list(group_ids)
        if not group_ids:
            raise ValueError("need at least one group")
        if len(splits) != len(group_ids) - 1:
            raise ValueError("need exactly len(group_ids) - 1 split points")
        if list(splits) != sorted(splits):
            raise ValueError("split points must be sorted")
        self._groups = group_ids
        self._splits = list(splits)

    def group_for_key(self, key: str) -> int:
        index = bisect.bisect_right(self._splits, key)
        return self._groups[index]

    def groups_for_range(self, start_key: str, end_key: str) -> List[int]:
        if end_key < start_key:
            start_key, end_key = end_key, start_key
        first = bisect.bisect_right(self._splits, start_key)
        last = bisect.bisect_right(self._splits, end_key)
        return self._groups[first:last + 1]

    def groups(self) -> List[int]:
        return list(self._groups)
