"""MRP-Store deployment builder.

Wires a complete MRP-Store service on top of an
:class:`~repro.core.amcast.AtomicMulticast` deployment:

* one ring per partition, with proposer/acceptor front-end processes and
  replica (learner) processes;
* optionally a *global ring* that every replica also subscribes to, which is
  the paper's globally ordered configuration; without it partitions run
  "independent rings" (the cheaper configuration of Figure 4);
* the partition map published in the coordination service;
* helpers to build closed-loop clients against the service.

The same builder covers the YCSB comparison (Figure 4, three partitions in
one datacenter), the horizontal-scalability experiment (Figure 7, one
partition per EC2 region plus a global ring) and the recovery experiment
(Figure 8, a single partition with three replicas).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.amcast import AtomicMulticast
from ..core.client import ClosedLoopClient, Command
from ..core.config import MultiRingConfig
from ..core.smr import ProposerFrontend
from ..net.ring import RingMember
from .client import MRPStoreCommands, kv_request_factory
from .partitioning import HashPartitioner, Partitioner
from .replica import MRPStoreReplica

__all__ = ["MRPStoreService"]


class MRPStoreService:
    """A deployed MRP-Store: partitions, rings, replicas and front-ends."""

    def __init__(
        self,
        system: AtomicMulticast,
        partition_groups: Sequence[int],
        partitioner: Optional[Partitioner] = None,
        acceptors_per_partition: int = 3,
        replicas_per_partition: int = 2,
        site_for_partition: Optional[Dict[int, str]] = None,
        global_ring_id: Optional[int] = None,
        global_ring_config: Optional[MultiRingConfig] = None,
        dedicated_global_acceptors: bool = False,
        config: Optional[MultiRingConfig] = None,
    ) -> None:
        if not partition_groups:
            raise ValueError("need at least one partition")
        self.system = system
        self.groups = list(partition_groups)
        self.partitioner = partitioner or HashPartitioner(self.groups)
        self.config = config or system.config
        self.global_ring_id = global_ring_id
        self.commands = MRPStoreCommands(self.partitioner)
        self.frontends: Dict[int, List[ProposerFrontend]] = {}
        self.replicas: Dict[int, List[MRPStoreReplica]] = {}
        #: proposer/acceptor processes owned by the global ring itself (only
        #: populated with ``dedicated_global_acceptors=True``)
        self.global_frontends: List[ProposerFrontend] = []
        self._sites = site_for_partition or {}

        for group in self.groups:
            self._build_partition(group, acceptors_per_partition, replicas_per_partition)
        if global_ring_id is not None:
            self._build_global_ring(
                global_ring_id,
                global_ring_config or self.config,
                dedicated=dedicated_global_acceptors,
            )

        system.coordination.put("kvstore/partition-map", self.partitioner)

    # ----------------------------------------------------------------- build
    def _build_partition(self, group: int, acceptors: int, replicas: int) -> None:
        site = self._sites.get(group, "dc1")
        if not self.system.topology.has_site(site):
            site = self.system.topology.sites()[0].name
        frontends = [
            ProposerFrontend(self.system.env, f"kv{group}-node{i}", site=site, config=self.config)
            for i in range(acceptors)
        ]
        partition_replicas = [
            MRPStoreReplica(self.system.env, f"kv{group}-replica{i}", site=site, config=self.config)
            for i in range(replicas)
        ]
        members: List[RingMember] = [
            RingMember(name=f.name, proposer=True, acceptor=True, learner=False)
            for f in frontends
        ] + [
            RingMember(name=r.name, proposer=False, acceptor=False, learner=True)
            for r in partition_replicas
        ]
        self.system.create_ring(group, members, config=self.config)
        self.frontends[group] = frontends
        self.replicas[group] = partition_replicas

    def _build_global_ring(
        self, ring_id: int, config: MultiRingConfig, dedicated: bool = False
    ) -> None:
        # Ring order matters for latency in a geo-distributed deployment: the
        # circulation should visit each region once, with that region's
        # acceptor and replicas adjacent, instead of criss-crossing the WAN.
        members: List[RingMember] = []
        for group in self.groups:
            if dedicated:
                # The global ring runs on its own proposer/acceptor processes
                # (one per region).  The partition rings and the global ring
                # then share *learners only* — the shape the shard planner
                # (`plan_shards(shared_learners=...)`) can split across
                # workers with a parent-side merge stage.
                site = self._sites.get(group, "dc1")
                if not self.system.topology.has_site(site):
                    site = self.system.topology.sites()[0].name
                frontend = ProposerFrontend(
                    self.system.env, f"kvg-node{group}", site=site, config=config
                )
                self.global_frontends.append(frontend)
            else:
                # One front-end per partition also acts as proposer/acceptor
                # of the global ring, so cross-partition commands can be
                # ordered globally.
                frontend = self.frontends[group][0]
            members.append(RingMember(name=frontend.name, proposer=True, acceptor=True, learner=False))
            for replica in self.replicas[group]:
                members.append(RingMember(name=replica.name, proposer=False, acceptor=False, learner=True))
        self.system.create_ring(ring_id, members, config=config)

    # -------------------------------------------------------------- accessors
    def all_replicas(self) -> List[MRPStoreReplica]:
        """Every replica of every partition."""
        return [r for group in self.groups for r in self.replicas[group]]

    def frontend_map(self, preferred_site: Optional[str] = None) -> Dict[int, str]:
        """Front-end process each group's commands should be submitted to.

        When ``preferred_site`` is given, a front-end on that site is chosen
        if one exists (clients submit to their local region in Figure 7).
        """
        mapping: Dict[int, str] = {}
        for group in self.groups:
            candidates = self.frontends[group]
            chosen = candidates[0]
            if preferred_site is not None:
                for frontend in candidates:
                    if frontend.site == preferred_site:
                        chosen = frontend
                        break
            mapping[group] = chosen.name
        return mapping

    # ---------------------------------------------------------------- clients
    def create_client(
        self,
        name: str,
        workload: Callable[[int], Tuple[str, str, int, Optional[str]]],
        concurrency: int = 1,
        site: str = "dc1",
        metric_prefix: Optional[str] = None,
        max_requests: Optional[int] = None,
    ) -> ClosedLoopClient:
        """Build a closed-loop client driving this store with ``workload``."""
        if not self.system.topology.has_site(site):
            site = self.system.topology.sites()[0].name
        factory = kv_request_factory(self.commands, workload)
        return ClosedLoopClient(
            self.system.env,
            name,
            frontends_by_group=self.frontend_map(preferred_site=site),
            request_factory=factory,
            concurrency=concurrency,
            site=site,
            metric_prefix=metric_prefix or name,
            max_requests=max_requests,
        )

    # ------------------------------------------------------------------ data
    def preload(self, keys_with_sizes: Dict[str, int]) -> None:
        """Load initial data directly into every replica's store.

        The paper initialises the YCSB database with 1 GB of data before the
        measurement; loading through the ordering layer would dominate the
        simulation run time without changing the measured behaviour, so the
        preload bypasses ordering (every replica receives the same entries).
        """
        for group in self.groups:
            for replica in self.replicas[group]:
                for key, size in keys_with_sizes.items():
                    if self.partitioner.group_for_key(key) == group:
                        replica.store.insert(key, None, size)
