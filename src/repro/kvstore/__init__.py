"""MRP-Store: a partitioned, replicated, sequentially consistent key-value store."""

from .client import MRPStoreCommands, kv_request_factory
from .partitioning import HashPartitioner, Partitioner, RangePartitioner
from .replica import MRPStoreReplica
from .service import MRPStoreService
from .store import KeyValueStore, StoredValue

__all__ = [
    "MRPStoreCommands",
    "kv_request_factory",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "MRPStoreReplica",
    "MRPStoreService",
    "KeyValueStore",
    "StoredValue",
]
