"""In-memory key-value state machine of one MRP-Store partition.

Every replica of a partition keeps its database entries in an in-memory
ordered structure (the prototype uses an in-memory tree — Section 7.2).
:class:`KeyValueStore` provides the five operations of Table 1 plus the size
accounting the checkpointer needs.  Values are stored as opaque byte counts
rather than real byte arrays so that multi-gigabyte datasets remain cheap to
simulate while wire/disk accounting stays faithful.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["KeyValueStore", "StoredValue"]


@dataclass(frozen=True)
class StoredValue:
    """A stored entry: its (possibly synthetic) value and its size."""

    value: object
    size_bytes: int


class KeyValueStore:
    """Sorted in-memory map from string keys to values."""

    def __init__(self) -> None:
        self._data: Dict[str, StoredValue] = {}
        self._sorted_keys: List[str] = []
        self._bytes = 0

    # ------------------------------------------------------------ operations
    def read(self, key: str) -> Optional[StoredValue]:
        """Return the entry of ``key`` if it exists (Table 1: ``read(k)``)."""
        return self._data.get(key)

    def scan(self, start_key: str, end_key: str, limit: Optional[int] = None) -> List[Tuple[str, StoredValue]]:
        """Entries with keys in ``[start_key, end_key]`` (Table 1: ``scan``)."""
        if end_key < start_key:
            start_key, end_key = end_key, start_key
        lo = bisect.bisect_left(self._sorted_keys, start_key)
        hi = bisect.bisect_right(self._sorted_keys, end_key)
        keys = self._sorted_keys[lo:hi]
        if limit is not None:
            keys = keys[:limit]
        return [(k, self._data[k]) for k in keys]

    def update(self, key: str, value: object, size_bytes: int) -> bool:
        """Update an existing entry; returns ``False`` when the key is absent."""
        if key not in self._data:
            return False
        self._bytes += size_bytes - self._data[key].size_bytes
        self._data[key] = StoredValue(value=value, size_bytes=size_bytes)
        return True

    def insert(self, key: str, value: object, size_bytes: int) -> bool:
        """Insert a new entry (overwrites like an upsert if it already exists)."""
        if key in self._data:
            self._bytes += size_bytes - self._data[key].size_bytes
        else:
            bisect.insort(self._sorted_keys, key)
            self._bytes += size_bytes
        self._data[key] = StoredValue(value=value, size_bytes=size_bytes)
        return True

    def delete(self, key: str) -> bool:
        """Remove an entry; returns ``False`` when the key is absent."""
        entry = self._data.pop(key, None)
        if entry is None:
            return False
        index = bisect.bisect_left(self._sorted_keys, key)
        if index < len(self._sorted_keys) and self._sorted_keys[index] == key:
            del self._sorted_keys[index]
        self._bytes -= entry.size_bytes
        return True

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> Iterator[str]:
        """Keys in ascending order."""
        return iter(self._sorted_keys)

    @property
    def size_bytes(self) -> int:
        """Total bytes of stored values (used for checkpoint sizing)."""
        return self._bytes

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, StoredValue]:
        """A copy of the whole store, suitable for a checkpoint."""
        return dict(self._data)

    def restore(self, snapshot: Dict[str, StoredValue]) -> None:
        """Replace the store contents with a checkpoint snapshot."""
        self._data = dict(snapshot)
        self._sorted_keys = sorted(self._data)
        self._bytes = sum(v.size_bytes for v in self._data.values())

    def clear(self) -> None:
        """Drop everything (crash of an in-memory replica)."""
        self._data.clear()
        self._sorted_keys.clear()
        self._bytes = 0
