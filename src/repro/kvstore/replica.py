"""MRP-Store replica: the partition state machine.

A replica subscribes to the ring of the partition it replicates (and, in the
globally ordered configuration, to a common global ring as well) and executes
delivered commands against its in-memory :class:`~repro.kvstore.store.KeyValueStore`.
Replication follows the state-machine approach, so the service is sequentially
consistent: atomic multicast prevents cycles in the execution of
multi-partition operations (Section 6.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.client import Command
from ..core.config import MultiRingConfig
from ..core.smr import StateMachineReplica
from ..sim.actor import Environment
from .store import KeyValueStore, StoredValue

__all__ = ["MRPStoreReplica"]


class MRPStoreReplica(StateMachineReplica):
    """A replica of one MRP-Store partition."""

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str = "dc1",
        config: Optional[MultiRingConfig] = None,
        respond_to_clients: bool = True,
    ) -> None:
        super().__init__(env, name, site, config=config, respond_to_clients=respond_to_clients)
        self.store = KeyValueStore()

    # ------------------------------------------------------------ state machine
    def apply_command(self, group_id: int, command: Command) -> Any:
        """Execute one Table 1 operation against the in-memory store."""
        op = command.op
        if op == "read":
            (key,) = command.args[:1]
            entry = self.store.read(key)
            return {"found": entry is not None, "size": entry.size_bytes if entry else 0}
        if op == "scan":
            start_key, end_key, limit = command.args
            entries = self.store.scan(start_key, end_key, limit)
            return {"count": len(entries), "bytes": sum(e.size_bytes for _, e in entries)}
        if op == "update":
            key, value, size = command.args
            return {"updated": self.store.update(key, value, size)}
        if op == "insert":
            key, value, size = command.args
            return {"inserted": self.store.insert(key, value, size)}
        if op == "delete":
            (key,) = command.args[:1]
            return {"deleted": self.store.delete(key)}
        raise ValueError(f"unknown MRP-Store operation: {op}")

    # --------------------------------------------------------------- snapshots
    def snapshot_state(self) -> Tuple[Dict[str, StoredValue], int]:
        return self.store.snapshot(), max(self.store.size_bytes, 1)

    def install_state_snapshot(self, state: Dict[str, StoredValue]) -> None:
        self.store.restore(state)

    def reset_state(self) -> None:
        self.store.clear()

    # --------------------------------------------------------------- inspection
    def entry_count(self) -> int:
        """Number of entries currently stored by this replica."""
        return len(self.store)
