"""Client-side command builders for MRP-Store.

The store is accessed through the five operations of Table 1: ``read``,
``scan``, ``update``, ``insert`` and ``delete``.  Single-key commands are
multicast to the group owning the key; ``scan`` commands are multicast to
every group that may hold keys of the interval — all groups under hash
partitioning, the covering groups under range partitioning (Section 6.1).

:class:`MRPStoreCommands` turns operations into :class:`~repro.core.client.Command`
objects with the correct group routing and size accounting;
:func:`kv_request_factory` adapts a workload generator into the request
factory consumed by :class:`~repro.core.client.ClosedLoopClient`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.client import Command
from .partitioning import Partitioner

__all__ = ["MRPStoreCommands", "kv_request_factory"]

#: Rough per-command framing (operation name, key, lengths) on the wire.
_COMMAND_OVERHEAD = 48


class MRPStoreCommands:
    """Builds routed commands for the MRP-Store operations of Table 1."""

    def __init__(self, partitioner: Partitioner) -> None:
        self.partitioner = partitioner

    # ------------------------------------------------------------ single key
    def read(self, key: str, response_size: int = 1024) -> Command:
        """``read(k)`` — return the value of entry ``k``, if existent."""
        return Command(
            op="read",
            args=(key,),
            group_id=self.partitioner.group_for_key(key),
            size_bytes=_COMMAND_OVERHEAD + len(key),
            response_size=response_size,
        )

    def update(self, key: str, value_size: int, value: object = None) -> Command:
        """``update(k, v)`` — update entry ``k`` with value ``v``, if existent."""
        return Command(
            op="update",
            args=(key, value, value_size),
            group_id=self.partitioner.group_for_key(key),
            size_bytes=_COMMAND_OVERHEAD + len(key) + value_size,
        )

    def insert(self, key: str, value_size: int, value: object = None) -> Command:
        """``insert(k, v)`` — insert tuple ``(k, v)`` in the database."""
        return Command(
            op="insert",
            args=(key, value, value_size),
            group_id=self.partitioner.group_for_key(key),
            size_bytes=_COMMAND_OVERHEAD + len(key) + value_size,
        )

    def delete(self, key: str) -> Command:
        """``delete(k)`` — delete entry ``k`` from the database."""
        return Command(
            op="delete",
            args=(key,),
            group_id=self.partitioner.group_for_key(key),
            size_bytes=_COMMAND_OVERHEAD + len(key),
        )

    # ------------------------------------------------------------------ scan
    def scan(self, start_key: str, end_key: str, limit: Optional[int] = None) -> List[Command]:
        """``scan(k, k')`` — one command per partition that may hold the range.

        The client must wait for at least one response from every partition
        addressed (Section 7.2), which is why this returns a list.
        """
        commands = []
        for group in self.partitioner.groups_for_range(start_key, end_key):
            commands.append(
                Command(
                    op="scan",
                    args=(start_key, end_key, limit),
                    group_id=group,
                    size_bytes=_COMMAND_OVERHEAD + len(start_key) + len(end_key),
                    response_size=4096,
                )
            )
        return commands


#: A workload step: ``(op, key, value_size, end_key)``; ``end_key`` is only
#: meaningful for scans.
WorkloadStep = Tuple[str, str, int, Optional[str]]


def kv_request_factory(
    commands: MRPStoreCommands,
    workload: Callable[[int], WorkloadStep],
) -> Callable[[int], Tuple[Sequence[Command], Sequence[int]]]:
    """Adapt a workload generator into a closed-loop client request factory.

    ``workload(sequence)`` returns the next operation; the factory converts it
    into routed commands and the set of groups whose response the client must
    await (one group for single-key operations, every addressed group for
    scans).
    """

    def factory(sequence: int) -> Tuple[Sequence[Command], Sequence[int]]:
        op, key, value_size, end_key = workload(sequence)
        if op == "read":
            command = commands.read(key)
            return [command], [command.group_id]
        if op == "update":
            command = commands.update(key, value_size)
            return [command], [command.group_id]
        if op == "insert":
            command = commands.insert(key, value_size)
            return [command], [command.group_id]
        if op == "delete":
            command = commands.delete(key)
            return [command], [command.group_id]
        if op == "read-modify-write":
            # YCSB workload F: the client reads then writes the same key; the
            # ordering layer sees both commands.
            read_cmd = commands.read(key)
            write_cmd = commands.update(key, value_size)
            return [read_cmd, write_cmd], [read_cmd.group_id]
        if op == "scan":
            scan_cmds = commands.scan(key, end_key or key)
            return scan_cmds, [c.group_id for c in scan_cmds]
        raise ValueError(f"unknown operation: {op}")

    return factory
