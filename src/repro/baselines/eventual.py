"""Eventually consistent partitioned store (Cassandra stand-in).

Figure 4 compares MRP-Store against Apache Cassandra, which "does not impose
any ordering on requests" and is therefore consistently faster on most YCSB
workloads.  The stand-in reproduces that ordering discipline rather than
Cassandra's implementation details:

* data is hash-partitioned and replicated (replication factor ``R``);
* a client request is served by a single coordinator replica, which applies
  the operation locally, responds immediately, and propagates writes to the
  other replicas *asynchronously* (read-one/write-one, eventual consistency);
* no consensus, no ordering, no cross-partition coordination — the only costs
  are the request/response network hops and per-operation CPU.

Because nothing is ordered, concurrent writes may be applied in different
orders at different replicas; :meth:`EventualStoreReplica.divergence_from`
exposes that, and the tests use it to demonstrate the consistency gap that
motivates the paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.client import Command
from ..kvstore.partitioning import HashPartitioner, Partitioner
from ..kvstore.store import KeyValueStore
from ..net.message import ClientRequest, ClientResponse
from ..sim.actor import Actor, Environment
from ..sim.cpu import CpuCostModel

__all__ = ["EventualStoreReplica", "EventualStoreService", "ReplicateWrite"]


class ReplicateWrite(ClientRequest):
    """Asynchronous replication message between replicas (no acknowledgement)."""


class EventualStoreReplica(Actor):
    """One replica of the eventually consistent store."""

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str = "dc1",
        cpu_model: Optional[CpuCostModel] = None,
    ) -> None:
        super().__init__(env, name, site)
        self.store = KeyValueStore()
        self.peers: List[str] = []
        self._cpu_model = cpu_model or CpuCostModel(per_message=6e-6, per_byte=2e-9)
        self._applied_writes: List[Tuple[str, int]] = []

    # -------------------------------------------------------------- messages
    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, ReplicateWrite):
            self._apply(message.command, record_order=True)
            return
        if not isinstance(message, ClientRequest):
            return
        command: Command = message.command
        self.cpu.charge_message(self._cpu_model, command.size_bytes)
        result = self._apply(command, record_order=True)
        self.send(
            message.client,
            ClientResponse(
                payload_bytes=command.response_size,
                request_id=command.command_id,
                result={"group_id": command.group_id, "value": result},
                replica=self.name,
            ),
        )
        if command.op in ("update", "insert", "delete"):
            for peer in self.peers:
                self.send(peer, ReplicateWrite(payload_bytes=command.size_bytes, command=command))

    def _apply(self, command: Command, record_order: bool = False) -> Any:
        op = command.op
        if op == "read":
            entry = self.store.read(command.args[0])
            return {"found": entry is not None}
        if op == "scan":
            start_key, end_key, limit = command.args
            return {"count": len(self.store.scan(start_key, end_key, limit))}
        if op in ("update", "insert"):
            key, value, size = command.args
            if record_order:
                self._applied_writes.append((key, command.command_id))
            if op == "update":
                self.store.update(key, value, size)
            else:
                self.store.insert(key, value, size)
            return {"ok": True}
        if op == "delete":
            if record_order:
                self._applied_writes.append((command.args[0], command.command_id))
            return {"deleted": self.store.delete(command.args[0])}
        raise ValueError(f"unknown operation: {op}")

    # ------------------------------------------------------------ consistency
    def write_order(self, key: str) -> List[int]:
        """Order in which writes to ``key`` were applied at this replica."""
        return [cid for k, cid in self._applied_writes if k == key]

    def divergence_from(self, other: "EventualStoreReplica") -> int:
        """Number of keys whose write order differs between two replicas."""
        keys = {k for k, _ in self._applied_writes} | {k for k, _ in other._applied_writes}
        return sum(1 for k in keys if self.write_order(k) != other.write_order(k))


class EventualStoreService:
    """A deployed eventually consistent store: partitions × replication factor."""

    def __init__(
        self,
        env: Environment,
        partition_groups: Sequence[int],
        replication_factor: int = 3,
        partitioner: Optional[Partitioner] = None,
        site: str = "dc1",
    ) -> None:
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.env = env
        self.groups = list(partition_groups)
        self.partitioner = partitioner or HashPartitioner(self.groups)
        self.replicas: Dict[int, List[EventualStoreReplica]] = {}
        for group in self.groups:
            replicas = [
                EventualStoreReplica(env, f"ec{group}-replica{i}", site=site)
                for i in range(replication_factor)
            ]
            for replica in replicas:
                replica.peers = [r.name for r in replicas if r.name != replica.name]
            self.replicas[group] = replicas

    def frontend_map(self) -> Dict[int, str]:
        """Coordinator replica each group's requests are sent to."""
        return {group: self.replicas[group][0].name for group in self.groups}

    def all_replicas(self) -> List[EventualStoreReplica]:
        """Every replica of every partition."""
        return [r for group in self.groups for r in self.replicas[group]]

    def preload(self, keys_with_sizes: Dict[str, int]) -> None:
        """Load initial data into every replica of the owning partition."""
        for key, size in keys_with_sizes.items():
            group = self.partitioner.group_for_key(key)
            for replica in self.replicas[group]:
                replica.store.insert(key, None, size)
