"""Single-server store (MySQL stand-in).

Figure 4's third comparator is "a single MySQL instance": strongly consistent
by construction because a single server serialises every request, but unable
to scale horizontally.  The stand-in is one server actor that

* applies every operation against one local :class:`~repro.kvstore.store.KeyValueStore`,
* charges a per-operation service time (parsing/plan/buffer-pool work) plus a
  device write for updates — the knobs that bound a single node's throughput,
* serialises execution: requests queue behind each other, so throughput
  plateaus at ``1 / service_time`` regardless of client count.

The paper observes "MRP-Store compares similarly to MySQL" while only
MRP-Store can scale out with more partitions; the benchmarks reproduce that
relationship rather than MySQL's absolute performance.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.client import Command
from ..kvstore.store import KeyValueStore
from ..net.message import ClientRequest, ClientResponse
from ..sim.actor import Actor, Environment
from ..sim.cpu import CpuCostModel
from ..sim.disk import Disk, SSD_PROFILE, DiskProfile

__all__ = ["SingleServerStore"]


class SingleServerStore(Actor):
    """A strongly consistent, non-scalable single-node store."""

    def __init__(
        self,
        env: Environment,
        name: str = "sqlserver",
        site: str = "dc1",
        read_service_time: float = 0.00006,
        write_service_time: float = 0.00012,
        scan_service_time: float = 0.00030,
        disk_profile: DiskProfile = SSD_PROFILE,
        durable_writes: bool = False,
    ) -> None:
        super().__init__(env, name, site)
        self.store = KeyValueStore()
        self._read_time = read_service_time
        self._write_time = write_service_time
        self._scan_time = scan_service_time
        self._durable_writes = durable_writes
        self._disk = Disk(env, disk_profile, name=f"{name}.disk")
        self._busy_until = 0.0
        self._cpu_model = CpuCostModel(per_message=5e-6, per_byte=1.5e-9)
        self._operations = 0

    # -------------------------------------------------------------- messages
    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ClientRequest):
            return
        command: Command = message.command
        self.cpu.charge_message(self._cpu_model, command.size_bytes)
        service_time = self._service_time(command)
        start = max(self.now, self._busy_until)
        finish = start + service_time
        self._busy_until = finish
        self.env.simulator.schedule(finish - self.now, self._complete, command)

    def _service_time(self, command: Command) -> float:
        if command.op == "read":
            return self._read_time
        if command.op == "scan":
            return self._scan_time
        return self._write_time

    def _complete(self, command: Command) -> None:
        result = self._apply(command)
        if command.op in ("update", "insert", "delete") and self._durable_writes:
            self._disk.write(command.size_bytes)
        self._operations += 1
        if command.client:
            self.send(
                command.client,
                ClientResponse(
                    payload_bytes=command.response_size,
                    request_id=command.command_id,
                    result={"group_id": command.group_id, "value": result},
                    replica=self.name,
                ),
            )

    def _apply(self, command: Command) -> Any:
        op = command.op
        if op == "read":
            entry = self.store.read(command.args[0])
            return {"found": entry is not None}
        if op == "scan":
            start_key, end_key, limit = command.args
            return {"count": len(self.store.scan(start_key, end_key, limit))}
        if op == "update":
            key, value, size = command.args
            return {"updated": self.store.update(key, value, size)}
        if op == "insert":
            key, value, size = command.args
            return {"inserted": self.store.insert(key, value, size)}
        if op == "delete":
            return {"deleted": self.store.delete(command.args[0])}
        raise ValueError(f"unknown operation: {op}")

    # ------------------------------------------------------------ inspection
    @property
    def operations(self) -> int:
        """Operations executed so far."""
        return self._operations

    def preload(self, keys_with_sizes: Dict[str, int]) -> None:
        """Load initial data directly into the store."""
        for key, size in keys_with_sizes.items():
            self.store.insert(key, None, size)
