"""Comparators used by the paper's evaluation: eventual store, single server, sequencer log."""

from .eventual import EventualStoreReplica, EventualStoreService, ReplicateWrite
from .seqlog import (
    BatchAck,
    BatchWrite,
    EnsembleStorageNode,
    SequencerLogLeader,
    SequencerLogService,
)
from .singleserver import SingleServerStore

__all__ = [
    "EventualStoreReplica",
    "EventualStoreService",
    "ReplicateWrite",
    "BatchAck",
    "BatchWrite",
    "EnsembleStorageNode",
    "SequencerLogLeader",
    "SequencerLogService",
    "SingleServerStore",
]
