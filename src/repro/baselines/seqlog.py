"""Sequencer-based ensemble log (Apache Bookkeeper stand-in).

Figure 5 compares dLog against Apache Bookkeeper, a distributed log with
strong consistency whose latency is dominated by "its aggressive batching
mechanism, which attempts to maximize disk use by writing in large chunks".
The stand-in captures the two structural properties that matter for the
comparison:

* appends are funnelled through a *leader/sequencer* that assigns positions —
  a central component that caps scalability;
* the leader accumulates appends into large batches and only acknowledges
  them after the batch has been written synchronously by a quorum of the
  ensemble's storage nodes, so at low or moderate load every append pays most
  of the batch window plus a large synchronous write.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.client import Command
from ..net.message import ClientRequest, ClientResponse, Message
from ..sim.actor import Actor, Environment
from ..sim.cpu import CpuCostModel
from ..sim.disk import Disk, DiskProfile, HDD_PROFILE

__all__ = ["SequencerLogLeader", "EnsembleStorageNode", "SequencerLogService", "BatchWrite", "BatchAck"]


class BatchWrite(Message):
    """A batch of appends shipped by the leader to a storage node."""

    def __init__(self, batch_id: int, entry_count: int, payload_bytes: int) -> None:
        super().__init__(payload_bytes=payload_bytes)
        self.batch_id = batch_id
        self.entry_count = entry_count


class BatchAck(Message):
    """Storage-node acknowledgement after its synchronous write completed."""

    def __init__(self, batch_id: int) -> None:
        super().__init__(payload_bytes=16)
        self.batch_id = batch_id


class EnsembleStorageNode(Actor):
    """A storage node writing batches synchronously to its local device."""

    def __init__(
        self,
        env: Environment,
        name: str,
        site: str = "dc1",
        disk_profile: DiskProfile = HDD_PROFILE,
    ) -> None:
        super().__init__(env, name, site)
        self.disk = Disk(env, disk_profile, name=f"{name}.disk")
        self._cpu_model = CpuCostModel()

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, BatchWrite):
            return
        self.cpu.charge_message(self._cpu_model, message.payload_bytes)
        batch_id = message.batch_id
        self.disk.write(
            message.payload_bytes,
            on_complete=lambda: self.send(sender, BatchAck(batch_id)),
        )


class SequencerLogLeader(Actor):
    """The sequencer: assigns positions, batches, replicates to the ensemble."""

    def __init__(
        self,
        env: Environment,
        name: str,
        storage_nodes: List[str],
        site: str = "dc1",
        batch_bytes: int = 512 * 1024,
        batch_window: float = 0.020,
        ack_quorum: Optional[int] = None,
        append_service_time: float = 0.0012,
    ) -> None:
        super().__init__(env, name, site)
        if not storage_nodes:
            raise ValueError("the ensemble needs at least one storage node")
        self.storage_nodes = list(storage_nodes)
        self.batch_bytes = batch_bytes
        self.batch_window = batch_window
        self.ack_quorum = ack_quorum or (len(self.storage_nodes) // 2 + 1)
        #: Per-append sequencer work (offset allocation, ledger metadata,
        #: journal bookkeeping).  The central sequencer serialises this work,
        #: which is what caps the comparator's throughput in Figure 5.
        self.append_service_time = append_service_time
        self._sequencer_busy_until = 0.0
        self._next_position = 0
        self._next_batch_id = 0
        self._pending: List[Command] = []
        self._pending_bytes = 0
        self._flush_timer = None
        self._inflight: Dict[int, Dict[str, Any]] = {}
        self._cpu_model = CpuCostModel()
        self._appends = 0

    # -------------------------------------------------------------- messages
    def on_start(self) -> None:
        self._flush_timer = self.set_periodic_timer(self.batch_window, self._flush)

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, BatchAck):
            self._handle_ack(message)
            return
        if not isinstance(message, ClientRequest):
            return
        command: Command = message.command
        self.cpu.charge_message(self._cpu_model, command.size_bytes)
        # The sequencer serialises per-append work before the append can join
        # a batch; queueing behind it is the central-component bottleneck.
        start = max(self.now, self._sequencer_busy_until)
        self._sequencer_busy_until = start + self.append_service_time
        self.env.simulator.schedule(
            self._sequencer_busy_until - self.now, self._enqueue_append, command
        )

    def _enqueue_append(self, command: Command) -> None:
        command.args = (self._next_position,) + tuple(command.args)
        self._next_position += 1
        self._pending.append(command)
        self._pending_bytes += command.size_bytes
        if self._pending_bytes >= self.batch_bytes:
            self._flush()

    # ---------------------------------------------------------------- batches
    def _flush(self) -> None:
        if not self._pending:
            return
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        commands, size = self._pending, self._pending_bytes
        self._pending, self._pending_bytes = [], 0
        self._inflight[batch_id] = {"commands": commands, "acks": 0}
        for node in self.storage_nodes:
            self.send(node, BatchWrite(batch_id, len(commands), size))

    def _handle_ack(self, ack: BatchAck) -> None:
        entry = self._inflight.get(ack.batch_id)
        if entry is None:
            return
        entry["acks"] += 1
        if entry["acks"] < self.ack_quorum:
            return
        del self._inflight[ack.batch_id]
        for command in entry["commands"]:
            self._appends += 1
            if command.client:
                self.send(
                    command.client,
                    ClientResponse(
                        payload_bytes=command.response_size,
                        request_id=command.command_id,
                        result={"group_id": command.group_id, "position": command.args[0]},
                        replica=self.name,
                    ),
                )

    @property
    def appends_acknowledged(self) -> int:
        """Appends acknowledged to clients so far."""
        return self._appends


class SequencerLogService:
    """A deployed sequencer log: one leader plus an ensemble of storage nodes."""

    def __init__(
        self,
        env: Environment,
        ensemble_size: int = 3,
        site: str = "dc1",
        batch_bytes: int = 512 * 1024,
        batch_window: float = 0.020,
        disk_profile: DiskProfile = HDD_PROFILE,
    ) -> None:
        self.env = env
        self.storage_nodes = [
            EnsembleStorageNode(env, f"bk-storage{i}", site=site, disk_profile=disk_profile)
            for i in range(ensemble_size)
        ]
        self.leader = SequencerLogLeader(
            env,
            "bk-leader",
            storage_nodes=[n.name for n in self.storage_nodes],
            site=site,
            batch_bytes=batch_bytes,
            batch_window=batch_window,
        )

    def frontend_map(self, group_ids) -> Dict[int, str]:
        """Every group's appends go through the single sequencer."""
        return {g: self.leader.name for g in group_ids}
