"""Per-ring protocol engine hosted by a process.

A process that participates in a ring — whatever combination of proposer,
acceptor and learner roles it plays — owns one :class:`RingNode` per ring.
The node implements the Ring Paxos message flow of Section 4:

1. a proposed value is forwarded hop by hop along the ring until it reaches
   the coordinator;
2. the coordinator assigns it a consensus instance and emits a combined
   Phase 2A/2B message containing its own vote;
3. every acceptor on the way adds its vote (logging it to stable storage
   first, synchronously or asynchronously depending on the configured storage
   mode) and forwards the message to its successor; non-acceptors just
   forward;
4. the *last* acceptor in the ring (walking from the coordinator) observes a
   majority of votes and replaces the Phase 2 message with a Decision, which
   keeps circulating so every process receives it; the decision carries the
   value only on the stretch of the ring that has not seen the Phase 2
   message yet, so the value crosses each link exactly once;
5. learners deliver the value once they have both the value and its decision,
   in instance order.

The node additionally implements rate leveling (skip instances), the
acceptor-side retransmission service and the coordinator-driven log trimming
used by recovery (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.ring import RingOverlay
from ..paxos.acceptor import AcceptorState
from ..paxos.messages import (
    Decision,
    Phase1A,
    Phase1B,
    Phase2Ring,
    ProposalValue,
    RetransmitReply,
    RetransmitRequest,
    TrimCommand,
    TrimQuery,
    TrimReport,
    ValueForward,
)

#: ``RetransmitRequest.reason`` used by the learner-side gap repair; replies
#: with this reason are consumed by the ring node, not the recovery manager.
GAP_REPAIR = "gap-repair"
from ..sim.actor import Actor
from ..sim.cpu import CpuCostModel
from ..sim.disk import Disk, StorageMode
from .coordinator import CoordinatorState, InstanceBatchPolicy
from .learner import RingLearner

__all__ = ["RingNode", "RingNodeConfig"]


@dataclass
class RingNodeConfig:
    """Per-ring configuration shared by all members of the ring.

    Attributes
    ----------
    storage_mode:
        Acceptor stable-storage mode (Figure 3's five modes).
    cpu_model:
        CPU cost charged per message/byte handled.
    batch_policy:
        Coordinator instance batching.
    rate_interval:
        The Δ interval of rate leveling; ``None`` disables skip proposals.
    rate_policy:
        Object exposing ``expected_per_interval`` (instances per Δ), usually a
        :class:`repro.multiring.ratelevel.RateLeveler`.
    trim_interval:
        Period of the coordinator's trim protocol; ``None`` disables trimming.
    trim_quorum:
        Number of replica answers the coordinator waits for before trimming
        (the paper's quorum ``Q_T``); ``None`` means a majority of learners.
    gap_repair_interval:
        Period of the learner's gap-repair probe; ``None`` (the default)
        disables it.  When enabled, a learner whose in-order delivery has not
        advanced for a full interval asks an acceptor to retransmit decided
        instances it is missing — this is how learners catch up after a
        network partition dropped circulating decisions (the chaos harness
        switches it on for every fault scenario).
    learner_batch_drain:
        Run the learner's in-order drain in contiguous-run batches (one
        decided-map probe pass per run instead of per instance).  Delivery
        order is identical either way; the flag exists so the default path
        stays byte-for-byte the code the frozen differentials were anchored
        on.  Enabled by the batching configurations.
    """

    storage_mode: StorageMode = StorageMode.IN_MEMORY
    cpu_model: CpuCostModel = None  # type: ignore[assignment]
    batch_policy: InstanceBatchPolicy = None  # type: ignore[assignment]
    rate_interval: Optional[float] = None
    rate_policy: Optional[Any] = None
    trim_interval: Optional[float] = None
    trim_quorum: Optional[int] = None
    gap_repair_interval: Optional[float] = None
    learner_batch_drain: bool = False

    def __post_init__(self) -> None:
        if self.cpu_model is None:
            self.cpu_model = CpuCostModel()
        if self.batch_policy is None:
            self.batch_policy = InstanceBatchPolicy()


class RingNode:
    """Protocol state of one process within one ring."""

    def __init__(
        self,
        host: Actor,
        overlay: RingOverlay,
        config: Optional[RingNodeConfig] = None,
        on_deliver: Optional[Callable[[int, int, ProposalValue], None]] = None,
        disk: Optional[Disk] = None,
    ) -> None:
        if host.name not in overlay:
            raise ValueError(f"{host.name} is not a member of ring {overlay.ring_id}")
        self.host = host
        self.overlay = overlay
        self.config = config or RingNodeConfig()
        self._cpu_model = self.config.cpu_model
        member = overlay.member(host.name)
        self.is_proposer = member.proposer
        self.is_acceptor = member.acceptor
        self.is_learner = member.learner
        self._refresh_ring_geometry()

        self.acceptor: Optional[AcceptorState] = None
        if self.is_acceptor:
            self.acceptor = AcceptorState(
                host.env,
                host.name,
                overlay.ring_id,
                storage_mode=self.config.storage_mode,
                disk=disk,
            )

        self.learner: Optional[RingLearner] = None
        if self.is_learner:
            self.learner = RingLearner(
                overlay.ring_id,
                on_deliver or (lambda *a: None),
                batch_drain=self.config.learner_batch_drain,
            )

        self.coordinator: Optional[CoordinatorState] = None
        self._trim_reports: Dict[str, int] = {}
        if self.is_coordinator:
            self.coordinator = CoordinatorState(
                overlay.ring_id,
                batch_policy=self.config.batch_policy,
                rate_policy=self.config.rate_policy,
            )

        self._started = False
        self._proposal_seq = 0
        #: gap repair: in-order position at the previous probe, and a rotation
        #: counter so successive probes try different acceptors (one of them
        #: may have crashed and lost its in-memory decision log)
        self._gap_repair_last_emit = -1
        self._gap_repair_rotation = 0
        #: takeover repair: highest-ballot accepted value per instance
        #: reported in Phase 1B while this node establishes itself as the
        #: ring's new coordinator
        self._takeover_accepted: Dict[int, Tuple[int, ProposalValue]] = {}
        self._takeover_repair_pending = False
        #: hole repair (coordinator side): lowest instance this coordinator
        #: does not know to be decided, and its value at the previous probe
        self._hole_cursor = 0
        self._hole_cursor_prev = -1
        #: bound once: handed to the acceptor as the durability callback on
        #: every vote (avoids a bound-method allocation per message)
        self._after_own_vote_callback = self._after_own_vote
        #: coordinator batch assembly: whether a delay-trigger flush is armed,
        #: and its kernel handle (size-or-timeout batching, see
        #: :meth:`_flush_assignments`)
        self._batch_timer_armed = False
        self._batch_flush_handle = None
        #: per-class dispatch table: ``type(message) -> bound handler``.  Built
        #: once per node from :data:`HANDLERS`; message subclasses and unknown
        #: types are resolved lazily (and cached) by :meth:`_resolve_handler`.
        self._handlers: Dict[type, Optional[Callable[[str, Any], bool]]] = {
            cls: getattr(self, name) for cls, name in self.HANDLERS.items()
        }

    def _refresh_ring_geometry(self) -> None:
        """Cache the per-message ring lookups; rerun when the overlay changes.

        ``successor``, ``majority`` and ``last_acceptor`` are consulted on
        every hop of every circulating message, so they are resolved once per
        overlay installation instead of per message.
        """
        overlay = self.overlay
        name = self.host.name
        self._successor = overlay.successor(name)
        self._majority = overlay.majority()
        self._last_acceptor = overlay.last_acceptor_for(overlay.coordinator)
        self._is_coordinator = overlay.coordinator == name

    # ------------------------------------------------------------ properties
    @property
    def ring_id(self) -> int:
        """Identifier of the ring this node belongs to."""
        return self.overlay.ring_id

    @property
    def is_coordinator(self) -> bool:
        """Whether this process currently coordinates the ring."""
        return self._is_coordinator

    @property
    def last_acceptor(self) -> str:
        """The acceptor that converts Phase 2 messages into decisions."""
        return self._last_acceptor

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Run startup duties (Phase 1 pre-execution, periodic timers)."""
        if self._started:
            return
        self._started = True
        if self.is_coordinator:
            self._start_phase1()
            if self.config.rate_interval is not None and self.config.rate_policy is not None:
                self.host.set_periodic_timer(self.config.rate_interval, self._rate_level_tick)
            if self.config.trim_interval is not None:
                self.host.set_periodic_timer(self.config.trim_interval, self._trim_tick)
            if self.config.gap_repair_interval is not None:
                self.host.set_periodic_timer(self.config.gap_repair_interval, self._hole_repair_tick)
        if self.is_learner and self.config.gap_repair_interval is not None:
            self._gap_repair_last_emit = -1
            self.host.set_periodic_timer(self.config.gap_repair_interval, self._gap_repair_tick)

    def _start_phase1(self) -> None:
        assert self.coordinator is not None
        lo, hi = self.coordinator.phase1_window()
        for acceptor in self.overlay.acceptors:
            if acceptor == self.host.name:
                # The coordinator promises to itself immediately.
                self.coordinator.record_promise(acceptor, self.overlay.majority())
                continue
            self.host.send(
                acceptor,
                Phase1A(
                    ring_id=self.ring_id,
                    ballot=self.coordinator.ballot,
                    from_instance=lo,
                    to_instance=hi,
                ),
            )
        # A takeover in a ring whose promise quorum is just this process (all
        # other acceptors crashed) completes Phase 1 without any Phase 1B.
        if self.coordinator.phase1_ready and self._takeover_repair_pending:
            self._takeover_repair()

    # --------------------------------------------------------------- propose
    def propose(self, payload: Any, size_bytes: int, created_at: Optional[float] = None) -> ProposalValue:
        """Multicast ``payload`` to this ring (atomically broadcast within it).

        The value travels along the ring towards the coordinator; the caller
        learns the outcome through its learner's delivery callback.
        """
        if not self.is_proposer:
            raise RuntimeError(f"{self.host.name} is not a proposer in ring {self.ring_id}")
        self._proposal_seq += 1
        value = ProposalValue(
            payload=payload,
            size_bytes=size_bytes,
            proposer=self.host.name,
            proposal_id=self._proposal_seq,
            created_at=self.host.now if created_at is None else created_at,
        )
        if self.is_coordinator:
            self._coordinator_enqueue(value)
        else:
            self._forward_towards_coordinator(ValueForward(ring_id=self.ring_id, value=value))
        return value

    def _forward_towards_coordinator(self, message: ValueForward) -> None:
        self.host.send(self._successor, message)

    # ------------------------------------------------------------- dispatch
    #: Message class → handler method name.  Every handler has the uniform
    #: signature ``(sender, message) -> bool`` (``False`` means "not consumed
    #: here — fall through to the service layer").  The table replaces the old
    #: hottest-first isinstance chain: one dict lookup per message instead of
    #: up to ten type checks (the exhaustiveness differential in
    #: ``tests/ringpaxos/test_dispatch_table.py`` pins the two to each other).
    HANDLERS: Dict[type, str] = {
        Phase2Ring: "_handle_phase2",
        Decision: "_handle_decision",
        ValueForward: "_handle_value_forward",
        Phase1A: "_handle_phase1a",
        Phase1B: "_handle_phase1b",
        RetransmitRequest: "_handle_retransmit_request",
        RetransmitReply: "_handle_retransmit_reply",
        TrimQuery: "_handle_trim_query",
        TrimReport: "_handle_trim_report",
        TrimCommand: "_handle_trim_command",
    }

    def handle(self, sender: str, message: Any) -> bool:
        """Process a ring message; returns ``False`` if the type is unknown."""
        # CPU accounting, inlined (one call per ring message): forwarding and
        # voting both cost per-message and per-byte CPU on the hosting actor.
        self.host.cpu.charge_message(self._cpu_model, getattr(message, "size_bytes", 0))
        try:
            handler = self._handlers[message.__class__]
        except KeyError:
            handler = self._resolve_handler(message.__class__)
        if handler is None:
            return False
        return handler(sender, message)

    def _resolve_handler(self, cls: type) -> Optional[Callable[[str, Any], bool]]:
        """Resolve (and cache) the handler for a subclass or unknown type."""
        handler = None
        for base in cls.__mro__:
            name = self.HANDLERS.get(base)
            if name is not None:
                handler = getattr(self, name)
                break
        self._handlers[cls] = handler
        return handler

    def _handle_trim_query(self, sender: str, message: TrimQuery) -> bool:
        return False  # answered by the replica layer, not the ring node

    # ------------------------------------------------------- value forwarding
    def _handle_value_forward(self, sender: str, message: ValueForward) -> bool:
        if self.is_coordinator:
            assert message.value is not None
            self._coordinator_enqueue(message.value)
        else:
            self._forward_towards_coordinator(message)
        return True

    def _coordinator_enqueue(self, value: ProposalValue) -> None:
        assert self.coordinator is not None
        self.coordinator.enqueue(value)
        self._flush_assignments()

    def _flush_assignments(self, force: Optional[bool] = None) -> None:
        """Assign instances to pending values and emit their Phase 2 messages.

        Size-or-timeout batch assembly: with batching enabled and a positive
        ``max_delay``, only full batches are emitted immediately; a trailing
        partial batch stays pending and a one-shot flush timer drains it
        ``max_delay`` later (so batches actually form under open-loop load
        instead of every enqueue flushing a single-value instance).  Without
        batching — the default — every call drains everything, exactly as
        before.
        """
        assert self.coordinator is not None
        policy = self.config.batch_policy
        if force is None:
            force = not (policy.enabled and policy.max_delay > 0.0)
        for instance, value in self.coordinator.next_assignments(force=force):
            self._emit_phase2(instance, value, span=1)
        if (
            not force
            and not self._batch_timer_armed
            and self.coordinator.has_pending()
            and self.coordinator.phase1_ready
        ):
            self._batch_timer_armed = True
            self._batch_flush_handle = self.host.env.simulator.call_later(
                policy.max_delay, self._batch_flush_tick
            )

    def _batch_flush_tick(self) -> None:
        """Delay trigger: drain whatever the size trigger left pending."""
        self._batch_timer_armed = False
        self._batch_flush_handle = None
        if not self.host.alive or not self._started:
            return
        if self.coordinator is None or not self.coordinator.phase1_ready:
            return
        for instance, value in self.coordinator.next_assignments(force=True):
            self._emit_phase2(instance, value, span=1)

    def _emit_phase2(self, instance: int, value: ProposalValue, span: int) -> None:
        """Vote locally (the coordinator is an acceptor) then send Phase 2."""
        assert self.coordinator is not None
        message = Phase2Ring(
            ring_id=self.ring_id,
            instance=instance,
            ballot=self.coordinator.ballot,
            value=value,
            votes=(self.host.name,),
            origin=self.host.name,
            span=span,
        )
        if self.is_learner and self.learner is not None:
            for i in range(instance, instance + span):
                self.learner.observe_value(i, value)
        assert self.acceptor is not None

        # The bound method + args tuple replaces a per-vote closure: this runs
        # once per instance on the coordinator and once per hop on acceptors.
        if span == 1:
            self.acceptor.receive_phase2(
                instance,
                message.ballot,
                value,
                on_durable=self._after_own_vote_callback,
                on_durable_args=(message,),
            )
        else:
            self.acceptor.receive_phase2_range(
                instance,
                message.last_instance,
                message.ballot,
                value,
                on_durable=self._after_own_vote_callback,
                on_durable_args=(message,),
            )

    def _after_own_vote(self, message: Phase2Ring) -> None:
        if self.host.name == self._last_acceptor and len(message.votes) >= self._majority:
            self._decide(message)
        else:
            self._forward_phase2(message)

    # ----------------------------------------------------------------- phase 1
    def _handle_phase1a(self, sender: str, message: Phase1A) -> bool:
        if not self.is_acceptor or self.acceptor is None:
            return True
        granted = self.acceptor.receive_phase1a(
            message.from_instance, message.to_instance, message.ballot
        )
        if not granted:
            return True
        self.host.send(
            sender,
            Phase1B(
                ring_id=self.ring_id,
                ballot=message.ballot,
                from_instance=message.from_instance,
                to_instance=message.to_instance,
                acceptor=self.host.name,
                accepted=self.acceptor.accepted_in_range(
                    message.from_instance, message.to_instance
                ),
            ),
        )
        return True

    def _handle_phase1b(self, sender: str, message: Phase1B) -> bool:
        if not self.is_coordinator or self.coordinator is None:
            return True
        # A new coordinator must not reuse instance numbers that already hold
        # accepted values from a previous coordinator's reign.
        for instance, ballot, value in message.accepted:
            self.coordinator.ledger.observe_instance(instance)
            if self._takeover_repair_pending and value is not None:
                best = self._takeover_accepted.get(instance)
                if best is None or ballot > best[0]:
                    self._takeover_accepted[instance] = (ballot, value)
        ready = self.coordinator.record_promise(message.acceptor, self.overlay.majority())
        if ready and self._takeover_repair_pending:
            self._takeover_repair()
        if ready and self.coordinator.has_pending():
            self._flush_assignments()
        return True

    def _takeover_repair(self) -> None:
        """Finish instances the failed coordinator left behind (classic Paxos).

        Once a takeover's Phase 1 has a promise quorum, every instance below
        the highest observed one that is not known to be decided falls in one
        of two cases: some quorum acceptor reported an accepted value — that
        value may have been chosen, so it is re-proposed under the new ballot —
        or nobody accepted anything, in which case no value can have been
        chosen (any decision quorum intersects the promise quorum) and the
        hole is filled with a skip so learners can advance past it.
        """
        self._takeover_repair_pending = False
        assert self.coordinator is not None and self.acceptor is not None
        start = self.acceptor.trimmed_up_to + 1
        next_instance = self.coordinator.ledger.next_instance
        # This process's own votes compete with the Phase 1B reports on equal
        # terms: the value chosen for an instance is the highest-ballot
        # accepted value across the whole promise quorum (classic Paxos) —
        # preferring a reported value regardless of ballot could resurrect a
        # stale proposal over a decided newer one.
        best = dict(self._takeover_accepted)
        if next_instance > start:
            for instance, ballot, value in self.acceptor.accepted_in_range(
                start, next_instance - 1
            ):
                entry = best.get(instance)
                if value is not None and (entry is None or ballot > entry[0]):
                    best[instance] = (ballot, value)
        for instance in range(start, next_instance):
            if self.acceptor.is_decided(instance):
                continue
            entry = best.get(instance)
            value = entry[1] if entry is not None else CoordinatorState.skip_value()
            self._emit_phase2(instance, value, span=1)
        self._takeover_accepted.clear()

    # ----------------------------------------------------------------- phase 2
    def _handle_phase2(self, sender: str, message: Phase2Ring) -> bool:
        if self.is_learner and self.learner is not None and message.value is not None:
            if message.span == 1:
                # Almost every message covers one instance; skip the range.
                self.learner.observe_value(message.instance, message.value)
            else:
                for instance in range(message.instance, message.last_instance + 1):
                    self.learner.observe_value(instance, message.value)

        if self.is_acceptor and self.acceptor is not None and message.value is not None:
            # Append the vote in place and keep circulating the *same* object:
            # the previous hop dropped its reference when it forwarded, so
            # nothing aliases the message (the network never duplicates a
            # delivery — faults only drop).  This used to clone one message
            # per hop per instance.
            message.add_vote(self.host.name)
            if message.span == 1:
                self.acceptor.receive_phase2(
                    message.instance,
                    message.ballot,
                    message.value,
                    on_durable=self._after_own_vote_callback,
                    on_durable_args=(message,),
                )
            else:
                self.acceptor.receive_phase2_range(
                    message.instance,
                    message.last_instance,
                    message.ballot,
                    message.value,
                    on_durable=self._after_own_vote_callback,
                    on_durable_args=(message,),
                )
        else:
            self._forward_phase2(message)
        return True

    def _forward_phase2(self, message: Phase2Ring) -> None:
        successor = self._successor
        if successor != message.origin:
            self.host.send(successor, message)

    # --------------------------------------------------------------- decision
    def _decide(self, message: Phase2Ring) -> None:
        """Replace a majority-carrying Phase 2 message by a decision."""
        decision = Decision(
            ring_id=self.ring_id,
            instance=message.instance,
            value=message.value,
            origin=self.host.name,
            carries_value=True,
            span=message.span,
        )
        self._learn_decision(decision)
        self._forward_decision(decision)

    def _handle_decision(self, sender: str, message: Decision) -> bool:
        self._learn_decision(message)
        self._forward_decision(message)
        return True

    def _learn_decision(self, message: Decision) -> None:
        acceptor = self.acceptor if self.is_acceptor else None
        learner = self.learner if self.is_learner else None
        if message.span == 1:
            # Nearly every decision covers one instance; skip the range loop.
            instance = message.instance
            value = message.value
            if value is None and self.acceptor is not None:
                value = self.acceptor.accepted_value(instance)
            if acceptor is not None and value is not None:
                acceptor.record_decision(instance, value)
            if learner is not None:
                learner.observe_decision(instance, value)
            if self._is_coordinator and self.coordinator is not None:
                self.coordinator.ledger.observe_instance(instance)
            return
        last_instance = message.last_instance
        for instance in range(message.instance, last_instance + 1):
            value = message.value
            if value is None and self.acceptor is not None:
                value = self.acceptor.accepted_value(instance)
            if acceptor is not None and value is not None:
                acceptor.record_decision(instance, value)
            if learner is not None:
                learner.observe_decision(instance, value)
        if self._is_coordinator and self.coordinator is not None:
            self.coordinator.ledger.observe_instance(last_instance)

    def _forward_decision(self, message: Decision) -> None:
        successor = self._successor
        if successor == message.origin:
            return
        if self._is_coordinator and message.carries_value:
            # Past the coordinator the value has already circulated with the
            # Phase 2 message; stop paying for it on the wire.  Stripped in
            # place: every hop before the coordinator already handled the
            # message, so no live reference sees the old wire size.
            message.strip_value()
        self.host.send(successor, message)

    # ----------------------------------------------------------- rate leveling
    def _rate_level_tick(self) -> None:
        if not self.is_coordinator or self.coordinator is None:
            return
        if not self.coordinator.phase1_ready:
            return
        skips = self.coordinator.skips_for_interval()
        if skips <= 0:
            return
        first, last = self.coordinator.allocate_skips(skips)
        self._emit_phase2(first, CoordinatorState.skip_value(), span=last - first + 1)

    # ------------------------------------------------------------------- trim
    def _trim_tick(self) -> None:
        if not self.is_coordinator:
            return
        self._trim_reports.clear()
        for learner in self.overlay.learners:
            if learner == self.host.name:
                continue
            self.host.send(learner, TrimQuery(ring_id=self.ring_id))

    def _handle_trim_report(self, sender: str, message: TrimReport) -> bool:
        if not self.is_coordinator:
            return True
        self._trim_reports[message.replica] = message.safe_instance
        quorum = self.config.trim_quorum or (len(self.overlay.learners) // 2 + 1)
        if len(self._trim_reports) < quorum:
            return True
        safe = min(self._trim_reports.values())
        if safe < 0:
            return True
        for acceptor in self.overlay.acceptors:
            if acceptor == self.host.name and self.acceptor is not None:
                self.acceptor.trim(safe)
                continue
            self.host.send(acceptor, TrimCommand(ring_id=self.ring_id, up_to_instance=safe))
        self._trim_reports.clear()
        return True

    def _handle_trim_command(self, sender: str, message: TrimCommand) -> bool:
        if self.is_acceptor and self.acceptor is not None:
            self.acceptor.trim(message.up_to_instance)
        return True

    # ---------------------------------------------------------- retransmission
    def _handle_retransmit_request(self, sender: str, message: RetransmitRequest) -> bool:
        if not self.is_acceptor or self.acceptor is None:
            return True
        if message.to_instance < 0:
            decided = self.acceptor.decided_from(message.from_instance)
        else:
            decided = self.acceptor.decided_between(message.from_instance, message.to_instance)
        self.host.send(
            message.requester,
            RetransmitReply(
                ring_id=self.ring_id,
                decided=decided,
                trimmed_up_to=self.acceptor.trimmed_up_to,
                reason=message.reason,
            ),
        )
        return True

    # ------------------------------------------------------------- gap repair
    def _gap_repair_tick(self) -> None:
        """Ask an acceptor for missing decisions when delivery has stalled.

        A learner separated from the ring by a partition misses the decisions
        that circulated meanwhile; once healed, nothing would ever close the
        gap (decisions cross each link exactly once).  The probe notices that
        the in-order delivery position has not moved for a whole interval and
        requests everything decided from that position onwards.  When the
        learner is merely caught up the request comes back empty.
        """
        if self.learner is None:
            return
        if getattr(self.host, "_recovering", False):
            # The replica's RecoveryManager owns retransmission traffic while
            # the full recovery protocol runs.
            return
        next_to_emit = self.learner.next_to_emit
        stalled = next_to_emit == self._gap_repair_last_emit
        self._gap_repair_last_emit = next_to_emit
        if not stalled:
            return
        env = self.host.env
        acceptors = [
            a
            for a in self.overlay.acceptors
            if a != self.host.name and (not env.has_actor(a) or env.actor(a).alive)
        ]
        if not acceptors:
            return
        target = acceptors[self._gap_repair_rotation % len(acceptors)]
        self._gap_repair_rotation += 1
        self.host.send(
            target,
            RetransmitRequest(
                ring_id=self.ring_id,
                from_instance=next_to_emit,
                to_instance=-1,
                requester=self.host.name,
                reason=GAP_REPAIR,
            ),
        )

    def _hole_repair_tick(self) -> None:
        """Re-propose instances whose Phase 2 / Decision was lost in flight.

        A partition can swallow a circulating Phase 2 message after the
        coordinator voted for it: the instance stays allocated but never
        decided — a permanent hole no learner can get past, because decisions
        for it do not exist anywhere.  The coordinator is the one process
        that knows such holes exist (its own vote is recorded, the decision
        is not), so it re-emits the instance with the value its acceptor
        accepted — the value it originally proposed — under its own ballot.
        Only runs when the lowest undecided instance has not moved for a full
        interval *and* later instances are decided (a genuine hole, not the
        in-flight tail).
        """
        if not self.is_coordinator or self.coordinator is None or self.acceptor is None:
            return
        if not self.coordinator.phase1_ready:
            return
        acceptor = self.acceptor
        cursor = max(self._hole_cursor, acceptor.trimmed_up_to + 1)
        while acceptor.is_decided(cursor):
            cursor += 1
        stalled = cursor == self._hole_cursor_prev
        self._hole_cursor_prev = cursor
        self._hole_cursor = cursor
        if not stalled:
            return
        highest = acceptor.highest_decided
        if highest <= cursor:
            return
        repaired = 0
        for instance in range(cursor, highest):
            if acceptor.is_decided(instance):
                continue
            value = acceptor.accepted_value(instance)
            if value is None:
                # This coordinator never voted for the instance (state lost
                # in a crash): nothing can have been decided with its ballot,
                # so a skip closes the hole safely.
                value = CoordinatorState.skip_value()
            self._emit_phase2(instance, value, span=1)
            repaired += 1
            if repaired >= 512:
                break  # bound the burst; the next tick continues

    def _handle_retransmit_reply(self, sender: str, message: RetransmitReply) -> bool:
        """Feed gap-repair retransmissions to the learner.

        Recovery-reason replies are left to the hosting replica's
        RecoveryManager (the dispatcher falls through to the service layer
        when this returns ``False``).
        """
        if message.reason != GAP_REPAIR:
            return False
        if self.learner is not None:
            for instance, value in message.decided:
                if value is not None:
                    self.learner.inject_decided(instance, value)
        return True

    # ------------------------------------------------------------------ crash
    def crash(self) -> None:
        """Drop volatile state on a process crash (the WAL keeps its records)."""
        self._started = False
        if self._batch_flush_handle is not None:
            self._batch_flush_handle.cancel()
            self._batch_flush_handle = None
        self._batch_timer_armed = False
        if self.acceptor is not None:
            self.acceptor.crash()

    def recover(self) -> None:
        """Rebuild acceptor state from the durable log after a restart."""
        if self.acceptor is not None:
            self.acceptor.recover_from_log()

    # -------------------------------------------------------- reconfiguration
    def update_overlay(self, overlay: RingOverlay) -> None:
        """Install a new ring configuration (member removed/added or new coordinator).

        If this process becomes the coordinator it creates fresh coordinator
        state with a ballot derived from the configuration epoch (so it is
        higher than any ballot of previous coordinators), pre-executes
        Phase 1 again and starts its periodic duties.
        """
        if self.host.name not in overlay:
            raise ValueError("cannot install an overlay that excludes this process")
        was_coordinator = self.is_coordinator
        self.overlay = overlay
        self._refresh_ring_geometry()
        if self.is_coordinator and (not was_coordinator or self.coordinator is None):
            self._become_coordinator()

    def _become_coordinator(self) -> None:
        assert self.is_acceptor, "only an acceptor can coordinate a ring"
        self.coordinator = CoordinatorState(
            self.ring_id,
            ballot=self.overlay.epoch + 1,
            batch_policy=self.config.batch_policy,
            rate_policy=self.config.rate_policy,
        )
        # Taking over mid-stream: repair unfinished instances of the previous
        # coordinator once the new Phase 1 reaches a quorum.
        self._takeover_accepted.clear()
        self._takeover_repair_pending = True
        # Do not reuse instances this process already knows to be in use.
        if self.learner is not None:
            self.coordinator.ledger.observe_instance(self.learner.highest_decided)
        if self.acceptor is not None:
            self.coordinator.ledger.observe_instance(self.acceptor.highest_decided)
            self.coordinator.ledger.observe_instance(self.acceptor.log.highest_instance())
        if self._started:
            self._start_phase1()
            if self.config.rate_interval is not None and self.config.rate_policy is not None:
                self.host.set_periodic_timer(self.config.rate_interval, self._rate_level_tick)
            if self.config.trim_interval is not None:
                self.host.set_periodic_timer(self.config.trim_interval, self._trim_tick)
            if self.config.gap_repair_interval is not None:
                self._hole_cursor_prev = -1
                self.host.set_periodic_timer(self.config.gap_repair_interval, self._hole_repair_tick)
