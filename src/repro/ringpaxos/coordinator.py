"""Coordinator logic for one ring.

The coordinator is the acceptor elected to drive consensus for its ring.  It

* pre-executes Phase 1 for a large window of instances at startup, so that in
  the steady state a value only needs the Phase 2 trip around the ring;
* assigns instance numbers to incoming values and emits the combined
  Phase 2A/2B message with its own vote;
* optionally groups several small values into one instance (instance
  batching), mirroring the packet grouping of the Java implementation;
* performs rate leveling for Multi-Ring Paxos: every ``Δ`` interval it
  proposes enough skip instances to keep the ring advancing at the maximum
  expected rate ``λ`` (Section 4), so that learners merging several rings are
  not held back by a slow ring;
* drives log trimming (Section 5.2): it periodically queries replicas for
  their safe instance, waits for a trim quorum and instructs acceptors to
  trim.

The coordinator state is deliberately independent of the actor/network layer:
the hosting :class:`~repro.ringpaxos.node.RingNode` supplies callbacks for
sending messages, which keeps this class unit-testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..paxos.instance import InstanceLedger
from ..paxos.messages import SKIP, ProposalValue
from ..sim.network import register_wire_type

__all__ = ["CoordinatorState", "InstanceBatchPolicy", "PackedValues"]


@dataclass
class PackedValues:
    """Payload wrapper used when several values share one consensus instance.

    Every constituent :class:`ProposalValue` is kept intact — its
    ``(proposer, proposal_id, created_at)`` metadata survives packing, so
    client ack matching and per-command latency accounting keep working after
    the merge layer unpacks the instance (see :mod:`repro.core.packing` for
    the shared recursive unpacker).
    """

    values: List[ProposalValue] = field(default_factory=list)

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def proposal_ids(self) -> Tuple[Tuple[str, int], ...]:
        """``(proposer, proposal_id)`` of every packed value, in pack order."""
        return tuple((v.proposer, v.proposal_id) for v in self.values)

    @property
    def created_ats(self) -> Tuple[float, ...]:
        """Submission time of every packed value, in pack order."""
        return tuple(v.created_at for v in self.values)


# Packed instances travel inside cross-shard decision streams: ship them in
# positional tuple form (see :func:`repro.sim.network.register_wire_type`).
register_wire_type(PackedValues)


@dataclass
class InstanceBatchPolicy:
    """Controls grouping of several proposed values into a single instance.

    Attributes
    ----------
    enabled:
        When ``False`` (the Figure 3 baseline configuration) every value gets
        its own consensus instance.
    max_bytes:
        Maximum accumulated payload per instance (the prototype uses 32 KB
        packets).
    max_delay:
        How long the coordinator may hold a value back waiting for more
        values to share its instance (size-or-timeout assembly: a batch is
        emitted as soon as it fills ``max_bytes``, and whatever is pending
        when the delay expires is emitted regardless).  ``0`` disables the
        hold — every flush drains the queue immediately, so only values that
        happen to be co-queued share an instance.
    """

    enabled: bool = False
    max_bytes: int = 32 * 1024
    max_delay: float = 0.0005


class CoordinatorState:
    """Per-ring coordinator bookkeeping.

    Parameters
    ----------
    ring_id:
        Ring this coordinator drives.
    ballot:
        The ballot it owns after Phase 1 pre-execution.
    batch_policy:
        Instance batching configuration.
    rate_policy:
        Optional rate-leveling policy object exposing ``expected_per_interval``
        (instances per Δ) — wired in by the Multi-Ring layer.
    """

    #: Number of instances for which Phase 1 is pre-executed in one go.
    PHASE1_WINDOW = 1 << 20

    def __init__(
        self,
        ring_id: int,
        ballot: int = 1,
        batch_policy: Optional[InstanceBatchPolicy] = None,
        rate_policy: Optional[Any] = None,
    ) -> None:
        self.ring_id = ring_id
        self.ballot = ballot
        self.batch_policy = batch_policy or InstanceBatchPolicy()
        self.rate_policy = rate_policy
        self.ledger = InstanceLedger()
        self.phase1_ready = False
        self._phase1_promises: Dict[str, bool] = {}
        self._pending: Deque[ProposalValue] = deque()
        self._proposed_in_interval = 0
        self._total_proposed = 0
        self._total_skipped = 0

    # ----------------------------------------------------------------- phase 1
    def phase1_window(self) -> Tuple[int, int]:
        """The instance range to pre-execute Phase 1 for."""
        return (0, self.PHASE1_WINDOW)

    def record_promise(self, acceptor: str, quorum: int) -> bool:
        """Register a Phase 1B promise; returns ``True`` when quorum is reached."""
        self._phase1_promises[acceptor] = True
        if not self.phase1_ready and len(self._phase1_promises) >= quorum:
            self.phase1_ready = True
        return self.phase1_ready

    # ---------------------------------------------------------------- values
    def enqueue(self, value: ProposalValue) -> None:
        """Queue a value for ordering (buffered until Phase 1 completes)."""
        self._pending.append(value)

    def has_pending(self) -> bool:
        """Whether values are waiting to be assigned instances."""
        return bool(self._pending)

    def next_assignments(self, force: bool = True) -> List[Tuple[int, ProposalValue]]:
        """Assign instances to pending values according to the batch policy.

        Returns ``(instance, value)`` pairs ready to be sent in Phase 2
        messages.  Without batching each pending value gets its own instance;
        with batching, values are packed into instances of up to
        ``max_bytes`` payload.  A packed instance keeps every constituent
        value intact inside :class:`PackedValues` — all ``(proposer,
        proposal_id, created_at)`` triples survive (the wrapping value's own
        header fields mirror the first constituent, but consumers must use
        :attr:`PackedValues.proposal_ids` / the shared unpacker, never the
        wrapper's header, to match acks).

        ``force=False`` implements the hold side of size-or-timeout assembly:
        only batches that already fill ``max_bytes`` are emitted, and a
        trailing partial batch stays queued for the caller's delay timer to
        flush later (with ``force=True``).  Without batching ``force`` is
        ignored — every value drains immediately.
        """
        if not self.phase1_ready:
            return []
        assignments: List[Tuple[int, ProposalValue]] = []
        if not self.batch_policy.enabled:
            while self._pending:
                value = self._pending.popleft()
                assignments.append((self.ledger.allocate(), value))
        else:
            max_bytes = self.batch_policy.max_bytes
            while self._pending:
                group: List[ProposalValue] = []
                size = 0
                while self._pending and (
                    size + self._pending[0].size_bytes <= max_bytes or not group
                ):
                    value = self._pending.popleft()
                    group.append(value)
                    size += value.size_bytes
                if not force and not self._pending and size < max_bytes:
                    # Partial trailing batch: hold it for the delay trigger.
                    self._pending.extendleft(reversed(group))
                    break
                if len(group) == 1:
                    packed = group[0]
                else:
                    packed = ProposalValue(
                        payload=PackedValues(values=list(group)),
                        size_bytes=size,
                        proposer=group[0].proposer,
                        proposal_id=group[0].proposal_id,
                        created_at=min(v.created_at for v in group),
                    )
                assignments.append((self.ledger.allocate(), packed))
        self._proposed_in_interval += len(assignments)
        self._total_proposed += len(assignments)
        return assignments

    # ----------------------------------------------------------- rate leveling
    def skips_for_interval(self) -> int:
        """How many instances to skip at the end of the current Δ interval.

        Implements the paper's rate-leveling rule: compare the number of
        instances proposed during the interval against the maximum expected
        rate and top up with skips.  Resets the interval counter.
        """
        if self.rate_policy is None:
            self._proposed_in_interval = 0
            return 0
        expected = self.rate_policy.expected_per_interval
        skips = max(0, int(round(expected)) - self._proposed_in_interval)
        self._proposed_in_interval = 0
        return skips

    def allocate_skips(self, count: int) -> Tuple[int, int]:
        """Allocate ``count`` consecutive instances for a skip range.

        Returns the inclusive ``(first, last)`` instance range.
        """
        if count <= 0:
            raise ValueError("skip count must be positive")
        first = self.ledger.allocate()
        last = first
        for _ in range(count - 1):
            last = self.ledger.allocate()
        self._total_skipped += count
        return first, last

    @staticmethod
    def skip_value() -> ProposalValue:
        """The null value proposed in skipped instances."""
        return ProposalValue(payload=SKIP, size_bytes=0, proposer="", proposal_id=0)

    # ------------------------------------------------------------- statistics
    @property
    def total_proposed(self) -> int:
        """Total non-skip instances this coordinator proposed."""
        return self._total_proposed

    @property
    def total_skipped(self) -> int:
        """Total skip instances this coordinator proposed."""
        return self._total_skipped

    @property
    def pending_count(self) -> int:
        """Values queued but not yet assigned to an instance."""
        return len(self._pending)
