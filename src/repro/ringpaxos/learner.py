"""Per-ring learner: in-order delivery of decided instances.

A learner in Ring Paxos observes values (from the Phase 2 message circulating
along the ring, or carried by a decision) and decisions, and must hand
instances to the application strictly in instance order with no gaps.  The
:class:`RingLearner` below tracks both and emits ``(instance, value)`` pairs
through a callback as soon as they become contiguously deliverable.

In Multi-Ring Paxos the callback feeds the deterministic merger
(:mod:`repro.multiring.merge`) instead of the application directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..paxos.instance import InstanceLedger
from ..paxos.messages import SKIP, ProposalValue

__all__ = ["RingLearner"]

DeliveryCallback = Callable[[int, int, ProposalValue], None]


class RingLearner:
    """Orders decided instances of one ring and emits them contiguously.

    Parameters
    ----------
    ring_id:
        Ring this learner listens to.
    on_ordered:
        Callback ``(ring_id, instance, value)`` invoked in strict instance
        order (skips included — the merger needs them to advance its
        round-robin counters).
    batch_drain:
        Drain contiguously decided runs in one pass: the run is probed out
        of the decided map first, then emitted in a tight loop (one map
        lookup per instance instead of one per loop head plus the per-item
        bookkeeping re-reads).  Emission order and all per-item state
        transitions are identical to the default drain; the flag keeps the
        default path byte-for-byte what the frozen differentials anchored.
    """

    def __init__(
        self, ring_id: int, on_ordered: DeliveryCallback, batch_drain: bool = False
    ) -> None:
        self.ring_id = ring_id
        self._on_ordered = on_ordered
        self._batch_drain = batch_drain
        self._ledger = InstanceLedger()
        self._pending_values: Dict[int, ProposalValue] = {}
        self._undeliv: set = set()
        self._next_to_emit = 0
        self._emitted = 0
        self._skipped = 0

    # --------------------------------------------------------------- inputs
    def observe_value(self, instance: int, value: ProposalValue) -> None:
        """Remember the value proposed in ``instance`` (from the Phase 2 message)."""
        self._pending_values[instance] = value
        self._ledger.observe_instance(instance)

    def observe_decision(self, instance: int, value: Optional[ProposalValue]) -> None:
        """Record that ``instance`` was decided.

        ``value`` may be ``None`` when the decision message did not carry the
        value (the learner then uses the value it observed earlier); a learner
        that knows neither cannot advance and waits for retransmission.
        """
        resolved = value if value is not None else self._pending_values.get(instance)
        if resolved is None:
            # Keep the decision pending until the value shows up.
            self._ledger.observe_instance(instance)
            self._undeliv.add(instance)
            return
        if self._ledger.decide(instance, resolved):
            self._drain()

    def supply_missing_value(self, instance: int, value: ProposalValue) -> None:
        """Provide the value of an instance whose decision arrived first."""
        self._pending_values[instance] = value
        if instance in self._undeliv:
            self._undeliv.discard(instance)
            if self._ledger.decide(instance, value):
                self._drain()

    # -------------------------------------------------------------- recovery
    def fast_forward(self, to_instance: int) -> None:
        """Skip delivery of everything up to ``to_instance`` (checkpoint install).

        Used by a recovering replica after installing a checkpoint whose
        identifier covers instances up to ``to_instance`` for this ring.
        """
        if to_instance + 1 > self._next_to_emit:
            self._next_to_emit = to_instance + 1
            self._ledger.observe_instance(to_instance)
        self._ledger.forget_up_to(to_instance)
        stale = [i for i in self._pending_values if i <= to_instance]
        for i in stale:
            del self._pending_values[i]
        self._undeliv = {i for i in self._undeliv if i > to_instance}

    def inject_decided(self, instance: int, value: ProposalValue) -> None:
        """Feed a decision obtained through retransmission (recovery path)."""
        self.observe_value(instance, value)
        self.observe_decision(instance, value)

    # --------------------------------------------------------------- output
    def _drain(self) -> None:
        # Inner loop of every delivery: read the ledger's decision map
        # directly and hoist the loop-invariant lookups.  State attributes are
        # still updated per iteration so reentrant callbacks (checkpointing
        # reads ``next_to_emit``) observe the same intermediate states as
        # before.
        decided = self._ledger.decided_map
        pending = self._pending_values
        on_ordered = self._on_ordered
        ring_id = self.ring_id
        if self._batch_drain:
            # Batch drain: collect the whole contiguously decided run, then
            # emit it without re-probing the decided map per iteration.  The
            # outer loop catches instances decided while the run was being
            # emitted (e.g. by a reentrant retransmission injection).
            get = decided.get
            while True:
                nxt = self._next_to_emit
                run: List[ProposalValue] = []
                value = get(nxt)
                while value is not None:
                    run.append(value)
                    value = get(nxt + len(run))
                if not run:
                    return
                for value in run:
                    self._emitted += 1
                    if value.payload is SKIP:
                        self._skipped += 1
                    on_ordered(ring_id, nxt, value)
                    pending.pop(nxt, None)
                    nxt += 1
                    self._next_to_emit = nxt
            return
        while True:
            nxt = self._next_to_emit
            value = decided.get(nxt)
            if value is None:
                return
            self._emitted += 1
            if value.payload is SKIP:
                self._skipped += 1
            on_ordered(ring_id, nxt, value)
            pending.pop(nxt, None)
            self._next_to_emit = nxt + 1

    # ------------------------------------------------------------ inspection
    @property
    def next_to_emit(self) -> int:
        """The next instance number that will be emitted."""
        return self._next_to_emit

    @property
    def emitted_count(self) -> int:
        """Total instances emitted (including skips)."""
        return self._emitted

    @property
    def skipped_count(self) -> int:
        """How many of the emitted instances were skips."""
        return self._skipped

    @property
    def highest_decided(self) -> int:
        """Highest instance this learner knows to be decided."""
        return max(
            self._ledger.highest_contiguous_decided,
            max(self._undeliv, default=-1),
        )

    def gaps(self) -> List[int]:
        """Instances below the highest decided one still missing a decision."""
        return self._ledger.undecided_below(self._ledger.highest_contiguous_decided + 1)
