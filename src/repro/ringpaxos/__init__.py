"""Ring Paxos: atomic broadcast over a TCP ring overlay (one multicast group)."""

from .coordinator import CoordinatorState, InstanceBatchPolicy, PackedValues
from .learner import RingLearner
from .node import RingNode, RingNodeConfig

__all__ = [
    "CoordinatorState",
    "InstanceBatchPolicy",
    "PackedValues",
    "RingLearner",
    "RingNode",
    "RingNodeConfig",
]
