"""Reproduction of "Building global and scalable systems with Atomic Multicast".

The package implements Multi-Ring Paxos (an atomic multicast protocol built
from coordinated Ring Paxos instances), its recovery protocol, and the two
services the paper builds on top of it -- the MRP-Store key-value store and
the dLog distributed log -- together with the baselines, workloads and
benchmark harness needed to regenerate every figure of the paper's
evaluation on a discrete-event simulation substrate.

Quickstart
----------
>>> from repro.core import AtomicMulticast
>>> from repro.multiring import MultiRingProcess
>>> system = AtomicMulticast(seed=7)
>>> nodes = [MultiRingProcess(system.env, f"n{i}") for i in range(3)]
>>> ring = system.create_ring(0, [(n.name, "pal") for n in nodes])
>>> system.start()
>>> got = []
>>> nodes[2].on_deliver = lambda group, instance, value: got.append(value.payload)
>>> _ = nodes[0].multicast(0, payload=b"v", size_bytes=512)
>>> _ = system.run(until=1.0)
>>> got
[b'v']
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
