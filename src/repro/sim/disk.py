"""Storage-device models.

Figure 3 of the paper separates five acceptor storage modes: in-memory,
asynchronous disk writes and synchronous disk writes, the latter two on both
magnetic disks (7200-RPM HDD) and solid-state disks.  The entire separation is
driven by where the stable-storage write sits relative to the consensus
critical path:

* **synchronous** — the acceptor must wait for the write to reach the device
  before forwarding its Phase 2B vote, so the per-operation latency includes a
  device access and throughput is capped by the device;
* **asynchronous** — writes are buffered and flushed in the background, so
  the critical path only pays a small buffering cost;
* **in-memory** — no device at all.

The :class:`Disk` model charges a per-operation access latency plus a
size-dependent transfer time, serialises concurrent requests (a device has a
single write head / channel), and supports batched flushes, which is how the
Berkeley-DB-like WAL amortises synchronous writes when batching is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from .actor import Environment

__all__ = [
    "DiskProfile",
    "Disk",
    "StorageMode",
    "HDD_PROFILE",
    "SSD_PROFILE",
    "HDD_RANDOM_PROFILE",
]


class StorageMode(Enum):
    """Acceptor storage modes evaluated in Figure 3."""

    IN_MEMORY = "memory"
    ASYNC_HDD = "async-hdd"
    ASYNC_SSD = "async-ssd"
    SYNC_HDD = "sync-hdd"
    SYNC_SSD = "sync-ssd"

    @property
    def synchronous(self) -> bool:
        """Whether the mode forces writes onto the critical path."""
        return self in (StorageMode.SYNC_HDD, StorageMode.SYNC_SSD)

    @property
    def persistent(self) -> bool:
        """Whether the mode writes to a device at all."""
        return self is not StorageMode.IN_MEMORY

    @property
    def ssd(self) -> bool:
        """Whether the backing device is a solid-state disk."""
        return self in (StorageMode.ASYNC_SSD, StorageMode.SYNC_SSD)


@dataclass(frozen=True)
class DiskProfile:
    """Latency/bandwidth parameters of a storage device.

    Attributes
    ----------
    access_latency:
        Fixed cost of one write request reaching the medium (seek + rotation
        for HDDs, flash program latency for SSDs), in seconds.
    bandwidth_bps:
        Sequential write bandwidth in bytes per second.
    name:
        Human-readable label used in reports.
    """

    name: str
    access_latency: float
    bandwidth_bps: float

    def write_time(self, size_bytes: int) -> float:
        """Time for one synchronous write of ``size_bytes``."""
        return self.access_latency + size_bytes / self.bandwidth_bps


#: A 7200-RPM magnetic disk used as a log device: writes are sequential
#: appends, so the per-write cost is dominated by the request overhead and a
#: fraction of a rotation (~1.5 ms), not a full random-access seek.
HDD_PROFILE = DiskProfile(name="hdd", access_latency=0.0015, bandwidth_bps=120e6)

#: A SATA SSD of the paper's era: ~80 µs access, ~350 MB/s sequential writes.
SSD_PROFILE = DiskProfile(name="ssd", access_latency=0.00008, bandwidth_bps=350e6)

#: A magnetic disk doing random accesses (checkpoint reads, cold lookups).
HDD_RANDOM_PROFILE = DiskProfile(name="hdd-random", access_latency=0.008, bandwidth_bps=120e6)


def profile_for_mode(mode: StorageMode) -> Optional[DiskProfile]:
    """Device profile backing a storage mode (``None`` for in-memory)."""
    if not mode.persistent:
        return None
    return SSD_PROFILE if mode.ssd else HDD_PROFILE


class Disk:
    """A single storage device shared by the writes of one process.

    Writes are serialised: a write cannot start before the previous one
    finished, which is what saturates synchronous modes at high request rates.
    Completion is signalled through a callback scheduled on the simulator.
    """

    def __init__(self, env: Environment, profile: DiskProfile, name: str = "disk") -> None:
        self.env = env
        self.profile = profile
        self.name = name
        self._free_at = 0.0
        self._bytes_written = 0
        self._writes = 0
        #: fault-injection hook: every write takes ``_slowdown`` times longer
        #: while a latency spike is active (1.0 = healthy device)
        self._slowdown = 1.0
        env.register_disk(self)

    # ------------------------------------------------------------- accounting
    @property
    def bytes_written(self) -> int:
        """Total bytes written to the device."""
        return self._bytes_written

    @property
    def write_count(self) -> int:
        """Total number of write requests issued."""
        return self._writes

    # -------------------------------------------------------- fault injection
    @property
    def slowdown(self) -> float:
        """Current latency-spike multiplier (1.0 when the device is healthy)."""
        return self._slowdown

    def set_slowdown(self, factor: float) -> None:
        """Make every subsequent write take ``factor`` times longer.

        Models a degraded device (background GC on an SSD, a remapped sector
        storm on an HDD, a saturated controller).  Only writes issued while
        the spike is active are affected; the chaos harness uses this for its
        disk-latency-spike fault.
        """
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self._slowdown = factor

    def clear_slowdown(self) -> None:
        """End a latency spike (back to the profile's nominal timings)."""
        self._slowdown = 1.0

    def utilization(self, start: float, end: float) -> float:
        """Rough device busy fraction over an interval (based on queue state)."""
        if end <= start:
            return 0.0
        busy_until = min(self._free_at, end)
        return max(0.0, busy_until - start) / (end - start)

    # ------------------------------------------------------------------ write
    def write(
        self,
        size_bytes: int,
        on_complete: Optional[Callable[..., None]] = None,
        on_complete_args: tuple = (),
    ) -> float:
        """Issue a write of ``size_bytes``.

        Returns the simulation time at which the write will be durable and, if
        provided, schedules ``on_complete(*on_complete_args)`` at that time.
        The caller decides whether to wait (synchronous mode) or continue
        (asynchronous mode).  Passing the callback's arguments separately lets
        hot paths reuse one bound method instead of building a closure per
        write.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        now = self.env.simulator.now
        start = max(now, self._free_at)
        duration = self.profile.write_time(size_bytes)
        if self._slowdown != 1.0:
            duration *= self._slowdown
        finish = start + duration
        self._free_at = finish
        self._bytes_written += size_bytes
        self._writes += 1
        if on_complete is not None:
            self.env.simulator._post(finish - now, on_complete, on_complete_args)
        return finish

    def queue_delay(self) -> float:
        """Seconds a write issued now would wait before starting."""
        return max(0.0, self._free_at - self.env.simulator.now)
