"""Measurement instruments for experiments.

The benchmark harness reproduces the paper's plots from four instrument
types:

* :class:`Counter` — monotonically increasing counts (operations, bytes).
* :class:`LatencyRecorder` — per-request latency samples with mean,
  percentiles and CDFs (Figures 3, 5, 6, 7).
* :class:`ThroughputTracker` — operations (or bits) per second over a
  measurement window or per fixed-size time bucket (Figure 8's timeline).
* :class:`MetricRegistry` — a namespace of the above keyed by string, owned
  by the :class:`~repro.sim.actor.Environment`.
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "LatencyRecorder",
    "ThroughputTracker",
    "MetricRegistry",
    "summarize_latencies",
]


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase")
        self._value += amount

    def reset(self) -> None:
        """Reset the counter to zero (start of a measurement window)."""
        self._value = 0.0


class LatencyRecorder:
    """Collects latency samples in seconds and summarises them."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, latency_seconds: float) -> None:
        """Record one sample."""
        if latency_seconds < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(latency_seconds)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of the raw samples (seconds)."""
        return list(self._samples)

    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> float:
        """Latency at percentile ``pct`` (0-100), nearest-rank method."""
        if not self._samples:
            return 0.0
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be within [0, 100]")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return ``points`` (latency, cumulative fraction) pairs for plotting."""
        if not self._samples:
            return []
        ordered = sorted(self._samples)
        n = len(ordered)
        result = []
        for i in range(1, points + 1):
            idx = max(0, min(n - 1, round(i / points * n) - 1))
            result.append((ordered[idx], (idx + 1) / n))
        return result

    def fraction_below(self, threshold_seconds: float) -> float:
        """Fraction of samples strictly below ``threshold_seconds``."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        return bisect.bisect_left(ordered, threshold_seconds) / len(ordered)

    def mean_ms(self) -> float:
        """Mean latency in milliseconds."""
        return self.mean() * 1_000.0

    def reset(self) -> None:
        """Drop every recorded sample."""
        self._samples.clear()


class ThroughputTracker:
    """Tracks completed units over time.

    ``record(units)`` is called when work completes; totals per fixed-size
    bucket provide the throughput timeline of Figure 8, and window totals
    provide the steady-state throughput of the other figures.
    """

    def __init__(self, name: str, clock: Callable[[], float], bucket_seconds: float = 1.0) -> None:
        self.name = name
        self._clock = clock
        self._bucket = bucket_seconds
        self._events: List[Tuple[float, float]] = []

    def record(self, units: float = 1.0) -> None:
        """Record completion of ``units`` units of work at the current time."""
        self._events.append((self._clock(), units))

    @property
    def total(self) -> float:
        """Total units recorded."""
        return sum(u for _, u in self._events)

    def total_between(self, start: float, end: float) -> float:
        """Units recorded in the half-open interval ``[start, end)``."""
        return sum(u for t, u in self._events if start <= t < end)

    def rate(self, start: float, end: float) -> float:
        """Average rate (units/second) over ``[start, end)``."""
        if end <= start:
            return 0.0
        return self.total_between(start, end) / (end - start)

    def timeline(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Per-bucket rates between ``start`` and ``end``.

        Returns a list of ``(bucket_start_time, units_per_second)`` covering
        the interval, including empty buckets — exactly the series plotted in
        Figure 8.
        """
        if end <= start:
            return []
        buckets: Dict[int, float] = defaultdict(float)
        for t, u in self._events:
            if start <= t < end:
                buckets[int((t - start) // self._bucket)] += u
        n_buckets = int(math.ceil((end - start) / self._bucket))
        return [
            (start + i * self._bucket, buckets.get(i, 0.0) / self._bucket)
            for i in range(n_buckets)
        ]

    def reset(self) -> None:
        """Drop all recorded events."""
        self._events.clear()


class MetricRegistry:
    """Named registry of counters, latency recorders and throughput trackers."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._throughputs: Dict[str, ThroughputTracker] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def latency(self, name: str) -> LatencyRecorder:
        """Get or create the latency recorder ``name``."""
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(name)
        return self._latencies[name]

    def throughput(self, name: str, bucket_seconds: float = 1.0) -> ThroughputTracker:
        """Get or create the throughput tracker ``name``."""
        if name not in self._throughputs:
            self._throughputs[name] = ThroughputTracker(name, self._clock, bucket_seconds)
        return self._throughputs[name]

    def reset_all(self) -> None:
        """Reset every registered instrument (start of measurement window)."""
        for c in self._counters.values():
            c.reset()
        for l in self._latencies.values():
            l.reset()
        for t in self._throughputs.values():
            t.reset()

    def names(self) -> List[str]:
        """All registered instrument names."""
        return sorted(
            set(self._counters) | set(self._latencies) | set(self._throughputs)
        )


def summarize_latencies(samples: Sequence[float]) -> Dict[str, float]:
    """Convenience summary (mean/p50/p95/p99 in milliseconds) of raw samples."""
    recorder = LatencyRecorder("summary")
    for s in samples:
        recorder.record(s)
    return {
        "count": recorder.count,
        "mean_ms": recorder.mean() * 1e3,
        "p50_ms": recorder.percentile(50) * 1e3,
        "p95_ms": recorder.percentile(95) * 1e3,
        "p99_ms": recorder.percentile(99) * 1e3,
    }
