"""Measurement instruments for experiments.

The benchmark harness reproduces the paper's plots from four instrument
types:

* :class:`Counter` — monotonically increasing counts (operations, bytes).
* :class:`LatencyRecorder` — per-request latency samples with mean,
  percentiles and CDFs (Figures 3, 5, 6, 7).
* :class:`ThroughputTracker` — operations (or bits) per second over a
  measurement window or per fixed-size time bucket (Figure 8's timeline).
* :class:`MetricRegistry` — a namespace of the above keyed by string, owned
  by the :class:`~repro.sim.actor.Environment`.

Large workloads (the client swarm simulating up to 10⁶ users) would make a
raw sample list the memory ceiling, so :class:`LatencyRecorder` supports a
streaming *sketch* mode: pass ``sketch=N`` and the recorder keeps exact raw
samples until ``N`` of them have been seen, then folds everything into a
log-spaced fixed-bucket histogram (growth factor ≈ 1.02, i.e. ≤ 1 % relative
quantile error) and records into buckets from then on.  Below the threshold
behavior is bit-identical to the exact recorder.

:class:`SloTracker` layers per-class service-level accounting on top:
``slo.<class>.latency`` recorders plus ``slo.<class>.requests`` /
``slo.<class>.violations`` counters for each traffic class.
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "LatencyRecorder",
    "SloTracker",
    "ThroughputTracker",
    "MetricRegistry",
    "summarize_latencies",
]

# Geometric bucket growth for the sketch mode.  Quantiles are reported at
# the geometric midpoint of their bucket, so the worst-case relative error
# is sqrt(GROWTH) - 1 ≈ 0.995 % < 1 %.
_SKETCH_GROWTH = 1.02
_LOG_GROWTH = math.log(_SKETCH_GROWTH)
# Samples below this magnitude (one nanosecond) share the underflow bucket.
_SKETCH_FLOOR = 1e-9


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase")
        self._value += amount

    def reset(self) -> None:
        """Reset the counter to zero (start of a measurement window)."""
        self._value = 0.0


class LatencyRecorder:
    """Collects latency samples in seconds and summarises them.

    ``sketch`` is a sample-count threshold: ``None`` (default) keeps raw
    samples forever; an integer ``N`` switches the recorder to a log-spaced
    bucket histogram once more than ``N`` samples have been recorded.  Exact
    and sketched recorders answer the same queries; sketched quantiles carry
    ≤ 1 % relative error while min/max/mean/count stay exact.
    """

    def __init__(self, name: str, sketch: Optional[int] = None) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sketch_threshold = sketch
        self._buckets: Optional[Dict[int, int]] = None
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------- recording
    def record(self, latency_seconds: float) -> None:
        """Record one sample."""
        if latency_seconds < 0:
            raise ValueError("latency cannot be negative")
        self._count += 1
        self._total += latency_seconds
        if latency_seconds < self._min:
            self._min = latency_seconds
        if latency_seconds > self._max:
            self._max = latency_seconds
        if self._buckets is not None:
            self._buckets[self._bucket_index(latency_seconds)] += 1
            return
        self._samples.append(latency_seconds)
        if (
            self._sketch_threshold is not None
            and len(self._samples) > self._sketch_threshold
        ):
            self._fold_into_sketch()

    @staticmethod
    def _bucket_index(value: float) -> int:
        if value < _SKETCH_FLOOR:
            return -(10**9)  # shared underflow bucket
        return int(math.floor(math.log(value) / _LOG_GROWTH))

    @staticmethod
    def _bucket_value(index: int) -> float:
        if index == -(10**9):
            return 0.0
        # Geometric midpoint of [g^i, g^(i+1)).
        return _SKETCH_GROWTH ** (index + 0.5)

    def _fold_into_sketch(self) -> None:
        buckets: Dict[int, int] = defaultdict(int)
        for s in self._samples:
            buckets[self._bucket_index(s)] += 1
        self._buckets = buckets
        self._samples = []

    def set_sketch(self, threshold: Optional[int]) -> None:
        """Adjust the sketch threshold; folds immediately if already past it."""
        self._sketch_threshold = threshold
        if (
            threshold is not None
            and self._buckets is None
            and len(self._samples) > threshold
        ):
            self._fold_into_sketch()

    @property
    def sketching(self) -> bool:
        """Whether the recorder has switched to the bucket histogram."""
        return self._buckets is not None

    @property
    def sketch_threshold(self) -> Optional[int]:
        """The configured sample-count threshold (``None`` = always exact)."""
        return self._sketch_threshold

    # --------------------------------------------------------------- queries
    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._count

    @property
    def samples(self) -> List[float]:
        """A copy of the raw samples (seconds).

        In sketch mode the raw values are gone; this returns the bucket
        representatives, repeated per count — same length, ≤ 1 % off each.
        """
        if self._buckets is None:
            return list(self._samples)
        out: List[float] = []
        for idx in sorted(self._buckets):
            out.extend([self._clamped(self._bucket_value(idx))] * self._buckets[idx])
        return out

    def _clamped(self, value: float) -> float:
        return min(self._max, max(self._min, value))

    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty) — exact in both modes."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    def percentile(self, pct: float) -> float:
        """Latency at percentile ``pct`` (0-100), nearest-rank method."""
        if self._count == 0:
            return 0.0
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be within [0, 100]")
        rank = max(0, min(self._count - 1, math.ceil(pct / 100.0 * self._count) - 1))
        if self._buckets is None:
            return sorted(self._samples)[rank]
        if pct == 0:
            return self._min
        if pct == 100:
            return self._max
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen > rank:
                return self._clamped(self._bucket_value(idx))
        return self._max

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return ``points`` (latency, cumulative fraction) pairs for plotting."""
        if self._count == 0:
            return []
        n = self._count
        if self._buckets is None:
            ordered = sorted(self._samples)
            result = []
            for i in range(1, points + 1):
                idx = max(0, min(n - 1, round(i / points * n) - 1))
                result.append((ordered[idx], (idx + 1) / n))
            return result
        # Sketch mode: walk the cumulative histogram once, answering the same
        # nearest-rank positions the exact path uses.
        edges: List[Tuple[int, int]] = []  # (cumulative count, bucket index)
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            edges.append((seen, idx))
        result = []
        for i in range(1, points + 1):
            rank = max(0, min(n - 1, round(i / points * n) - 1))
            pos = bisect.bisect_right([c for c, _ in edges], rank)
            pos = min(pos, len(edges) - 1)
            result.append(
                (self._clamped(self._bucket_value(edges[pos][1])), (rank + 1) / n)
            )
        return result

    def fraction_below(self, threshold_seconds: float) -> float:
        """Fraction of samples strictly below ``threshold_seconds``."""
        if self._count == 0:
            return 0.0
        if self._buckets is None:
            ordered = sorted(self._samples)
            return bisect.bisect_left(ordered, threshold_seconds) / len(ordered)
        below = sum(
            c
            for idx, c in self._buckets.items()
            if self._clamped(self._bucket_value(idx)) < threshold_seconds
        )
        return below / self._count

    def mean_ms(self) -> float:
        """Mean latency in milliseconds."""
        return self.mean() * 1_000.0

    def reset(self) -> None:
        """Drop every recorded sample (the sketch threshold is kept)."""
        self._samples.clear()
        self._buckets = None
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf


class SloTracker:
    """Per-class service-level-objective accounting.

    ``targets`` maps a traffic class (``"gold"``, ``"default"``, …) to its
    latency objective in seconds.  Every :meth:`record` call feeds the
    class's ``slo.<class>.latency`` recorder and bumps
    ``slo.<class>.requests``; samples over the objective additionally bump
    ``slo.<class>.violations``.  Classes without a target are tracked with no
    violation accounting.
    """

    def __init__(
        self,
        registry: "MetricRegistry",
        targets: Dict[str, float],
        prefix: str = "slo",
        sketch: Optional[int] = None,
    ) -> None:
        self._registry = registry
        self._targets = dict(targets)
        self._prefix = prefix
        self._sketch = sketch
        for cls in self._targets:
            self._ensure(cls)

    def _ensure(self, cls: str) -> "LatencyRecorder":
        recorder = self._registry.latency(
            f"{self._prefix}.{cls}.latency", sketch=self._sketch
        )
        self._registry.counter(f"{self._prefix}.{cls}.requests")
        self._registry.counter(f"{self._prefix}.{cls}.violations")
        return recorder

    @property
    def targets(self) -> Dict[str, float]:
        """The configured per-class objectives (seconds)."""
        return dict(self._targets)

    def record(self, cls: str, latency_seconds: float) -> None:
        """Record one completed request of class ``cls``."""
        self._ensure(cls).record(latency_seconds)
        self._registry.counter(f"{self._prefix}.{cls}.requests").increment()
        target = self._targets.get(cls)
        if target is not None and latency_seconds > target:
            self._registry.counter(f"{self._prefix}.{cls}.violations").increment()

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-class summary: count, p50/p99 (ms), violations and rate."""
        out: Dict[str, Dict[str, float]] = {}
        for cls in sorted(self._targets):
            recorder = self._registry.latency(f"{self._prefix}.{cls}.latency")
            requests = self._registry.counter(f"{self._prefix}.{cls}.requests").value
            violations = self._registry.counter(f"{self._prefix}.{cls}.violations").value
            out[cls] = {
                "target_ms": self._targets[cls] * 1e3,
                "requests": requests,
                "violations": violations,
                "violation_fraction": (violations / requests) if requests else 0.0,
                "p50_ms": recorder.percentile(50) * 1e3,
                "p99_ms": recorder.percentile(99) * 1e3,
            }
        return out


class ThroughputTracker:
    """Tracks completed units over time.

    ``record(units)`` is called when work completes; totals per fixed-size
    bucket provide the throughput timeline of Figure 8, and window totals
    provide the steady-state throughput of the other figures.
    """

    def __init__(self, name: str, clock: Callable[[], float], bucket_seconds: float = 1.0) -> None:
        self.name = name
        self._clock = clock
        self._bucket = bucket_seconds
        self._events: List[Tuple[float, float]] = []

    def record(self, units: float = 1.0) -> None:
        """Record completion of ``units`` units of work at the current time."""
        self._events.append((self._clock(), units))

    @property
    def total(self) -> float:
        """Total units recorded."""
        return sum(u for _, u in self._events)

    def total_between(self, start: float, end: float) -> float:
        """Units recorded in the half-open interval ``[start, end)``."""
        return sum(u for t, u in self._events if start <= t < end)

    def rate(self, start: float, end: float) -> float:
        """Average rate (units/second) over ``[start, end)``."""
        if end <= start:
            return 0.0
        return self.total_between(start, end) / (end - start)

    def timeline(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Per-bucket rates between ``start`` and ``end``.

        Returns a list of ``(bucket_start_time, units_per_second)`` covering
        the interval, including empty buckets — exactly the series plotted in
        Figure 8.
        """
        if end <= start:
            return []
        buckets: Dict[int, float] = defaultdict(float)
        for t, u in self._events:
            if start <= t < end:
                buckets[int((t - start) // self._bucket)] += u
        n_buckets = int(math.ceil((end - start) / self._bucket))
        return [
            (start + i * self._bucket, buckets.get(i, 0.0) / self._bucket)
            for i in range(n_buckets)
        ]

    def reset(self) -> None:
        """Drop all recorded events."""
        self._events.clear()


class MetricRegistry:
    """Named registry of counters, latency recorders and throughput trackers."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._throughputs: Dict[str, ThroughputTracker] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def latency(self, name: str, sketch: Optional[int] = None) -> LatencyRecorder:
        """Get or create the latency recorder ``name``.

        ``sketch`` only applies on first creation, or when enabling the
        sketch on an existing exact recorder (never silently *disables* one).
        """
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(name, sketch=sketch)
        elif sketch is not None and self._latencies[name].sketch_threshold is None:
            self._latencies[name].set_sketch(sketch)
        return self._latencies[name]

    def throughput(self, name: str, bucket_seconds: float = 1.0) -> ThroughputTracker:
        """Get or create the throughput tracker ``name``."""
        if name not in self._throughputs:
            self._throughputs[name] = ThroughputTracker(name, self._clock, bucket_seconds)
        return self._throughputs[name]

    def reset_all(self) -> None:
        """Reset every registered instrument (start of measurement window)."""
        for c in self._counters.values():
            c.reset()
        for l in self._latencies.values():
            l.reset()
        for t in self._throughputs.values():
            t.reset()

    def names(self) -> List[str]:
        """All registered instrument names."""
        return sorted(
            set(self._counters) | set(self._latencies) | set(self._throughputs)
        )


def summarize_latencies(
    samples: Sequence[float], sketch: Optional[int] = None
) -> Dict[str, float]:
    """Convenience summary (mean/p50/p95/p99 in milliseconds) of raw samples.

    Pass ``sketch=N`` to bound memory on huge sample streams: above ``N``
    samples the summary is computed from the log-bucket sketch (≤ 1 %
    relative quantile error); at or below it the result is exact.
    """
    recorder = LatencyRecorder("summary", sketch=sketch)
    for s in samples:
        recorder.record(s)
    return {
        "count": recorder.count,
        "mean_ms": recorder.mean() * 1e3,
        "p50_ms": recorder.percentile(50) * 1e3,
        "p95_ms": recorder.percentile(95) * 1e3,
        "p99_ms": recorder.percentile(99) * 1e3,
    }
