"""Per-actor CPU accounting.

The paper reports coordinator CPU utilisation (Figure 3, bottom-left) and
attributes the in-memory throughput ceiling to the coordinator's CPU.  The
simulator reproduces this by charging every actor a configurable CPU cost per
message handled and per byte processed, and reporting utilisation as

    busy_time / elapsed_time

over a measurement window.  Utilisation can exceed 100 % to represent a
multi-threaded process using more than one core, matching the paper's plot
which goes up to 200 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["CpuAccount", "CpuCostModel"]


@dataclass
class CpuCostModel:
    """CPU cost parameters for a process role.

    Attributes
    ----------
    per_message:
        Seconds of CPU charged for handling one protocol message.
    per_byte:
        Seconds of CPU charged per payload byte (serialisation, checksums,
        copying between queues).
    cores:
        Number of cores available; utilisation is reported relative to one
        core so a fully busy 2-core process reports 200 %.
    """

    per_message: float = 4e-6
    per_byte: float = 2.5e-9
    cores: int = 2

    def cost(self, message_count: int, byte_count: int) -> float:
        """CPU seconds consumed by ``message_count`` messages of ``byte_count`` bytes total."""
        return self.per_message * message_count + self.per_byte * byte_count


class CpuAccount:
    """Accumulates CPU busy time for one actor."""

    def __init__(self, owner: str, clock: Callable[[], float]) -> None:
        self._owner = owner
        self._clock = clock
        self._busy = 0.0
        self._window_start = 0.0
        self._window_busy = 0.0

    @property
    def busy_seconds(self) -> float:
        """Total CPU seconds charged since the account was created."""
        return self._busy

    def charge(self, seconds: float) -> None:
        """Charge ``seconds`` of CPU time."""
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self._busy += seconds
        self._window_busy += seconds

    def charge_message(self, model: CpuCostModel, size_bytes: int, count: int = 1) -> None:
        """Charge the cost of processing ``count`` messages totalling ``size_bytes``.

        Runs once per protocol message, so the cost formula is inlined here
        rather than going through :meth:`CpuCostModel.cost` + :meth:`charge`
        (both operands are non-negative by construction).
        """
        cost = model.per_message * count + model.per_byte * size_bytes
        self._busy += cost
        self._window_busy += cost

    def reset_window(self) -> None:
        """Start a new utilisation measurement window at the current time."""
        self._window_start = self._clock()
        self._window_busy = 0.0

    def utilization(self) -> float:
        """Utilisation (fraction of one core) over the current window.

        A value of 1.5 means the process consumed 150 % of one core.
        """
        elapsed = self._clock() - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._window_busy / elapsed

    def utilization_percent(self) -> float:
        """Utilisation over the current window expressed in percent."""
        return self.utilization() * 100.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CpuAccount({self._owner}, busy={self._busy:.6f}s)"
