"""Discrete-event simulation kernel.

The kernel is the substrate every protocol in this repository runs on.  It
replaces the paper's physical testbed (a 10 Gbps cluster and Amazon EC2
regions) with a deterministic, seedable event loop: protocol actors exchange
messages and set timers, and the kernel advances a virtual clock from event to
event.

Design notes
------------
* Events are kept in a binary heap keyed by ``(time, priority, seq)``.  The
  monotonically increasing ``seq`` makes the ordering of simultaneous events
  deterministic, which in turn makes every experiment reproducible from its
  seed.
* The kernel knows nothing about networks, disks or protocols; those are
  layered on top (see :mod:`repro.sim.network` and :mod:`repro.sim.disk`).
* Time is a ``float`` in **seconds**.  Helpers for milliseconds/microseconds
  are provided because protocol parameters in the paper are expressed in
  milliseconds (e.g. ``Δ = 5 ms``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "ms",
    "us",
    "SimulationError",
]


def ms(value: float) -> float:
    """Convert milliseconds to simulation seconds."""
    return value / 1_000.0


def us(value: float) -> float:
    """Convert microseconds to simulation seconds."""
    return value / 1_000_000.0


class SimulationError(RuntimeError):
    """Raised when the simulation is used incorrectly.

    Examples include scheduling an event in the past or running a simulator
    that has already been stopped.
    """


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, seq)`` so that the heap pops them in
    deterministic order.  The callback and its arguments do not participate in
    ordering.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule` allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired or was already cancelled is a
        no-op; this mirrors the semantics of ``threading.Timer.cancel``.
        """
        self._event.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> fired
    ['hello']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful in tests and stats)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now.

        A negative delay raises :class:`SimulationError`; a zero delay runs the
        callback at the current time but strictly after the currently running
        event (events never preempt each other).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
            kwargs=kwargs,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self.schedule(time - self._now, callback, *args, priority=priority, **kwargs)

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty (cancelled events are skipped silently).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events at exactly
            ``until`` are executed.  ``None`` means run until the queue drains.
        max_events:
            Safety valve for tests: stop after this many events.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                next_event = self._peek_next()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None and self._now < until and not self._stopped:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def _peek_next(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    # ------------------------------------------------------------------ misc
    def drain(self, horizon: float) -> None:
        """Advance the clock to ``horizon`` discarding every queued event.

        Used by experiments to end a measurement window abruptly, mimicking
        the paper's fixed-duration runs.
        """
        if horizon < self._now:
            raise SimulationError("cannot drain to a time in the past")
        self._queue.clear()
        self._now = horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )
