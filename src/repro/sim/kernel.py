"""Discrete-event simulation kernel.

The kernel is the substrate every protocol in this repository runs on.  It
replaces the paper's physical testbed (a 10 Gbps cluster and Amazon EC2
regions) with a deterministic, seedable event loop: protocol actors exchange
messages and set timers, and the kernel advances a virtual clock from event to
event.

Design notes
------------
* Events are kept in a binary heap of plain ``(time, priority, seq)`` keyed
  tuples.  The monotonically increasing ``seq`` makes the ordering of
  simultaneous events deterministic, which in turn makes every experiment
  reproducible from its seed.
* The kernel knows nothing about networks, disks or protocols; those are
  layered on top (see :mod:`repro.sim.network` and :mod:`repro.sim.disk`).
* Time is a ``float`` in **seconds**.  Helpers for milliseconds/microseconds
  are provided because protocol parameters in the paper are expressed in
  milliseconds (e.g. ``Δ = 5 ms``).

Performance notes
-----------------
Every simulated message translates into at least one kernel event, so the
events/second of this module caps the throughput of the whole reproduction
(see ``benchmarks/bench_kernel.py``).  The hot path therefore avoids the
conveniences the original implementation used:

* :class:`Event` is a ``__slots__`` class, not an ``order=True`` dataclass;
  heap entries are ``(time, priority, seq, event)`` tuples so heap sifting
  compares C-level tuples instead of calling a generated ``__lt__``.
* :meth:`Simulator.call_later` is the keyword-free fast path used by timers:
  it never allocates a per-call ``kwargs`` dict.  The internal
  :meth:`Simulator._post` goes further for fire-and-forget work (message
  delivery, durability callbacks): its heap entries are plain
  ``(time, priority, seq, callback, args)`` tuples with no Event or handle
  at all.
* The run loop peeks/pops inline with hoisted locals instead of delegating to
  ``_peek_next`` + ``step`` (which scanned the heap head twice per event).
* Cancelled events are removed lazily; when more than half the queue is dead
  the heap is compacted in place, so long runs with many cancelled timers do
  not degrade.

Observable semantics (delivery order for a given seed, the public API, error
behaviour) are identical to the original kernel — ``repro.sim.legacy`` keeps
a snapshot of the original for differential tests.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from math import inf
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "ms",
    "us",
    "SimulationError",
]


def ms(value: float) -> float:
    """Convert milliseconds to simulation seconds."""
    return value / 1_000.0


def us(value: float) -> float:
    """Convert microseconds to simulation seconds."""
    return value / 1_000_000.0


class SimulationError(RuntimeError):
    """Raised when the simulation is used incorrectly.

    Examples include scheduling an event in the past or running a simulator
    that has already been stopped.
    """


class Event:
    """A single scheduled callback.

    Events are ordered by the ``(time, priority, seq)`` prefix of the heap
    tuple they ride in; the callback and its arguments do not participate in
    ordering.  ``kwargs`` is ``None`` (not an empty dict) for events scheduled
    through the fast path.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "kwargs", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)


#: Heap entry type: ``(time, priority, seq, event)``.
_Entry = Tuple[float, int, int, Event]


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule` allowing cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired or was already cancelled is a
        no-op; this mirrors the semantics of ``threading.Timer.cancel``.
        """
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            # A fired event no longer sits in the queue; counting it toward
            # the compaction trigger would cause spurious full-heap scans
            # (e.g. Actor.crash cancelling long-fired one-shot timers).
            if not event.fired:
                self._sim._note_cancelled()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).
    profile:
        Optional :class:`repro.sim.profile.SimProfile` collecting per-callback
        event counts and wall time.  ``None`` (the default) keeps the run loop
        untouched; with a profile installed the loop routes through an
        instrumented twin that executes the exact same event sequence while
        timing each callback.
    batch_dispatch:
        Same-actor event-run batching: when the heap head is a run of
        consecutive fire-and-forget entries (the ``_post`` layout) bound to
        the same callback and the same first argument — e.g. a burst of
        network deliveries to one actor — the run is drained in one inner
        loop, skipping the outer loop's per-event entry-layout and stop
        checks.  Pops still happen one at a time in heap order and the clock
        advances per entry, so the executed event sequence is identical to
        the default loop; the flag exists so the default path stays
        byte-for-byte the code the frozen ``legacy.py`` differentials and
        the sharded bit-determinism tests were anchored on.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> fired
    ['hello']
    >>> sim.now
    1.5
    """

    #: Minimum number of cancellations before a compaction is considered.
    COMPACT_MIN_CANCELLED = 64

    def __init__(
        self,
        start_time: float = 0.0,
        batch_dispatch: bool = False,
        profile: Optional[Any] = None,
    ) -> None:
        self._now = float(start_time)
        self._queue: List[_Entry] = []
        self._seq = 0
        self._cancelled = 0
        self._running = False
        self._stopped = False
        self._processed = 0
        self._batch_dispatch = batch_dispatch
        self._profile = profile

    @property
    def profile(self) -> Optional[Any]:
        """The installed :class:`~repro.sim.profile.SimProfile` (or ``None``)."""
        return self._profile

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful in tests and stats)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(
            1
            for entry in self._queue
            if entry[3].__class__ is not Event or not entry[3].cancelled
        )

    # ------------------------------------------------------------- scheduling
    def _post(self, delay: float, callback: Callable[..., None], args: tuple = ()) -> None:
        """Cheapest scheduling path: no handle, no Event, pre-built args tuple.

        Used by fire-and-forget hot paths (message delivery, durability
        callbacks) that never cancel: the heap entry is a plain
        ``(time, 0, seq, callback, args)`` tuple, skipping the ``*args``
        re-pack, the :class:`Event` and the :class:`EventHandle` of
        :meth:`call_later`.  Ordering is identical — the heap only ever
        compares the unique ``(time, priority, seq)`` prefix.  Negative delays
        are a caller bug on these internal paths, but are still rejected to
        keep the kernel invariant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, 0, seq, callback, args))

    def call_later(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Fast-path :meth:`schedule`: positional arguments only.

        Identical semantics to ``schedule(delay, callback, *args)`` but never
        allocates a keyword-argument dict; this is the entry point the
        network, disk and timer layers use for every simulated message.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        event = Event(time, priority, seq, callback, args)
        heappush(self._queue, (time, priority, seq, event))
        return EventHandle(event, self)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now.

        A negative delay raises :class:`SimulationError`; a zero delay runs the
        callback at the current time but strictly after the currently running
        event (events never preempt each other).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        event = Event(time, priority, seq, callback, args, kwargs or None)
        heappush(self._queue, (time, priority, seq, event))
        return EventHandle(event, self)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self.schedule(time - self._now, callback, *args, priority=priority, **kwargs)

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty (cancelled events are skipped silently).
        """
        queue = self._queue
        while queue:
            entry = heappop(queue)
            head = entry[3]
            if head.__class__ is Event:
                if head.cancelled:
                    if self._cancelled:
                        self._cancelled -= 1
                    continue
                self._now = entry[0]
                self._processed += 1
                head.fired = True
                kwargs = head.kwargs
                if kwargs is None:
                    head.callback(*head.args)
                else:
                    head.callback(*head.args, **kwargs)
            else:
                self._now = entry[0]
                self._processed += 1
                head(*entry[4])
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events at exactly
            ``until`` are executed.  ``None`` means run until the queue drains.
        max_events:
            Safety valve for tests: stop after this many events.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        if self._profile is not None:
            return self._run_profiled(until, max_events)
        if max_events is None and not self._batch_dispatch:
            return self._run_default(until)
        return self._run_general(until, max_events)

    def _run_default(self, until: Optional[float]) -> float:
        """The common loop: no event cap, no batch dispatch, no profiling.

        Byte-for-byte the general loop minus the per-event ``max_events``
        counting and batch-dispatch branch; ``until`` is hoisted into a plain
        float bound (``inf`` when absent) so the per-event check is a single
        comparison.  The executed event sequence is identical to
        :meth:`_run_general` for the same inputs.
        """
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heappop
        limit = inf if until is None else until
        try:
            while queue and not self._stopped:
                entry = queue[0]
                head = entry[3]
                # Two heap-entry layouts: (time, prio, seq, Event) from the
                # public schedulers, (time, prio, seq, callback, args) from
                # the fire-and-forget _post path.
                if head.__class__ is Event:
                    if head.cancelled:
                        pop(queue)
                        if self._cancelled:
                            self._cancelled -= 1
                        continue
                    time = entry[0]
                    if time > limit:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    self._processed += 1
                    head.fired = True
                    kwargs = head.kwargs
                    if kwargs is None:
                        head.callback(*head.args)
                    else:
                        head.callback(*head.args, **kwargs)
                else:
                    time = entry[0]
                    if time > limit:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    self._processed += 1
                    head(*entry[4])
            else:
                if until is not None and self._now < until and not self._stopped:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def _run_general(self, until: Optional[float], max_events: Optional[int]) -> float:
        """The full loop: event caps and same-actor batch dispatch."""
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heappop
        executed = 0
        unbounded = max_events is None
        batching = self._batch_dispatch
        try:
            while queue and not self._stopped:
                entry = queue[0]
                head = entry[3]
                # Two heap-entry layouts: (time, prio, seq, Event) from the
                # public schedulers, (time, prio, seq, callback, args) from
                # the fire-and-forget _post path.
                if head.__class__ is Event:
                    if head.cancelled:
                        pop(queue)
                        if self._cancelled:
                            self._cancelled -= 1
                        continue
                    time = entry[0]
                    if until is not None and time > until:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    self._processed += 1
                    head.fired = True
                    kwargs = head.kwargs
                    if kwargs is None:
                        head.callback(*head.args)
                    else:
                        head.callback(*head.args, **kwargs)
                else:
                    time = entry[0]
                    if until is not None and time > until:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    self._processed += 1
                    head(*entry[4])
                    if batching and unbounded:
                        # Same-actor event run: drain consecutive plain
                        # entries sharing this callback and destination
                        # (args[0], e.g. the network connection of one
                        # actor) without re-entering the outer loop.  The
                        # pops happen in the same heap order the outer loop
                        # would use, so the executed sequence is identical.
                        target = entry[4][0] if entry[4] else None
                        while queue and not self._stopped:
                            nxt = queue[0]
                            if len(nxt) != 5 or nxt[3] is not head:
                                break
                            nargs = nxt[4]
                            if (nargs[0] if nargs else None) is not target:
                                break
                            ntime = nxt[0]
                            if until is not None and ntime > until:
                                break
                            pop(queue)
                            self._now = ntime
                            self._processed += 1
                            head(*nargs)
                if not unbounded:
                    executed += 1
                    if executed >= max_events:
                        break
            else:
                if until is not None and self._now < until and not self._stopped:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def _run_profiled(self, until: Optional[float], max_events: Optional[int]) -> float:
        """Instrumented twin of the run loop (``profile=`` installed).

        Executes the exact same event sequence as the uninstrumented loops —
        same pops, same clock, same stop conditions, including the batch
        dispatch drain — while attributing a wall-time measurement and an
        event count to every callback.  Lives in its own method so the
        default loops stay free of per-event timing branches.
        """
        profile = self._profile
        record = profile.record
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heappop
        timer = profile.clock
        executed = 0
        unbounded = max_events is None
        batching = self._batch_dispatch
        try:
            while queue and not self._stopped:
                entry = queue[0]
                head = entry[3]
                if head.__class__ is Event:
                    if head.cancelled:
                        pop(queue)
                        if self._cancelled:
                            self._cancelled -= 1
                        continue
                    time = entry[0]
                    if until is not None and time > until:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    self._processed += 1
                    head.fired = True
                    kwargs = head.kwargs
                    t0 = timer()
                    if kwargs is None:
                        head.callback(*head.args)
                    else:
                        head.callback(*head.args, **kwargs)
                    record(head.callback, timer() - t0)
                else:
                    time = entry[0]
                    if until is not None and time > until:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    self._processed += 1
                    t0 = timer()
                    head(*entry[4])
                    record(head, timer() - t0)
                    if batching and unbounded:
                        target = entry[4][0] if entry[4] else None
                        while queue and not self._stopped:
                            nxt = queue[0]
                            if len(nxt) != 5 or nxt[3] is not head:
                                break
                            nargs = nxt[4]
                            if (nargs[0] if nargs else None) is not target:
                                break
                            ntime = nxt[0]
                            if until is not None and ntime > until:
                                break
                            pop(queue)
                            self._now = ntime
                            self._processed += 1
                            t0 = timer()
                            head(*nargs)
                            record(head, timer() - t0)
                if not unbounded:
                    executed += 1
                    if executed >= max_events:
                        break
            else:
                if until is not None and self._now < until and not self._stopped:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    # ----------------------------------------------------------- time windows
    def next_event_time(self) -> Optional[float]:
        """Firing time of the earliest live pending event (``None`` if drained).

        Cancelled entries found at the heap top are popped eagerly, so the
        answer is exact.  Used by window-based execution to decide whether a
        shard has any work left inside the current window.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            head = entry[3]
            if head.__class__ is Event and head.cancelled:
                heappop(queue)
                if self._cancelled:
                    self._cancelled -= 1
                continue
            return entry[0]
        return None

    def run_window(self, end: float) -> int:
        """Execute every event with ``time <= end`` and land the clock on ``end``.

        The building block of conservative parallel execution (see
        :mod:`repro.sim.parallel`): a shard repeatedly runs one lookahead
        window, then exchanges cross-shard messages at the barrier.  Unlike a
        bare ``run(until=end)`` call, ``run_window`` enforces that windows are
        monotonic (``end`` must not be in the past) and guarantees the clock
        is exactly ``end`` afterwards, so every shard arrives at the barrier
        with an identical notion of time.

        Returns the number of events executed inside the window.
        """
        if end < self._now:
            raise SimulationError(
                f"window end {end} is before the current time {self._now}"
            )
        before = self._processed
        self.run(until=end)
        if not self._stopped:
            self._now = end
        return self._processed - before

    # ----------------------------------------------------------- compaction
    def _note_cancelled(self) -> None:
        """Record a cancellation; compact the heap when mostly dead.

        Cancelled events are normally skipped lazily when they reach the heap
        top.  A workload that arms and cancels many long-dated timers (e.g.
        per-message retransmission timers) would otherwise accumulate dead
        entries, inflating every push/pop; once dead entries plausibly exceed
        half the queue the heap is rebuilt in place.  The counter may
        overcount (cancelling an already-fired event is a no-op on the queue)
        which at worst triggers a harmless extra compaction.
        """
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: run() holds a ref)."""
        queue = self._queue
        live = [
            entry
            for entry in queue
            if entry[3].__class__ is not Event or not entry[3].cancelled
        ]
        if len(live) != len(queue):
            queue[:] = live
            heapify(queue)
        self._cancelled = 0

    # ------------------------------------------------------------------ misc
    def drain(self, horizon: float) -> None:
        """Advance the clock to ``horizon`` discarding every queued event.

        Used by experiments to end a measurement window abruptly, mimicking
        the paper's fixed-duration runs.
        """
        if horizon < self._now:
            raise SimulationError("cannot drain to a time in the past")
        self._queue.clear()
        self._cancelled = 0
        self._now = horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )
