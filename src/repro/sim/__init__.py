"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed.  It provides the event
kernel (:mod:`repro.sim.kernel`), the actor model (:mod:`repro.sim.actor`),
the network (:mod:`repro.sim.network`), deployment topologies
(:mod:`repro.sim.topology`), storage-device models (:mod:`repro.sim.disk`),
CPU accounting (:mod:`repro.sim.cpu`), measurement instruments
(:mod:`repro.sim.metrics`), seeded randomness (:mod:`repro.sim.random`) and
conservative multi-core execution of sharded deployments
(:mod:`repro.sim.parallel`).

Quick tour
----------
Schedule and run events on the deterministic kernel::

    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(0.5, fired.append, "hello")
    >>> sim.run()
    0.5
    >>> fired
    ['hello']

Higher layers rarely touch the kernel directly: protocol code subclasses
:class:`Actor` (messages + timers), experiments construct an
:class:`Environment` (kernel + network + topology + metrics + seeded RNG
streams) — usually through :class:`repro.core.AtomicMulticast`, which wires a
whole Multi-Ring Paxos deployment.
"""

from .actor import Actor, Environment, Timer
from .parallel import ParallelRunResult, ShardHarness, ShardSpec, run_sharded
from .cpu import CpuAccount, CpuCostModel
from .disk import Disk, DiskProfile, HDD_PROFILE, SSD_PROFILE, StorageMode, profile_for_mode
from .kernel import Event, EventHandle, SimulationError, Simulator, ms, us
from .metrics import Counter, LatencyRecorder, MetricRegistry, ThroughputTracker, summarize_latencies
from .network import MessageStats, Network, message_size
from .profile import SimProfile, profile_function
from .random import LatestGenerator, SeededStreams, UniformIntGenerator, ZipfianGenerator
from .topology import EC2_REGIONS, Site, Topology, ec2_global, single_datacenter

__all__ = [
    "Actor",
    "Environment",
    "Timer",
    "CpuAccount",
    "CpuCostModel",
    "Disk",
    "DiskProfile",
    "HDD_PROFILE",
    "SSD_PROFILE",
    "StorageMode",
    "profile_for_mode",
    "Event",
    "EventHandle",
    "SimulationError",
    "Simulator",
    "ms",
    "us",
    "Counter",
    "LatencyRecorder",
    "MetricRegistry",
    "ThroughputTracker",
    "summarize_latencies",
    "MessageStats",
    "Network",
    "message_size",
    "ParallelRunResult",
    "ShardHarness",
    "ShardSpec",
    "run_sharded",
    "LatestGenerator",
    "SeededStreams",
    "UniformIntGenerator",
    "ZipfianGenerator",
    "EC2_REGIONS",
    "Site",
    "Topology",
    "ec2_global",
    "single_datacenter",
]
