"""Opt-in profiling for the simulation kernel.

Two complementary instruments:

* :class:`SimProfile` — a lightweight collector the kernel drives itself.
  Install one with ``Simulator(profile=SimProfile())`` and the run loop
  routes through an instrumented twin (:meth:`Simulator._run_profiled`)
  that attributes an event count and a wall-time measurement to every
  callback it executes, keyed by the callback's qualified name.  The
  default loops carry **zero** profiling branches — the cost is paid only
  when a profile is installed.
* :func:`profile_function` — a cProfile wrapper for whole-run profiling.
  Returns the wrapped call's result together with a JSON-able list of the
  top-N hot functions (by total time), which is what
  ``benchmarks/bench_kernel.py --profile`` writes into
  ``BENCH_kernel.json``.

Both stay out of the way by default: nothing in this module is imported by
the kernel's hot path, and ``profile=None`` (the default) leaves the run
loop untouched.
"""

from __future__ import annotations

import cProfile
import pstats
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["SimProfile", "profile_function"]


class SimProfile:
    """Per-callback event counts and wall time, collected by the kernel.

    Attributes
    ----------
    events:
        ``callback qualname -> number of events executed``.
    wall:
        ``callback qualname -> cumulative wall seconds`` spent inside the
        callback (exclusive of heap bookkeeping).
    clock:
        The timer the kernel brackets each callback with; injectable for
        deterministic tests.
    """

    __slots__ = ("clock", "events", "wall", "_names")

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self.clock = clock
        self.events: Dict[str, int] = {}
        self.wall: Dict[str, float] = {}
        # Callables seen before, keyed by identity: resolving __qualname__
        # per event would dominate the measurement itself.  Bound methods
        # are recreated per call site, so the memo also keys on the
        # underlying function when one exists.
        self._names: Dict[int, str] = {}

    def record(self, callback: Any, elapsed: float) -> None:
        """Attribute one executed event to ``callback``."""
        func = getattr(callback, "__func__", callback)
        key = self._names.get(id(func))
        if key is None:
            key = getattr(func, "__qualname__", None) or type(callback).__name__
            self._names[id(func)] = key
        self.events[key] = self.events.get(key, 0) + 1
        self.wall[key] = self.wall.get(key, 0.0) + elapsed

    @property
    def total_events(self) -> int:
        """Number of events attributed so far."""
        return sum(self.events.values())

    @property
    def total_wall_s(self) -> float:
        """Wall seconds spent inside callbacks so far."""
        return sum(self.wall.values())

    def top(self, n: int = 15) -> List[Dict[str, Any]]:
        """The ``n`` most expensive callbacks by cumulative wall time."""
        rows = sorted(self.wall.items(), key=lambda kv: kv[1], reverse=True)
        return [
            {
                "callback": name,
                "events": self.events.get(name, 0),
                "wall_s": round(seconds, 6),
            }
            for name, seconds in rows[:n]
        ]

    def as_dict(self, top: int = 15) -> Dict[str, Any]:
        """JSON-able summary (what the benchmark writes to disk)."""
        return {
            "total_events": self.total_events,
            "total_wall_s": round(self.total_wall_s, 6),
            "events_by_callback": self.top(top),
        }


def _format_entry(key: Tuple[str, int, str]) -> str:
    filename, line, name = key
    if filename == "~":            # built-ins have no file
        return name
    short = "/".join(filename.split("/")[-2:])
    return f"{short}:{line}({name})"


def profile_function(
    fn: Callable[..., Any],
    *args: Any,
    top: int = 20,
    **kwargs: Any,
) -> Tuple[Any, List[Dict[str, Any]]]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, hot)`` where ``hot`` lists the ``top`` functions by
    total (exclusive) time as JSON-able dicts: ``function``, ``calls``,
    ``tottime_s``, ``cumtime_s``.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    rows = sorted(stats.stats.items(), key=lambda kv: kv[1][2], reverse=True)
    hot: List[Dict[str, Any]] = []
    for key, (cc, nc, tt, ct, _callers) in rows[:top]:
        hot.append(
            {
                "function": _format_entry(key),
                "calls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return result, hot
