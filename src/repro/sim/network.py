"""Simulated network: point-to-point channels with latency and bandwidth.

The paper's Ring Paxos variant deliberately avoids IP multicast and uses TCP
point-to-point connections arranged in a ring.  The simulated network
therefore only needs unicast channels.  Each ordered pair of actors gets a
FIFO channel whose delivery time is

    propagation (topology latency) + transmission (size / bandwidth) + jitter

and whose messages never reorder (TCP-like FIFO per channel).  Channels track
when they become free so that back-to-back large messages queue behind each
other, which is what creates the throughput ceilings in Figures 3, 6 and 7.

Fault injection: links can be cut (``partition``) and healed, and whole sites
can be isolated, supporting the recovery experiment (Figure 8) and the
failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from .actor import Environment
from .topology import Topology

__all__ = ["Network", "MessageStats", "message_size"]


def message_size(message: Any, default: int = 128) -> int:
    """Best-effort size (bytes) of a protocol message.

    Protocol messages define ``size_bytes`` (see :mod:`repro.net.message`);
    anything else falls back to ``default`` which approximates a small control
    message with TCP/IP overhead.
    """
    size = getattr(message, "size_bytes", None)
    if size is None:
        return default
    return int(size)


@dataclass
class MessageStats:
    """Aggregate statistics of everything the network carried."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0

    def record(self, size: int) -> None:
        """Record a successfully queued message of ``size`` bytes."""
        self.messages += 1
        self.bytes += size

    def record_drop(self) -> None:
        """Record a message dropped by a partition or dead destination."""
        self.dropped += 1


class Network:
    """Delivers messages between registered actors according to a topology."""

    #: Fixed per-message protocol overhead (TCP/IP + framing), in bytes.
    HEADER_BYTES = 66

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        jitter_fraction: float = 0.05,
    ) -> None:
        self.env = env
        self.topology = topology
        self.stats = MessageStats()
        self._jitter = jitter_fraction
        self._rng = env.streams.stream("network.jitter")
        #: next time each directed (src_site, dst_site) pair's channel is free
        self._channel_free_at: Dict[Tuple[str, str], float] = {}
        #: last scheduled delivery time per (src_actor, dst_actor) connection,
        #: used to enforce TCP-like FIFO order even in the presence of jitter
        self._last_delivery_at: Dict[Tuple[str, str], float] = {}
        #: severed directed site pairs
        self._cut_links: Set[Tuple[str, str]] = set()
        #: isolated sites (all traffic in/out dropped)
        self._isolated_sites: Set[str] = set()
        env.network = self
        env.topology = topology

    # ------------------------------------------------------------------ send
    def send(self, src: str, dst: str, message: Any) -> None:
        """Queue ``message`` from actor ``src`` to actor ``dst``.

        Messages to unknown or crashed destinations are counted as drops —
        like TCP connections to a dead host, the sender finds out through the
        protocol's own timeouts, not through the transport.
        """
        if not self.env.has_actor(dst):
            self.stats.record_drop()
            return
        src_actor = self.env.actor(src)
        dst_actor = self.env.actor(dst)
        src_site, dst_site = src_actor.site, dst_actor.site

        if self._blocked(src_site, dst_site):
            self.stats.record_drop()
            return

        size = message_size(message) + self.HEADER_BYTES
        delay = self._delivery_delay(src_site, dst_site, size)
        # Messages between the same two processes travel on one TCP
        # connection: never deliver them out of order, whatever the jitter.
        now = self.env.simulator.now
        connection = (src, dst)
        delivery_at = max(now + delay, self._last_delivery_at.get(connection, 0.0))
        self._last_delivery_at[connection] = delivery_at
        self.stats.record(size)
        self.env.simulator.schedule(delivery_at - now, self._deliver, src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        if not self.env.has_actor(dst):
            self.stats.record_drop()
            return
        actor = self.env.actor(dst)
        if not actor.alive:
            self.stats.record_drop()
            return
        actor.deliver(src, message)

    # ----------------------------------------------------------------- model
    def _delivery_delay(self, src_site: str, dst_site: str, size_bytes: int) -> float:
        propagation = self.topology.latency(src_site, dst_site)
        bandwidth = self.topology.bandwidth(src_site, dst_site)
        transmission = (size_bytes * 8.0) / bandwidth
        jitter = 0.0
        if self._jitter > 0:
            jitter = propagation * self._jitter * self._rng.random()

        # FIFO channel occupancy: a message cannot start transmitting before
        # the previous message on the same directed site pair finished.
        key = (src_site, dst_site)
        now = self.env.simulator.now
        free_at = max(self._channel_free_at.get(key, now), now)
        start = free_at
        finish = start + transmission
        self._channel_free_at[key] = finish
        return (finish - now) + propagation + jitter

    def _blocked(self, src_site: str, dst_site: str) -> bool:
        if src_site in self._isolated_sites or dst_site in self._isolated_sites:
            return True
        return (src_site, dst_site) in self._cut_links

    # -------------------------------------------------------- fault injection
    def partition(self, site_a: str, site_b: str, bidirectional: bool = True) -> None:
        """Cut the link between two sites."""
        self._cut_links.add((site_a, site_b))
        if bidirectional:
            self._cut_links.add((site_b, site_a))

    def heal(self, site_a: str, site_b: str) -> None:
        """Restore the link between two sites."""
        self._cut_links.discard((site_a, site_b))
        self._cut_links.discard((site_b, site_a))

    def isolate_site(self, site: str) -> None:
        """Drop every message to or from ``site``."""
        self._isolated_sites.add(site)

    def rejoin_site(self, site: str) -> None:
        """Undo :meth:`isolate_site`."""
        self._isolated_sites.discard(site)

    def heal_all(self) -> None:
        """Remove every partition and isolation."""
        self._cut_links.clear()
        self._isolated_sites.clear()
