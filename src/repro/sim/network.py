"""Simulated network: point-to-point channels with latency and bandwidth.

The paper's Ring Paxos variant deliberately avoids IP multicast and uses TCP
point-to-point connections arranged in a ring.  The simulated network
therefore only needs unicast channels.  Each ordered pair of actors gets a
FIFO channel whose delivery time is

    propagation (topology latency) + transmission (size / bandwidth) + jitter

and whose messages never reorder (TCP-like FIFO per channel).  Channels track
when they become free so that back-to-back large messages queue behind each
other, which is what creates the throughput ceilings in Figures 3, 6 and 7.

Fault injection: links can be cut (``partition``) and healed, and whole sites
can be isolated, supporting the recovery experiment (Figure 8) and the
failure-injection tests.

Sharded execution: a network can act as a *gateway* for actors that live in
another shard of a parallel run (see :mod:`repro.sim.parallel`).  Remote
actors are declared with :meth:`Network.set_remote_routes`; sends addressed to
them go through the exact same latency/occupancy arithmetic as local sends but
land in a drainable outbox instead of the local event heap.  The parallel
engine drains outboxes at window barriers and injects them into the owning
shard with :meth:`Network.inject_remote`, preserving the computed delivery
timestamps.

Performance notes
-----------------
``send`` sits on the per-hop inner loop of every ring, so it avoids repeated
name and topology resolution:

* a flat ``(src_site, dst_site) → (latency, 1/bandwidth, shared channel)``
  table is precomputed from the topology at construction (site pairs without
  a defined link still raise ``KeyError`` on first use, as before);
* each directed actor pair resolves src/dst actors, sites and channel exactly
  once, into a ``__slots__`` connection record reused for every later send;
* fault checks are skipped entirely while no partition/isolation is active;
* the jitter RNG is only drawn when ``jitter_fraction > 0`` (the stream and
  draw order are unchanged, preserving seeded reproducibility).

``repro.sim.legacy.LegacyNetwork`` keeps the original implementation for
differential tests and the kernel benchmark.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, fields as dataclass_fields
from heapq import heappush
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .actor import Environment
from .kernel import SimulationError
from .topology import Topology

__all__ = [
    "Network",
    "MessageStats",
    "RemoteMessage",
    "message_size",
    "register_wire_type",
    "register_wire_reducer",
    "wire_fields",
    "encode_wire",
    "decode_wire",
]

#: One cross-shard message as it travels through a gateway outbox:
#: ``(delivery_time, src_actor, dst_actor, message)``.  The delivery time is
#: computed on the sending side with the full latency/occupancy model, so the
#: receiving shard only has to schedule the hand-off at that exact timestamp.
RemoteMessage = Tuple[float, str, str, Any]


#: Memo of message classes known not to define ``size_bytes``: the first
#: lookup pays the AttributeError, every later send of the same class takes a
#: set-membership test instead of re-raising per send.
_UNSIZED_TYPES: Set[type] = set()


def message_size(message: Any, default: int = 128) -> int:
    """Best-effort size (bytes) of a protocol message.

    Protocol messages define ``size_bytes`` (see :mod:`repro.net.message`);
    anything else falls back to ``default`` which approximates a small control
    message with TCP/IP overhead.  The fallback is memoized by message class
    so non-``Message`` payloads do not pay exception handling on every send
    (a class whose *instances* carry ``size_bytes`` inconsistently is treated
    as unsized from the first miss on).
    """
    if message.__class__ in _UNSIZED_TYPES:
        return default
    try:
        return int(message.size_bytes)
    except AttributeError:
        _UNSIZED_TYPES.add(message.__class__)
        return default


# --------------------------------------------------------------- wire codec
#
# Cross-shard traffic (see :mod:`repro.sim.parallel`) is pickled once per
# worker per barrier round.  Generic pickling of the protocol dataclasses is
# wasteful: every slotted dataclass instance ships its class-resolution
# machinery *and* a per-instance state dict (``{'field': value, ...}``) whose
# key strings repeat for every message in the window.  The wire codec strips
# that down to a positional tuple per instance:
#
#     (_wire_build, (cls, (value0, value1, ...)))
#
# Classes opt in with :func:`register_wire_type` (typically right below their
# definition); the field order is frozen at registration, so both sides of a
# pipe agree on the tuple layout by construction — the class itself travels
# by reference (module + qualname, memoized once per ``dumps``), which keeps
# the encoding independent of registration order across processes.  Decoding
# is plain ``pickle.loads``: ``_wire_build`` reconstructs the instance with
# ``object.__new__`` + ``__setattr__``, deliberately skipping ``__init__`` /
# ``__post_init__`` (cached derived fields such as ``size_bytes`` are part of
# the registered field tuple and restored verbatim).
#
# Payload interning falls out of the pickle memo: identical *objects* repeated
# across messages of one window (ring forwarding re-ships the same ``Decision``
# value to every successor) are encoded once and referenced thereafter,
# because the whole window is one ``dumps`` call.
#
# Objects of unregistered classes pickle exactly as before (the C pickler's
# ``reducer_override`` hook returns ``NotImplemented`` and the default path
# takes over), so the codec is transparently safe for arbitrary payloads.

#: Registered wire classes → their frozen positional field order.
_WIRE_FIELDS: Dict[type, Tuple[str, ...]] = {}

#: Classes with a bespoke wire form → their reduce hook.  Checked before the
#: positional-tuple path, so a class may upgrade from :func:`register_wire_type`
#: to a custom reducer without touching call sites.
_WIRE_REDUCERS: Dict[type, Any] = {}


def register_wire_reducer(cls: type, reduce_fn: Any) -> type:
    """Register a bespoke wire reduction for ``cls``.

    ``reduce_fn(obj)`` must return a pickle-style ``(callable, args)`` pair
    whose callable is an importable module-level function (it travels by
    reference).  Use this when a class benefits from structure-aware encoding
    beyond the generic positional tuple — e.g. run-length compression of
    repetitive collections.  Decoding stays plain ``pickle.loads``.
    """
    _WIRE_REDUCERS[cls] = reduce_fn
    return cls


def register_wire_type(cls: type, field_names: Optional[Sequence[str]] = None) -> type:
    """Register ``cls`` for compact positional encoding on the shard wire.

    ``field_names`` defaults to the dataclass field order (including
    ``init=False`` fields such as cached sizes).  Returns ``cls`` so it can be
    used as a decorator.  Classes with custom ``__reduce__`` semantics (e.g.
    singleton sentinels) must *not* be registered — positional rebuild would
    break their identity contract.
    """
    if field_names is None:
        names = tuple(f.name for f in dataclass_fields(cls))
    else:
        names = tuple(field_names)
    _WIRE_FIELDS[cls] = names
    return cls


def wire_fields(cls: type) -> Optional[Tuple[str, ...]]:
    """The registered positional field order of ``cls`` (``None`` if unregistered)."""
    return _WIRE_FIELDS.get(cls)


def _wire_build(cls: type, values: Tuple[Any, ...]) -> Any:
    """Rebuild a registered instance from its positional field tuple."""
    names = _WIRE_FIELDS.get(cls)
    if names is None:
        # The defining module registered the class at import time and the
        # class arrived by reference, so this only triggers for a class
        # registered with an explicit field list in some *other* module that
        # the decoding process has not imported.  Dataclass order is the
        # documented default, so fall back to it (and memoize).
        names = tuple(f.name for f in dataclass_fields(cls))
        _WIRE_FIELDS[cls] = names
    obj = object.__new__(cls)
    setattr_ = object.__setattr__
    for name, value in zip(names, values):
        setattr_(obj, name, value)
    return obj


class _WirePickler(pickle.Pickler):
    """Pickler whose reducer hook swaps registered classes to tuple form.

    Beyond the identity interning the pickle memo already provides, the
    reducer interns the ``(cls, values)`` argument tuple of *equal* instances
    whose fields are all hashable: the second equal instance encodes as a
    back-reference to the first one's argument tuple (a few bytes) instead of
    repeating every field.  Rate-leveled skip streams are the extreme case —
    thousands of distinct-but-equal ``ProposalValue(SKIP, ...)`` records per
    segment.  Decoding still constructs a fresh instance per ``REDUCE``, so
    object identity on the receiving side is exactly what legacy pickling
    produced (no aliasing of mutable protocol messages).
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._interned: Dict[Tuple[type, Tuple[Any, ...]], Tuple[Any, ...]] = {}

    def reducer_override(self, obj: Any) -> Any:  # noqa: D102 - pickle hook
        cls = obj.__class__
        reduce_fn = _WIRE_REDUCERS.get(cls)
        if reduce_fn is not None:
            return reduce_fn(obj)
        names = _WIRE_FIELDS.get(cls)
        if names is None:
            return NotImplemented
        values = tuple(getattr(obj, name) for name in names)
        try:
            key = (cls, values)
            args = self._interned.get(key)
            if args is None:
                self._interned[key] = args = key
        except TypeError:  # unhashable field (lists, batches): no interning
            args = (cls, values)
        return _wire_build, args


def encode_wire(payload: Any) -> bytes:
    """Encode one barrier window's payload as a compact pickle-5 frame."""
    buffer = io.BytesIO()
    _WirePickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(payload)
    return buffer.getvalue()


def decode_wire(frame: bytes) -> Any:
    """Decode a frame produced by :func:`encode_wire` (plain ``pickle.loads``)."""
    return pickle.loads(frame)


@dataclass
class MessageStats:
    """Aggregate statistics of everything the network carried."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0

    def record(self, size: int) -> None:
        """Record a successfully queued message of ``size`` bytes."""
        self.messages += 1
        self.bytes += size

    def record_drop(self) -> None:
        """Record a message dropped by a partition or dead destination."""
        self.dropped += 1


class _Channel:
    """Shared state of one directed site pair: link parameters + occupancy.

    Bandwidth is stored as-is (not as a reciprocal): delivery times must be
    bit-identical to the seed implementation — a reciprocal multiply differs
    from the division by an ulp often enough to reorder mathematically
    simultaneous events, breaking seed-differential determinism.
    """

    __slots__ = ("latency", "bandwidth", "free_at")

    def __init__(self, latency: float, bandwidth_bps: float) -> None:
        self.latency = latency
        self.bandwidth = bandwidth_bps
        #: next time the channel is free (FIFO occupancy)
        self.free_at = 0.0


class _Connection:
    """Resolved state of one directed actor pair, built on first send."""

    __slots__ = ("dst_actor", "src_site", "dst_site", "channel", "last_delivery_at",
                 "deliver")

    def __init__(self, dst_actor: Any, src_site: str, dst_site: str, channel: _Channel) -> None:
        self.dst_actor = dst_actor
        self.src_site = src_site
        self.dst_site = dst_site
        self.channel = channel
        #: last scheduled delivery time on this connection, enforcing TCP-like
        #: FIFO order even in the presence of jitter
        self.last_delivery_at = 0.0
        #: precomputed delivery closure stored into each heap entry (set by
        #: the owning network right after construction); ``None`` for gateway
        #: connections, whose messages leave through the outbox instead
        self.deliver = None


class Network:
    """Delivers messages between registered actors according to a topology."""

    #: Fixed per-message protocol overhead (TCP/IP + framing), in bytes.
    HEADER_BYTES = 66

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        jitter_fraction: float = 0.05,
    ) -> None:
        self.env = env
        self.topology = topology
        self.stats = MessageStats()
        #: aggregate stats collection; :meth:`disable_stats` turns it off for
        #: measurement runs that never read the counters (drops stay counted)
        self._collect_stats = True
        #: per-network memo of message classes without ``size_bytes``
        self._unsized_types: Set[type] = set()
        self._jitter = jitter_fraction
        self._rng = env.streams.stream("network.jitter")
        self._rng_random = self._rng.random
        self._simulator = env.simulator
        #: bound once: referenced on every send, stored into the heap entry
        self._deliver_callback = self._deliver
        #: flat link table: directed (src_site, dst_site) → shared channel
        self._channels: Dict[Tuple[str, str], _Channel] = {}
        #: resolved directed actor pairs
        self._connections: Dict[Tuple[str, str], _Connection] = {}
        #: severed directed site pairs
        self._cut_links: Set[Tuple[str, str]] = set()
        #: isolated sites (all traffic in/out dropped)
        self._isolated_sites: Set[str] = set()
        #: fast-path guard: True while any partition/isolation is active
        self._has_faults = False
        #: sharded execution (inert unless set_remote_routes is called):
        #: actors living in other shards, their resolved connections, and the
        #: outbox drained by the parallel engine at window barriers
        self._remote_sites: Dict[str, str] = {}
        self._remote_connections: Dict[Tuple[str, str], _Connection] = {}
        self._outbox: List[RemoteMessage] = []
        self._precompute_channels()
        env.network = self
        env.topology = topology

    def _precompute_channels(self) -> None:
        """Build the flat site-pair table for every link the topology defines.

        Pairs without a defined link are left out so that using them still
        raises ``KeyError`` lazily, exactly like the original per-send lookup.
        """
        names = [site.name for site in self.topology.sites()]
        for a in names:
            for b in names:
                try:
                    self._channels[(a, b)] = _Channel(
                        self.topology.latency(a, b), self.topology.bandwidth(a, b)
                    )
                except KeyError:
                    continue

    # ------------------------------------------------------------------ send
    def send(self, src: str, dst: str, message: Any) -> None:
        """Queue ``message`` from actor ``src`` to actor ``dst``.

        Messages to unknown or crashed destinations are counted as drops —
        like TCP connections to a dead host, the sender finds out through the
        protocol's own timeouts, not through the transport.
        """
        conn = self._connections.get((src, dst))
        if conn is None:
            conn = self._resolve(src, dst)
            if conn is None:
                # Not a local actor.  In a sharded run the destination may
                # live in another shard: route through the gateway outbox.
                if self._remote_sites:
                    rconn = self._remote_connections.get((src, dst))
                    if rconn is None and dst in self._remote_sites:
                        rconn = self._resolve_remote(src, dst)
                    if rconn is not None:
                        self._send_remote(rconn, src, dst, message)
                        return
                self.stats.record_drop()
                return
        # Fault filtering, skipped entirely while no partition/isolation is
        # active.  Blocked sends are dropped *before* the timing arithmetic:
        # they must not advance channel occupancy or draw jitter.
        if self._has_faults and self._blocked(conn.src_site, conn.dst_site):
            self.stats.record_drop()
            return
        # Wire size: protocol messages carry a cached ``size_bytes`` slot; the
        # default for anything else is memoized by class so the AttributeError
        # is paid once per type, not once per send.
        if message.__class__ in self._unsized_types:
            size = 128 + self.HEADER_BYTES
        else:
            try:
                size = message.size_bytes + self.HEADER_BYTES
            except AttributeError:
                self._unsized_types.add(message.__class__)
                size = 128 + self.HEADER_BYTES
        channel = conn.channel
        now = self._simulator._now
        # The arithmetic below mirrors the seed's _delivery_delay expression
        # term for term (same operations, same association) so that delivery
        # timestamps — and therefore event order — stay bit-identical; the
        # fast lane and the standard lane share it for the same reason (a run
        # with stats disabled replays the exact event sequence of a run with
        # stats enabled).
        propagation = channel.latency
        transmission = (size * 8.0) / channel.bandwidth
        jitter = 0.0
        if self._jitter > 0:
            jitter = propagation * self._jitter * self._rng_random()
        # FIFO channel occupancy: a message cannot start transmitting before
        # the previous message on the same directed site pair finished.
        free_at = channel.free_at
        start = free_at if free_at > now else now
        finish = start + transmission
        channel.free_at = finish
        delay = (finish - now) + propagation + jitter
        # Messages between the same two processes travel on one TCP
        # connection: never deliver them out of order, whatever the jitter.
        delivery_at = now + delay
        if delivery_at < conn.last_delivery_at:
            delivery_at = conn.last_delivery_at
        conn.last_delivery_at = delivery_at
        if self._collect_stats:
            # Stats accounting — the fast lane (``disable_stats``) skips it
            # for measurement runs that never read the counters.
            stats = self.stats
            stats.messages += 1
            stats.bytes += size
        # Inlined Simulator._post (one event per message): same entry layout
        # and the same ``now + delay`` arithmetic, one call less per send.
        # The callback is the connection's precomputed delivery closure, so
        # delivery runs without an intermediate dispatch frame.
        sim = self._simulator
        seq = sim._seq
        sim._seq = seq + 1
        heappush(
            sim._queue,
            (now + (delivery_at - now), 0, seq, conn.deliver, (src, message)),
        )

    def _resolve(self, src: str, dst: str) -> Optional[_Connection]:
        """Build the connection record for a directed actor pair.

        Returns ``None`` when the destination is unknown (the caller records
        the drop).  An unknown *source* raises ``KeyError`` as it always did —
        actors only send under their own registered name.
        """
        env = self.env
        dst_actor = env.get_actor(dst)
        if dst_actor is None:
            return None
        src_site = env.actor(src).site
        dst_site = dst_actor.site
        channel = self._channels.get((src_site, dst_site))
        if channel is None:
            # Site pair not in the precomputed table (e.g. a site added after
            # construction): resolve through the topology, raising KeyError
            # for undefined links exactly like the per-send lookup used to.
            channel = _Channel(
                self.topology.latency(src_site, dst_site),
                self.topology.bandwidth(src_site, dst_site),
            )
            self._channels[(src_site, dst_site)] = channel
        conn = _Connection(dst_actor, src_site, dst_site, channel)
        conn.deliver = self._make_deliver(dst_actor)
        self._connections[(src, dst)] = conn
        return conn

    def _make_deliver(self, actor: Any) -> Any:
        """Precompute the delivery closure stored into each heap entry.

        One closure per connection: delivery runs without an intermediate
        dispatch frame or connection-record lookups, and — because closure
        identity stands in for the connection — the kernel's same-actor batch
        dispatch groups entries exactly as it did when the shared ``_deliver``
        callback carried the connection as its first argument.
        """
        stats = self.stats

        def deliver(src: str, message: Any) -> None:
            if actor.alive:
                # Equivalent to actor.deliver(src, message) minus its (already
                # performed) aliveness check — one call layer less per delivery.
                actor.on_message(src, message)
            else:
                stats.dropped += 1

        return deliver

    def _deliver(self, conn: _Connection, src: str, message: Any) -> None:
        actor = conn.dst_actor
        if not actor.alive:
            self.stats.record_drop()
            return
        # Equivalent to actor.deliver(src, message) minus its (already
        # performed) aliveness check — one call layer less per delivery.
        actor.on_message(src, message)

    # ------------------------------------------------------------------ stats
    def disable_stats(self) -> None:
        """Stop aggregate message/byte accounting (the send fast lane).

        For measurement runs that never read :attr:`stats`: together with the
        no-fault guard this removes every branch the send path does not need.
        Drops (dead destination, partitions) are still counted.  The event
        trajectory is unaffected — a run with stats disabled delivers the
        exact same messages at the exact same times.
        """
        self._collect_stats = False

    def enable_stats(self) -> None:
        """Re-enable aggregate message/byte accounting."""
        self._collect_stats = True

    @property
    def stats_enabled(self) -> bool:
        """Whether aggregate message/byte accounting is active."""
        return self._collect_stats

    # ------------------------------------------------------- sharded gateway
    def set_remote_routes(self, actor_sites: Mapping[str, str]) -> None:
        """Declare actors living in other shards of a parallel run.

        ``actor_sites`` maps each remote actor name to the site hosting it.
        Sends addressed to those actors are queued in the gateway outbox with
        their computed delivery time instead of being counted as drops.  The
        mapping is additive; declaring no routes keeps the gateway inert (and
        the send hot path unchanged).
        """
        for name, site in actor_sites.items():
            self._remote_sites[name] = site

    @property
    def remote_routes(self) -> Dict[str, str]:
        """Currently declared remote actors (copy)."""
        return dict(self._remote_sites)

    def drain_outbox(self) -> List[RemoteMessage]:
        """Take every queued cross-shard message (in send order)."""
        out = self._outbox
        self._outbox = []
        return out

    @property
    def outbox_frontier(self) -> Optional[float]:
        """Earliest delivery time queued in the gateway outbox (``None`` if empty).

        Reported to the parallel engine at barriers as part of the event
        horizon: a shard that still holds undrained outbound messages must not
        let the adaptive window planner skip past their delivery times (the
        engine's own stepping drains the outbox before reporting, so this is
        only load-bearing for custom harness orderings).
        """
        out = self._outbox
        if not out:
            return None
        return min(record[0] for record in out)

    def inject_remote(self, records: Sequence[RemoteMessage]) -> None:
        """Schedule cross-shard messages handed over at a window barrier.

        Every record's delivery time must be at or after the current clock —
        the conservative lookahead guarantees this; a violation means the
        window length exceeded the minimum cross-shard latency and is raised
        loudly rather than silently reordering history.
        """
        sim = self._simulator
        now = sim._now
        for delivery_at, src, dst, message in records:
            delay = delivery_at - now
            if delay < 0:
                raise SimulationError(
                    f"lookahead violation: message {src}->{dst} was due at "
                    f"t={delivery_at:.9f} but the barrier ran at t={now:.9f}"
                )
            sim._post(delay, self._deliver_remote, (src, dst, message))

    def _resolve_remote(self, src: str, dst: str) -> Optional[_Connection]:
        """Build (and cache) the gateway connection for a remote destination."""
        dst_site = self._remote_sites.get(dst)
        if dst_site is None:
            return None
        src_site = self.env.actor(src).site
        channel = self._channels.get((src_site, dst_site))
        if channel is None:
            channel = _Channel(
                self.topology.latency(src_site, dst_site),
                self.topology.bandwidth(src_site, dst_site),
            )
            self._channels[(src_site, dst_site)] = channel
        conn = _Connection(None, src_site, dst_site, channel)
        self._remote_connections[(src, dst)] = conn
        return conn

    def _send_remote(self, conn: _Connection, src: str, dst: str, message: Any) -> None:
        """Queue a message for another shard using the local timing model.

        Term-for-term the same arithmetic as the local send path (propagation,
        transmission, jitter, FIFO channel occupancy, per-pair ordering), so a
        sharded run computes the same delivery timestamps the merged
        single-simulator run would.
        """
        if self._has_faults and self._blocked(conn.src_site, conn.dst_site):
            self.stats.record_drop()
            return
        size = getattr(message, "size_bytes", 128) + self.HEADER_BYTES
        channel = conn.channel
        now = self._simulator._now
        propagation = channel.latency
        transmission = (size * 8.0) / channel.bandwidth
        jitter = 0.0
        if self._jitter > 0:
            jitter = propagation * self._jitter * self._rng_random()
        free_at = channel.free_at
        start = free_at if free_at > now else now
        finish = start + transmission
        channel.free_at = finish
        delay = (finish - now) + propagation + jitter
        delivery_at = now + delay
        if delivery_at < conn.last_delivery_at:
            delivery_at = conn.last_delivery_at
        conn.last_delivery_at = delivery_at
        stats = self.stats
        stats.messages += 1
        stats.bytes += size
        self._outbox.append((delivery_at, src, dst, message))

    def _deliver_remote(self, src: str, dst: str, message: Any) -> None:
        actor = self.env.get_actor(dst)
        if actor is None or not actor.alive:
            self.stats.record_drop()
            return
        actor.on_message(src, message)

    # ----------------------------------------------------------------- model
    def _blocked(self, src_site: str, dst_site: str) -> bool:
        if src_site in self._isolated_sites or dst_site in self._isolated_sites:
            return True
        return (src_site, dst_site) in self._cut_links

    def _update_fault_flag(self) -> None:
        self._has_faults = bool(self._cut_links or self._isolated_sites)

    # ------------------------------------------------------------ inspection
    @property
    def cut_links(self) -> Set[Tuple[str, str]]:
        """Currently severed directed site pairs (copy)."""
        return set(self._cut_links)

    @property
    def isolated_sites(self) -> Set[str]:
        """Currently isolated sites (copy)."""
        return set(self._isolated_sites)

    @property
    def has_active_faults(self) -> bool:
        """Whether any partition or isolation is currently in force."""
        return self._has_faults

    # -------------------------------------------------------- fault injection
    def partition(self, site_a: str, site_b: str, bidirectional: bool = True) -> None:
        """Cut the link between two sites."""
        self._cut_links.add((site_a, site_b))
        if bidirectional:
            self._cut_links.add((site_b, site_a))
        self._update_fault_flag()

    def heal(self, site_a: str, site_b: str) -> None:
        """Restore the link between two sites."""
        self._cut_links.discard((site_a, site_b))
        self._cut_links.discard((site_b, site_a))
        self._update_fault_flag()

    def isolate_site(self, site: str) -> None:
        """Drop every message to or from ``site``."""
        self._isolated_sites.add(site)
        self._update_fault_flag()

    def rejoin_site(self, site: str) -> None:
        """Undo :meth:`isolate_site`."""
        self._isolated_sites.discard(site)
        self._update_fault_flag()

    def heal_all(self) -> None:
        """Remove every partition and isolation."""
        self._cut_links.clear()
        self._isolated_sites.clear()
        self._update_fault_flag()
