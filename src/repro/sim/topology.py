"""Deployment topologies: sites, regions and inter-site latencies.

The paper evaluates in two environments:

* *local experiments*: one datacenter, 4 servers on a 10 Gbps switch with a
  0.1 ms round-trip time;
* *global experiments*: Amazon EC2 large instances in four regions
  (eu-west-1, us-west-1, us-west-2, us-east-1).

:class:`Topology` captures both.  A topology is a set of named sites plus a
one-way latency matrix and per-link bandwidth.  Factory functions build the
two deployments used by the benchmark harness; the inter-region latencies are
of the order publicly reported for EC2 at the time of the paper (tens of
milliseconds inside a coast, ~70-80 ms across the US, ~140+ ms transatlantic
to the US west coast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Site", "Topology", "single_datacenter", "ec2_global", "EC2_REGIONS"]

#: Region names used by the paper's horizontal-scalability experiment (§8.4.2).
EC2_REGIONS = ("us-west-2", "us-west-1", "us-east-1", "eu-west-1")


@dataclass(frozen=True)
class Site:
    """A physical location hosting processes.

    Attributes
    ----------
    name:
        Unique site name (e.g. ``"dc1"`` or ``"eu-west-1"``).
    region:
        Region label used to group sites; for a single datacenter the region
        and the site coincide.
    """

    name: str
    region: str


class Topology:
    """Sites plus a pairwise one-way latency / bandwidth model.

    Latency between two sites is one-way in seconds; bandwidth is in bits per
    second and models the narrowest link on the path.  Intra-site messages use
    ``local_latency`` and ``local_bandwidth_bps``.
    """

    def __init__(
        self,
        local_latency: float = 0.00005,
        local_bandwidth_bps: float = 10e9,
    ) -> None:
        self._sites: Dict[str, Site] = {}
        self._latency: Dict[Tuple[str, str], float] = {}
        self._bandwidth: Dict[Tuple[str, str], float] = {}
        self.local_latency = local_latency
        self.local_bandwidth_bps = local_bandwidth_bps

    # ----------------------------------------------------------------- sites
    def add_site(self, name: str, region: Optional[str] = None) -> Site:
        """Add a site; the region defaults to the site name."""
        if name in self._sites:
            raise ValueError(f"site already exists: {name}")
        site = Site(name=name, region=region or name)
        self._sites[name] = site
        return site

    def site(self, name: str) -> Site:
        """Look up a site by name."""
        return self._sites[name]

    def sites(self) -> List[Site]:
        """All sites in insertion order."""
        return list(self._sites.values())

    def has_site(self, name: str) -> bool:
        """Whether a site with this name exists."""
        return name in self._sites

    # ----------------------------------------------------------------- links
    def set_link(
        self,
        a: str,
        b: str,
        one_way_latency: float,
        bandwidth_bps: float = 1e9,
        symmetric: bool = True,
    ) -> None:
        """Define the latency/bandwidth between two sites."""
        if a not in self._sites or b not in self._sites:
            raise KeyError("both sites must exist before defining a link")
        self._latency[(a, b)] = one_way_latency
        self._bandwidth[(a, b)] = bandwidth_bps
        if symmetric:
            self._latency[(b, a)] = one_way_latency
            self._bandwidth[(b, a)] = bandwidth_bps

    def latency(self, a: str, b: str) -> float:
        """One-way latency in seconds between sites ``a`` and ``b``."""
        if a == b:
            return self.local_latency
        try:
            return self._latency[(a, b)]
        except KeyError:
            raise KeyError(f"no link defined between {a} and {b}") from None

    def bandwidth(self, a: str, b: str) -> float:
        """Bandwidth in bits/second between sites ``a`` and ``b``."""
        if a == b:
            return self.local_bandwidth_bps
        return self._bandwidth.get((a, b), 1e9)

    def rtt(self, a: str, b: str) -> float:
        """Round-trip time in seconds between two sites."""
        return self.latency(a, b) + self.latency(b, a)

    def regions(self) -> List[str]:
        """Distinct region labels in site-insertion order."""
        seen: List[str] = []
        for site in self._sites.values():
            if site.region not in seen:
                seen.append(site.region)
        return seen

    def sites_in_region(self, region: str) -> List[Site]:
        """All sites belonging to ``region``."""
        return [s for s in self._sites.values() if s.region == region]


def single_datacenter(
    name: str = "dc1",
    rtt: float = 0.0001,
    bandwidth_bps: float = 10e9,
) -> Topology:
    """The paper's local cluster: one site, 0.1 ms RTT, 10 Gbps links.

    All processes are placed on the single site; the RTT parameter controls
    the intra-site latency (one-way latency is ``rtt / 2``).
    """
    topo = Topology(local_latency=rtt / 2.0, local_bandwidth_bps=bandwidth_bps)
    topo.add_site(name)
    return topo


#: Approximate one-way latencies (seconds) between the EC2 regions used in the
#: paper.  Values reflect the publicly observed order of magnitude circa 2014:
#: ~10 ms within the US west coast, ~35-40 ms west-east, ~70-75 ms Europe-east,
#: ~140-160 ms RTT Europe-west coast.
_EC2_ONE_WAY = {
    ("us-west-2", "us-west-1"): 0.010,
    ("us-west-2", "us-east-1"): 0.035,
    ("us-west-2", "eu-west-1"): 0.070,
    ("us-west-1", "us-east-1"): 0.037,
    ("us-west-1", "eu-west-1"): 0.074,
    ("us-east-1", "eu-west-1"): 0.040,
}


def ec2_global(
    regions: Iterable[str] = EC2_REGIONS,
    wan_bandwidth_bps: float = 0.5e9,
) -> Topology:
    """The paper's global deployment: one site per EC2 region.

    Parameters
    ----------
    regions:
        Which regions to instantiate (defaults to the four used in §8.4.2).
    wan_bandwidth_bps:
        Bandwidth of inter-region links (EC2 large instances of the era
        sustained well under 1 Gbps across regions).
    """
    regions = list(regions)
    unknown = [r for r in regions if r not in EC2_REGIONS]
    if unknown:
        raise ValueError(f"unknown EC2 regions: {unknown}")
    topo = Topology(local_latency=0.0003, local_bandwidth_bps=1e9)
    for region in regions:
        topo.add_site(region)
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            key = (a, b) if (a, b) in _EC2_ONE_WAY else (b, a)
            topo.set_link(a, b, _EC2_ONE_WAY[key], wan_bandwidth_bps)
    return topo
