"""Deterministic parallel execution of sharded simulations.

The single-process kernel caps every experiment at one core.  This module
adds the classic conservative parallel-discrete-event recipe on top of it:
a deployment whose rings are *independent* (no process participates in rings
of two different shards) is partitioned into **shards**, each shard runs its
own fast-path :class:`~repro.sim.kernel.Simulator` in a ``multiprocessing``
worker, and shards synchronise at **barriers**.

Correctness argument
--------------------
* The **lookahead** is the minimum cross-shard link latency.  A message sent
  at simulated time ``s`` can only be delivered at ``>= s + lookahead``
  (propagation alone exceeds the window), so exchanging outboxes at the
  barrier and injecting them before the next window starts never delivers a
  message late, provided no window is longer than the lookahead *measured
  from the earliest event that could send anything*.
  :meth:`Network.inject_remote` raises on a violation instead of reordering
  history.
* **Fixed horizons** (``horizon="fixed"``) step every shard by exactly one
  lookahead per barrier — the textbook protocol, one barrier per window
  whether or not anyone has work.
* **Adaptive event horizons** (``horizon="adaptive"``, the default) exchange
  each shard's :meth:`~repro.sim.kernel.Simulator.next_event_time` (plus its
  gateway outbox frontier) at every barrier.  The next window then ends at
  ``min(next local event anywhere, next in-flight cross-shard arrival) +
  lookahead``: nothing can execute — and therefore nothing can *send* —
  before that minimum ``T``, so any message generated inside the window is
  due at ``>= T + lookahead``, i.e. at or after the next barrier.  Idle and
  bursty phases are skipped in one hop instead of being ground through
  window by window; the event schedule itself is untouched, so delivery
  order is bit-identical to the fixed protocol (and barrier counts are the
  only observable difference — ``ParallelRunResult.windows`` records them).
* Within a shard, event order is exactly the single-process order: the same
  kernel, the same named RNG streams (streams are derived per name from the
  experiment seed, so a shard draws the same sequences it would draw in a
  merged run), the same channel-occupancy state (channels are per directed
  site pair and shards do not share sites).
* Cross-shard messages are routed in a canonical order (ascending source
  shard id, send order within a shard), so injection — and therefore the tie
  break among simultaneous events — does not depend on the worker count.

Consequently ``run_sharded(specs, workers=k)`` produces bit-identical
per-shard results for every ``k`` and either horizon mode; ``workers=1``
executes the same windowed schedule sequentially in-process and is the
reference "single-process engine" the differential tests compare against.
For deployments with **no** cross-shard traffic the result is additionally
bit-identical to running the merged deployment on one shared simulator (see
``tests/bench/test_parallel_differential.py``), provided network jitter is
disabled — jitter draws come from one shared stream in a merged run and
would otherwise interleave across shards.

Deployments whose rings share **learners only** (the paper's Figure 6/7
configurations: every replica subscribes to all rings) are sharded without
the shared learner: each ring component runs in its own shard and a
deterministic **merge stage** reconstructs the shared learner's round-robin
delivery order in the parent.  The merge is *streaming*: at every barrier
each shard ships the decision-stream **segments** recorded since the last
barrier — via :meth:`ShardHarness.drain_segments`, alongside the
``next_event_time``/outbox-frontier exchange — and the parent's
``segment_sink`` feeds them into a
:class:`~repro.multiring.merge.MergeCursor` (typically through a
:class:`~repro.core.smr.ReactiveReplicaHost`, so live service replicas apply
merged deliveries and answer clients *during* the run).  The shipped
segments are incarnation- and resume-position-tagged
(:class:`~repro.multiring.merge.RingSegment`), which makes the stream
fault-tolerant: a crashed in-shard learner's rings drop out of the cut (the
consumer's joint watermark stalls honestly), and the restarted
incarnation's re-emitted prefix is deduped by the cursor.  Shard sets that
exchange no messages can still request barriers purely as a streaming
cadence with ``segment_interval=`` — any interval is safe because no
cross-shard message exists to be late, and the event schedule is untouched
(windowed execution runs the exact same events as a single window).  See
:mod:`repro.multiring.sharding` and :mod:`repro.bench.parallel`.

Usage sketch::

    def build(payload):                      # top-level → picklable
        system = ...                         # construct one shard
        return ShardHarness(system.env)

    specs = [ShardSpec(i, build, payload_i) for i in range(4)]
    result = run_sharded(specs, workers=4)   # no cross traffic: one window
    result = run_sharded(specs, until=10.0, workers=4, lookahead=0.005)

Builders run *inside* the worker process; payloads must be picklable, the
simulated objects never cross process boundaries (only outbox messages and
the ``finalize()`` summaries do).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .actor import Environment
from .kernel import SimulationError
from .network import RemoteMessage

__all__ = [
    "ShardHarness",
    "ShardSpec",
    "ParallelRunResult",
    "run_sharded",
]


class ShardHarness:
    """One shard's deployment, as driven by the parallel engine.

    The default implementation wraps an :class:`~repro.sim.actor.Environment`
    and simply runs its kernel window by window.  Subclasses override
    :meth:`run_window` when a shard embeds its own measurement or scenario
    script (warm-up/measure phases, chaos epilogues) and :meth:`finalize` to
    return a picklable per-shard result to the parent process.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env

    # ------------------------------------------------------------- inventory
    def actor_sites(self) -> Dict[str, str]:
        """Map of this shard's actor names to their sites (for routing)."""
        return {actor.name: actor.site for actor in self.env.actors()}

    def set_remote_routes(self, routes: Dict[str, str]) -> None:
        """Teach this shard's network where other shards' actors live."""
        if routes and self.env.network is not None:
            self.env.network.set_remote_routes(routes)

    def start(self) -> None:
        """Start the shard's deployment (override; called exactly once).

        Runs after every shard is built and cross-shard routes are installed,
        but before the first window — the right place for
        ``AtomicMulticast.start()`` / actor ``on_start`` hooks, whose very
        first sends may already cross shards.
        """

    # -------------------------------------------------------------- stepping
    def run_window(self, end: Optional[float]) -> None:
        """Advance the shard to ``end`` (``None``: run the queue dry).

        Called once per window; with no lookahead configured it is called
        exactly once, and a subclass may run an arbitrary multi-phase script
        here (``end`` is then the overall horizon, possibly ``None``).
        """
        if end is None:
            self.env.run()
        else:
            self.env.simulator.run_window(end)

    def next_event_time(self) -> Optional[float]:
        """This shard's event horizon, reported at every barrier.

        The earliest pending work anywhere in the shard: the kernel's next
        live event, or — for custom harnesses that have not drained their
        gateway outbox yet — the earliest queued cross-shard delivery (the
        outbox frontier).  ``None`` means the shard is fully drained.  The
        adaptive barrier protocol takes the minimum over all shards (and all
        in-flight cross-shard messages) to place the next window.
        """
        horizon = self.env.simulator.next_event_time()
        network = self.env.network
        if network is not None:
            frontier = network.outbox_frontier
            if frontier is not None and (horizon is None or frontier < horizon):
                horizon = frontier
        return horizon

    def drain_outbox(self) -> List[RemoteMessage]:
        """Cross-shard messages sent during the last window (send order)."""
        network = self.env.network
        return network.drain_outbox() if network is not None else []

    def drain_segments(self) -> Optional[Any]:
        """Streaming payload to ship through this barrier (override).

        Called at every barrier, right after the window ran.  Harnesses
        feeding a parent-side streaming merge return ``(watermark,
        segments)`` — the shard's simulated time (everything at or before it
        has executed, so the shard's streams are complete up to it) plus the
        per-ring decision-stream segments recorded since the last barrier
        (``ring_id → RingSegment``, each tagged with the producer's
        incarnation and its resume position, possibly empty).  Rings whose
        learner is crashed are *omitted* — absence means "not covered up to
        this watermark", so the consumer's joint watermark stalls honestly;
        after a restart the bumped incarnation tells the consumer to expect
        a re-emitted prefix and dedup it.  The payload must be picklable;
        ``None`` (the default) ships nothing.
        """
        return None

    def inject(self, records: Sequence[RemoteMessage]) -> None:
        """Deliver messages handed over at the barrier into this shard."""
        if records:
            self.env.network.inject_remote(records)

    # --------------------------------------------------------------- results
    def finalize(self) -> Any:
        """Picklable per-shard result returned to the parent (override)."""
        return None

    @property
    def processed_events(self) -> int:
        """Events this shard's kernel has executed so far."""
        return self.env.simulator.processed_events


@dataclass(frozen=True)
class ShardSpec:
    """Recipe for one shard: a top-level builder plus its picklable payload.

    ``build(payload)`` runs inside the worker process and returns the shard's
    :class:`ShardHarness`.  The builder must be a module-level callable so the
    spec can cross the ``multiprocessing`` boundary.
    """

    shard_id: int
    build: Callable[[Any], ShardHarness]
    payload: Any = None


@dataclass
class ParallelRunResult:
    """Outcome of one :func:`run_sharded` call."""

    #: per-shard ``finalize()`` results, keyed by shard id
    results: Dict[int, Any]
    #: wall-clock seconds of the whole run (build + windows + finalize)
    wall_clock: float
    #: number of barrier windows executed (the barrier count)
    windows: int
    #: cross-shard messages exchanged at barriers
    cross_messages: int
    #: per-shard kernel event counts
    events: Dict[int, int] = field(default_factory=dict)
    #: worker processes actually used (1 = in-process reference engine)
    workers: int = 1
    #: barrier protocol used ("adaptive" or "fixed"; windowed runs only)
    horizon: str = "adaptive"

    @property
    def total_events(self) -> int:
        """Events executed across every shard."""
        return sum(self.events.values())

    @property
    def barrier_count(self) -> int:
        """Alias of :attr:`windows`, the number of barriers executed."""
        return self.windows


# ---------------------------------------------------------------------------
# Worker-side execution (shared by the in-process and subprocess paths)
# ---------------------------------------------------------------------------

class _ShardSet:
    """Builds and steps a set of shards, in ascending shard-id order."""

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        self.harnesses: Dict[int, ShardHarness] = {}
        for spec in sorted(specs, key=lambda s: s.shard_id):
            self.harnesses[spec.shard_id] = spec.build(spec.payload)

    def actor_sites(self) -> Dict[int, Dict[str, str]]:
        return {sid: h.actor_sites() for sid, h in self.harnesses.items()}

    def set_routes(self, routes_by_shard: Dict[int, Dict[str, str]]) -> None:
        for sid, routes in routes_by_shard.items():
            self.harnesses[sid].set_remote_routes(routes)

    def start(self) -> Tuple[
        Dict[int, List[RemoteMessage]],
        Dict[int, Optional[float]],
        Dict[int, Any],
    ]:
        """Start every shard; returns (t=0 cross messages, horizons, segments)."""
        outbound: Dict[int, List[RemoteMessage]] = {}
        horizons: Dict[int, Optional[float]] = {}
        segments: Dict[int, Any] = {}
        for sid in sorted(self.harnesses):
            harness = self.harnesses[sid]
            harness.start()
            out = harness.drain_outbox()
            if out:
                outbound[sid] = out
            horizons[sid] = harness.next_event_time()
            shipped = harness.drain_segments()
            if shipped is not None:
                segments[sid] = shipped
        return outbound, horizons, segments

    def run_window(
        self,
        end: Optional[float],
        inbound: Dict[int, List[RemoteMessage]],
    ) -> Tuple[
        Dict[int, List[RemoteMessage]],
        Dict[int, int],
        Dict[int, Optional[float]],
        Dict[int, Any],
    ]:
        outbound: Dict[int, List[RemoteMessage]] = {}
        events: Dict[int, int] = {}
        horizons: Dict[int, Optional[float]] = {}
        segments: Dict[int, Any] = {}
        for sid in sorted(self.harnesses):
            harness = self.harnesses[sid]
            harness.inject(inbound.get(sid, ()))
            harness.run_window(end)
            out = harness.drain_outbox()
            if out:
                outbound[sid] = out
            events[sid] = harness.processed_events
            horizons[sid] = harness.next_event_time()
            shipped = harness.drain_segments()
            if shipped is not None:
                segments[sid] = shipped
        return outbound, events, horizons, segments

    def finalize(self) -> Dict[int, Any]:
        return {sid: h.finalize() for sid, h in self.harnesses.items()}


def _worker_main(conn, specs: Sequence[ShardSpec]) -> None:
    """Entry point of one worker process: build shards, serve barrier rounds."""
    try:
        shard_set = _ShardSet(specs)
        conn.send(("ready", shard_set.actor_sites()))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "routes":
                shard_set.set_routes(command[1])
                conn.send(("ok",))
            elif op == "start":
                outbound, horizons, segments = shard_set.start()
                conn.send(("out", outbound, {}, horizons, segments))
            elif op == "window":
                outbound, events, horizons, segments = shard_set.run_window(
                    command[1], command[2]
                )
                conn.send(("out", outbound, events, horizons, segments))
            elif op == "finish":
                conn.send(("result", shard_set.finalize()))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
    except Exception as exc:  # surface worker crashes with their traceback
        import traceback

        try:
            conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
        except Exception:  # pragma: no cover - parent already gone
            pass


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------

def _build_routing(
    sites_by_shard: Dict[int, Dict[str, str]],
    require_unique: bool,
) -> Tuple[Dict[str, int], Dict[int, Dict[str, str]]]:
    """Global actor→shard map plus, per shard, the remote actor→site routes.

    Actor names appearing in several shards are unroutable; that is fine for
    embarrassingly parallel runs (no cross traffic) but an error as soon as a
    lookahead — and therefore routing — is requested.
    """
    owner: Dict[str, int] = {}
    ambiguous = set()
    for sid in sorted(sites_by_shard):
        for name in sites_by_shard[sid]:
            if name in owner:
                ambiguous.add(name)
            else:
                owner[name] = sid
    if ambiguous and require_unique:
        raise SimulationError(
            "cross-shard routing needs globally unique actor names; duplicated: "
            f"{sorted(ambiguous)[:5]}"
        )
    for name in ambiguous:
        owner.pop(name, None)
    routes_by_shard: Dict[int, Dict[str, str]] = {}
    for sid in sorted(sites_by_shard):
        routes_by_shard[sid] = {
            name: sites_by_shard[other][name]
            for name, other in owner.items()
            if other != sid
        }
    return owner, routes_by_shard


def _route_outbound(
    outbound_by_shard: Dict[int, List[RemoteMessage]],
    owner: Dict[str, int],
) -> Tuple[Dict[int, List[RemoteMessage]], int]:
    """Turn per-source outboxes into per-destination inboxes, canonically.

    Messages are processed in ascending source-shard order, preserving each
    shard's send order — the same total order regardless of how shards were
    spread over workers, which keeps injection (and simultaneous-event tie
    breaks) independent of the worker count.
    """
    inbound: Dict[int, List[RemoteMessage]] = {}
    count = 0
    for sid in sorted(outbound_by_shard):
        for record in outbound_by_shard[sid]:
            dst_shard = owner.get(record[2])
            if dst_shard is None:
                raise SimulationError(
                    f"cross-shard message to unknown actor {record[2]!r}"
                )
            inbound.setdefault(dst_shard, []).append(record)
            count += 1
    return inbound, count


def run_sharded(
    specs: Sequence[ShardSpec],
    until: Optional[float] = None,
    workers: int = 1,
    lookahead: Optional[float] = None,
    mp_context: Optional[str] = None,
    horizon: str = "adaptive",
    segment_interval: Optional[float] = None,
    segment_sink: Optional[Callable[[Dict[int, Any]], None]] = None,
) -> ParallelRunResult:
    """Execute shards under conservative barrier synchronisation.

    Parameters
    ----------
    specs:
        One :class:`ShardSpec` per shard; shard ids must be unique.
    until:
        Simulation horizon.  Required when ``lookahead`` is set; with no
        lookahead it may be ``None`` (each shard runs its queue dry — the
        embarrassingly parallel case).
    workers:
        Worker processes.  ``1`` runs every shard sequentially in-process —
        the *single-process reference engine* used by the differential tests;
        higher counts fork workers and assign shards round-robin.  Clamped to
        the shard count.
    lookahead:
        Safe window length in simulated seconds — must not exceed the minimum
        cross-shard message latency (see
        :func:`repro.multiring.sharding.plan_shards`, which computes it from
        the topology).  ``None`` means the shards exchange no messages and
        run in a single window.
    mp_context:
        ``multiprocessing`` start method; defaults to ``fork`` when
        available.
    horizon:
        Barrier protocol for windowed runs.  ``"adaptive"`` (default)
        advances every barrier to the global event horizon —
        ``min(next local event, next cross-shard arrival) + lookahead`` —
        skipping idle stretches in one hop; ``"fixed"`` steps by exactly one
        lookahead per barrier (the textbook protocol).  Both execute the
        identical event schedule; only the barrier count differs.
    segment_interval:
        Streaming cadence in simulated seconds for shard sets that exchange
        **no** cross-shard messages: barriers are run purely so shards can
        ship their decision-stream segments (any interval is safe — nothing
        is in flight to be late — and windowed execution runs the exact same
        events as a single window).  Requires ``until``; ignored when a
        ``lookahead`` already drives barriers.  Cross-shard traffic without
        a lookahead still raises, exactly as in the single-window case.
    segment_sink:
        Callback invoked in the parent at every barrier that shipped
        segments, with ``{shard_id: payload}`` where ``payload`` is whatever
        each shard's :meth:`ShardHarness.drain_segments` returned.  The sink
        runs between windows — the place to feed a streaming merge cursor /
        reactive service replicas.  Shards are always presented in ascending
        id order downstream of the canonical routing, so the sink sees a
        worker-count-independent sequence.

    Returns
    -------
    ParallelRunResult
        Per-shard ``finalize()`` results plus run accounting
        (:attr:`ParallelRunResult.windows` is the barrier count).
    """
    specs = list(specs)
    if not specs:
        raise ValueError("need at least one shard")
    ids = [spec.shard_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate shard ids: {sorted(ids)}")
    if horizon not in ("adaptive", "fixed"):
        raise ValueError(f"horizon must be 'adaptive' or 'fixed', not {horizon!r}")
    if lookahead is not None:
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        if until is None:
            raise ValueError("windowed execution needs an explicit horizon (until=...)")
    if segment_interval is not None:
        if segment_interval <= 0:
            raise ValueError("segment_interval must be positive")
        if until is None:
            raise ValueError("segment streaming needs an explicit horizon (until=...)")
    workers = max(1, min(int(workers), len(specs)))

    start = time.perf_counter()
    if workers == 1:
        results, windows, cross, events = _run_inprocess(
            specs, until, lookahead, horizon, segment_interval, segment_sink
        )
    else:
        results, windows, cross, events = _run_multiprocess(
            specs, until, lookahead, horizon, workers, mp_context,
            segment_interval, segment_sink,
        )
    wall = time.perf_counter() - start
    return ParallelRunResult(
        results=results,
        wall_clock=wall,
        windows=windows,
        cross_messages=cross,
        events=events,
        workers=workers,
        horizon=horizon,
    )


def _min_horizon(
    horizons: Dict[int, Optional[float]],
    inbound: Dict[int, List[RemoteMessage]],
) -> Optional[float]:
    """Earliest pending work anywhere: local events or in-flight arrivals.

    ``None`` means the whole deployment is drained and nothing is in flight —
    no event can ever fire again.
    """
    minimum: Optional[float] = None
    for t in horizons.values():
        if t is not None and (minimum is None or t < minimum):
            minimum = t
    for records in inbound.values():
        for record in records:
            if minimum is None or record[0] < minimum:
                minimum = record[0]
    return minimum


def _check_unwindowed_leftovers(
    inbound: Dict[int, List[RemoteMessage]],
    lookahead: Optional[float],
) -> None:
    """Reject cross-shard traffic that a lookahead-less run could not deliver.

    With a lookahead, messages still in flight after the final window are
    simply due beyond the horizon — the merged run would not deliver them
    either.  Without one the windows (a single one, or the streaming cadence
    of ``segment_interval``) give no timeliness guarantee, so *any* routed
    message means a misconfigured plan (shards that talk need a lookahead),
    and losing or reordering history silently is the one thing this engine
    promises never to do.
    """
    if lookahead is None and inbound:
        total = sum(len(records) for records in inbound.values())
        example = next(iter(inbound.values()))[0]
        raise SimulationError(
            f"{total} cross-shard message(s) were sent but the run has no "
            f"lookahead, e.g. {example[1]}->{example[2]} due "
            f"at t={example[0]:.6f}; pass lookahead= to run_sharded or plan "
            "shards so they do not communicate"
        )


def _execute_rounds(
    transport,
    owner: Dict[str, int],
    until: Optional[float],
    lookahead: Optional[float],
    horizon: str,
    segment_interval: Optional[float] = None,
    segment_sink: Optional[Callable[[Dict[int, Any]], None]] = None,
) -> Tuple[int, int, Dict[int, int]]:
    """Drive the barrier protocol over an abstract shard transport.

    ``transport`` provides ``start() -> (outbound, horizons, segments)`` and
    ``window(end, inbound) -> (outbound, events, horizons, segments)``; the
    in-process and multiprocessing engines differ only in how those rounds
    are executed, so the barrier planning — and therefore the window
    schedule — is shared verbatim between them (a prerequisite for
    worker-count invariance).  Segments shipped at a barrier go to
    ``segment_sink`` before the next window starts, so a streaming merge
    stays exactly one barrier behind the shards.
    """
    ship = segment_sink if segment_sink is not None else (lambda segments: None)
    outbound, horizons, segments = transport.start()
    if segments:
        ship(segments)
    inbound, cross = _route_outbound(outbound, owner)
    windows = 0
    events: Dict[int, int] = {}

    # The window pitch: with cross-shard traffic the lookahead bounds how far
    # a window may safely reach past the event frontier; without it, barriers
    # exist only as a segment-streaming cadence and any pitch is safe.
    pitch = lookahead if lookahead is not None else segment_interval
    if pitch is None:
        # Single window: the embarrassingly parallel case (until may be None).
        outbound, events, horizons, segments = transport.window(until, inbound)
        if segments:
            ship(segments)
        inbound, moved = _route_outbound(outbound, owner)
        cross += moved
        windows = 1
        _check_unwindowed_leftovers(inbound, lookahead)
        return windows, cross, events

    now = 0.0  # every shard's kernel starts at t=0 and lands exactly on `now`
    while now < until:
        if horizon == "fixed":
            end = min(now + pitch, until)
        else:
            frontier = _min_horizon(horizons, inbound)
            if frontier is None:
                # Nothing pending anywhere: land every clock on the horizon.
                end = until
            else:
                # Nothing can execute — and therefore nothing can send —
                # before `frontier`, so a window reaching frontier+lookahead
                # is exactly as safe as a fixed window of one lookahead.
                end = min(max(frontier, now) + pitch, until)
        outbound, events, horizons, segments = transport.window(end, inbound)
        if segments:
            ship(segments)
        inbound, moved = _route_outbound(outbound, owner)
        cross += moved
        _check_unwindowed_leftovers(inbound, lookahead)
        windows += 1
        now = end
    return windows, cross, events


class _InProcessTransport:
    """Round executor running every shard sequentially in this process."""

    def __init__(self, shard_set: _ShardSet) -> None:
        self._shards = shard_set

    def start(self):
        return self._shards.start()

    def window(self, end, inbound):
        return self._shards.run_window(end, inbound)


def _run_inprocess(specs, until, lookahead, horizon, segment_interval, segment_sink):
    shard_set = _ShardSet(specs)
    sites = shard_set.actor_sites()
    owner, routes = _build_routing(sites, require_unique=lookahead is not None)
    shard_set.set_routes(routes)
    windows, cross, events = _execute_rounds(
        _InProcessTransport(shard_set), owner, until, lookahead, horizon,
        segment_interval, segment_sink,
    )
    return shard_set.finalize(), windows, cross, events


class _PipeTransport:
    """Round executor broadcasting barrier rounds to worker processes."""

    def __init__(self, pipes, shard_worker: Dict[int, int], recv) -> None:
        self._pipes = pipes
        self._shard_worker = shard_worker
        self._recv = recv

    def start(self):
        outbound: Dict[int, List[RemoteMessage]] = {}
        horizons: Dict[int, Optional[float]] = {}
        segments: Dict[int, Any] = {}
        for conn in self._pipes:
            conn.send(("start",))
        for conn in self._pipes:
            _, worker_out, _, worker_horizons, worker_segments = self._recv(conn)
            outbound.update(worker_out)
            horizons.update(worker_horizons)
            segments.update(worker_segments)
        return outbound, horizons, segments

    def window(self, end, inbound):
        for widx, conn in enumerate(self._pipes):
            conn.send(("window", end, {
                sid: msgs for sid, msgs in inbound.items()
                if self._shard_worker[sid] == widx
            }))
        outbound: Dict[int, List[RemoteMessage]] = {}
        events: Dict[int, int] = {}
        horizons: Dict[int, Optional[float]] = {}
        segments: Dict[int, Any] = {}
        for conn in self._pipes:
            _, worker_out, worker_events, worker_horizons, worker_segments = self._recv(conn)
            outbound.update(worker_out)
            events.update(worker_events)
            horizons.update(worker_horizons)
            segments.update(worker_segments)
        return outbound, events, horizons, segments


def _run_multiprocess(
    specs, until, lookahead, horizon, workers, mp_context,
    segment_interval, segment_sink,
):
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(mp_context)

    ordered = sorted(specs, key=lambda s: s.shard_id)
    assignment: List[List[ShardSpec]] = [[] for _ in range(workers)]
    for index, spec in enumerate(ordered):
        assignment[index % workers].append(spec)

    pipes = []
    procs = []
    try:
        for worker_specs in assignment:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn, worker_specs))
            proc.daemon = True
            proc.start()
            child_conn.close()
            pipes.append(parent_conn)
            procs.append(proc)

        def recv(conn):
            reply = conn.recv()
            if reply[0] == "error":
                raise RuntimeError(f"shard worker failed:\n{reply[1]}")
            return reply

        sites: Dict[int, Dict[str, str]] = {}
        shard_worker: Dict[int, int] = {}
        for widx, conn in enumerate(pipes):
            _, worker_sites = recv(conn)
            sites.update(worker_sites)
            for sid in worker_sites:
                shard_worker[sid] = widx
        owner, routes = _build_routing(sites, require_unique=lookahead is not None)
        for widx, conn in enumerate(pipes):
            conn.send(("routes", {
                sid: routes[sid] for sid, w in shard_worker.items() if w == widx
            }))
        for conn in pipes:
            recv(conn)

        transport = _PipeTransport(pipes, shard_worker, recv)
        windows, cross, events = _execute_rounds(
            transport, owner, until, lookahead, horizon,
            segment_interval, segment_sink,
        )

        results: Dict[int, Any] = {}
        for conn in pipes:
            conn.send(("finish",))
        for conn in pipes:
            _, worker_results = recv(conn)
            results.update(worker_results)
        return results, windows, cross, events
    finally:
        for conn in pipes:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
