"""Deterministic parallel execution of sharded simulations.

The single-process kernel caps every experiment at one core.  This module
adds the classic conservative parallel-discrete-event recipe on top of it:
a deployment whose rings are *independent* (no process participates in rings
of two different shards) is partitioned into **shards**, each shard runs its
own fast-path :class:`~repro.sim.kernel.Simulator` in a ``multiprocessing``
worker, and shards synchronise at **barriers**.

Correctness argument
--------------------
* The **lookahead** is the minimum cross-shard link latency.  A message sent
  at simulated time ``s`` can only be delivered at ``>= s + lookahead``
  (propagation alone exceeds the window), so exchanging outboxes at the
  barrier and injecting them before the next window starts never delivers a
  message late, provided no window is longer than the lookahead *measured
  from the earliest event that could send anything*.
  :meth:`Network.inject_remote` raises on a violation instead of reordering
  history.
* **Fixed horizons** (``horizon="fixed"``) step every shard by exactly one
  lookahead per barrier — the textbook protocol, one barrier per window
  whether or not anyone has work.
* **Adaptive event horizons** (``horizon="adaptive"``, the default) exchange
  each shard's :meth:`~repro.sim.kernel.Simulator.next_event_time` (plus its
  gateway outbox frontier) at every barrier.  The next window then ends at
  ``min(next local event anywhere, next in-flight cross-shard arrival) +
  lookahead``: nothing can execute — and therefore nothing can *send* —
  before that minimum ``T``, so any message generated inside the window is
  due at ``>= T + lookahead``, i.e. at or after the next barrier.  Idle and
  bursty phases are skipped in one hop instead of being ground through
  window by window; the event schedule itself is untouched, so delivery
  order is bit-identical to the fixed protocol (and barrier counts are the
  only observable difference — ``ParallelRunResult.windows`` records them).
* Within a shard, event order is exactly the single-process order: the same
  kernel, the same named RNG streams (streams are derived per name from the
  experiment seed, so a shard draws the same sequences it would draw in a
  merged run), the same channel-occupancy state (channels are per directed
  site pair and shards do not share sites).
* Cross-shard messages are routed in a canonical order (ascending source
  shard id, send order within a shard), so injection — and therefore the tie
  break among simultaneous events — does not depend on the worker count.

Consequently ``run_sharded(specs, workers=k)`` produces bit-identical
per-shard results for every ``k`` and either horizon mode; ``workers=1``
executes the same windowed schedule sequentially in-process and is the
reference "single-process engine" the differential tests compare against.
For deployments with **no** cross-shard traffic the result is additionally
bit-identical to running the merged deployment on one shared simulator (see
``tests/bench/test_parallel_differential.py``), provided network jitter is
disabled — jitter draws come from one shared stream in a merged run and
would otherwise interleave across shards.

Deployments whose rings share **learners only** (the paper's Figure 6/7
configurations: every replica subscribes to all rings) are sharded without
the shared learner: each ring component runs in its own shard and a
deterministic **merge stage** reconstructs the shared learner's round-robin
delivery order in the parent.  The merge is *streaming*: at every barrier
each shard ships the decision-stream **segments** recorded since the last
barrier — via :meth:`ShardHarness.drain_segments`, alongside the
``next_event_time``/outbox-frontier exchange — and the parent's
``segment_sink`` feeds them into a
:class:`~repro.multiring.merge.MergeCursor` (typically through a
:class:`~repro.core.smr.ReactiveReplicaHost`, so live service replicas apply
merged deliveries and answer clients *during* the run).  The shipped
segments are incarnation- and resume-position-tagged
(:class:`~repro.multiring.merge.RingSegment`), which makes the stream
fault-tolerant: a crashed in-shard learner's rings drop out of the cut (the
consumer's joint watermark stalls honestly), and the restarted
incarnation's re-emitted prefix is deduped by the cursor.  Shard sets that
exchange no messages can still request barriers purely as a streaming
cadence with ``segment_interval=`` — any interval is safe because no
cross-shard message exists to be late, and the event schedule is untouched
(windowed execution runs the exact same events as a single window).  See
:mod:`repro.multiring.sharding` and :mod:`repro.bench.parallel`.

Barrier-plane mechanics (round 2)
---------------------------------
The multiprocess transport is engineered so the synchronisation itself stays
off the critical path without ever touching the event schedule:

* **Compact wire framing** — each worker's barrier traffic is one
  ``encode_wire`` frame per round (:func:`repro.sim.network.encode_wire`:
  highest-protocol pickle with registered protocol dataclasses in positional
  tuple form and window-level payload interning via the pickle memo).  A
  window broadcast to a worker with no inbound messages is the bare
  two-tuple ``("window", end)`` — no per-shard dict is allocated or shipped.
  ``ParallelRunResult.ipc_bytes``/``ipc_messages`` count both directions as
  framed on the pipes; ``wire_codec=False`` falls back to default-protocol
  pickling of the identical payloads (the codec differential test's
  baseline).
* **Overlapped merge stage** — barrier segments are double-buffered: the
  parent broadcasts window ``N+1`` *before* feeding window ``N``'s segments
  to ``segment_sink``, so reactive ingest runs while the workers execute.
  Segments are still applied strictly in barrier order and, as before, the
  sink for window ``N`` completes before any window-``N+1`` segment is even
  decoded — consumer state (``MergeCursor``/``ReactiveReplicaHost``) sees
  the exact sequence the serial engine produced.  ``merge_stage_s`` measures
  sink time wherever it runs; ``merge_overlap_s`` is the (conservatively
  credited) portion spent while at least one worker was still executing,
  i.e. ingest time that no longer extends the wall clock.
* **Horizon-aware skips** — in adaptive mode with a lookahead and no
  streaming sink, a worker whose every shard reported a horizon strictly
  beyond the window end and that has no inbound messages is not woken at
  all: an empty window is a pure no-op (the kernel executes nothing, sends
  nothing, cuts nothing), and ``run_window`` is monotonic, so the worker's
  next real window catches it up identically.  The worker owning the global
  event frontier always has ``horizon <= end`` and therefore always runs
  (no livelock), and the final window (``end == until``) is never skipped,
  so harness scripts keyed on reaching the horizon still complete.  Skips
  are counted in ``worker_windows_skipped``.
* **Out-of-order collection** — replies are absorbed as workers finish
  (``multiprocessing.connection.wait``) instead of in fixed pipe order, so
  decoding early finishers overlaps the stragglers and a worker that dies
  mid-window surfaces immediately as an error naming the worker and its
  shards (its pipe hits EOF) rather than hanging the round.  Outboxes are
  still routed by :func:`_route_outbound`'s canonical ascending-shard order
  afterwards, so injection stays independent of arrival order.

Usage sketch::

    def build(payload):                      # top-level → picklable
        system = ...                         # construct one shard
        return ShardHarness(system.env)

    specs = [ShardSpec(i, build, payload_i) for i in range(4)]
    result = run_sharded(specs, workers=4)   # no cross traffic: one window
    result = run_sharded(specs, until=10.0, workers=4, lookahead=0.005)

Builders run *inside* the worker process; payloads must be picklable, the
simulated objects never cross process boundaries (only outbox messages and
the ``finalize()`` summaries do).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .actor import Environment
from .kernel import SimulationError
from .network import RemoteMessage, encode_wire

__all__ = [
    "ShardHarness",
    "ShardSpec",
    "ParallelRunResult",
    "run_sharded",
]


class ShardHarness:
    """One shard's deployment, as driven by the parallel engine.

    The default implementation wraps an :class:`~repro.sim.actor.Environment`
    and simply runs its kernel window by window.  Subclasses override
    :meth:`run_window` when a shard embeds its own measurement or scenario
    script (warm-up/measure phases, chaos epilogues) and :meth:`finalize` to
    return a picklable per-shard result to the parent process.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env

    # ------------------------------------------------------------- inventory
    def actor_sites(self) -> Dict[str, str]:
        """Map of this shard's actor names to their sites (for routing)."""
        return {actor.name: actor.site for actor in self.env.actors()}

    def set_remote_routes(self, routes: Dict[str, str]) -> None:
        """Teach this shard's network where other shards' actors live."""
        if routes and self.env.network is not None:
            self.env.network.set_remote_routes(routes)

    def start(self) -> None:
        """Start the shard's deployment (override; called exactly once).

        Runs after every shard is built and cross-shard routes are installed,
        but before the first window — the right place for
        ``AtomicMulticast.start()`` / actor ``on_start`` hooks, whose very
        first sends may already cross shards.
        """

    # -------------------------------------------------------------- stepping
    def run_window(self, end: Optional[float]) -> None:
        """Advance the shard to ``end`` (``None``: run the queue dry).

        Called once per window; with no lookahead configured it is called
        exactly once, and a subclass may run an arbitrary multi-phase script
        here (``end`` is then the overall horizon, possibly ``None``).
        """
        if end is None:
            self.env.run()
        else:
            self.env.simulator.run_window(end)

    def next_event_time(self) -> Optional[float]:
        """This shard's event horizon, reported at every barrier.

        The earliest pending work anywhere in the shard: the kernel's next
        live event, or — for custom harnesses that have not drained their
        gateway outbox yet — the earliest queued cross-shard delivery (the
        outbox frontier).  ``None`` means the shard is fully drained.  The
        adaptive barrier protocol takes the minimum over all shards (and all
        in-flight cross-shard messages) to place the next window.
        """
        horizon = self.env.simulator.next_event_time()
        network = self.env.network
        if network is not None:
            frontier = network.outbox_frontier
            if frontier is not None and (horizon is None or frontier < horizon):
                horizon = frontier
        return horizon

    def drain_outbox(self) -> List[RemoteMessage]:
        """Cross-shard messages sent during the last window (send order)."""
        network = self.env.network
        return network.drain_outbox() if network is not None else []

    def drain_segments(self) -> Optional[Any]:
        """Streaming payload to ship through this barrier (override).

        Called at every barrier, right after the window ran.  Harnesses
        feeding a parent-side streaming merge return ``(watermark,
        segments)`` — the shard's simulated time (everything at or before it
        has executed, so the shard's streams are complete up to it) plus the
        per-ring decision-stream segments recorded since the last barrier
        (``ring_id → RingSegment``, each tagged with the producer's
        incarnation and its resume position, possibly empty).  Rings whose
        learner is crashed are *omitted* — absence means "not covered up to
        this watermark", so the consumer's joint watermark stalls honestly;
        after a restart the bumped incarnation tells the consumer to expect
        a re-emitted prefix and dedup it.  The payload must be picklable;
        ``None`` (the default) ships nothing.
        """
        return None

    def inject(self, records: Sequence[RemoteMessage]) -> None:
        """Deliver messages handed over at the barrier into this shard."""
        if records:
            self.env.network.inject_remote(records)

    # --------------------------------------------------------------- results
    def finalize(self) -> Any:
        """Picklable per-shard result returned to the parent (override)."""
        return None

    @property
    def processed_events(self) -> int:
        """Events this shard's kernel has executed so far."""
        return self.env.simulator.processed_events


@dataclass(frozen=True)
class ShardSpec:
    """Recipe for one shard: a top-level builder plus its picklable payload.

    ``build(payload)`` runs inside the worker process and returns the shard's
    :class:`ShardHarness`.  The builder must be a module-level callable so the
    spec can cross the ``multiprocessing`` boundary.

    ``weight`` is the shard's expected relative load (e.g. its actor or
    client count, see :func:`repro.multiring.sharding.plan_shards`): the
    engine balances shards over workers by weight, heaviest first, so one
    heavyweight shard does not share a worker with others while a peer
    worker sits near idle.
    """

    shard_id: int
    build: Callable[[Any], ShardHarness]
    payload: Any = None
    weight: float = 1.0


@dataclass
class ParallelRunResult:
    """Outcome of one :func:`run_sharded` call."""

    #: per-shard ``finalize()`` results, keyed by shard id
    results: Dict[int, Any]
    #: wall-clock seconds of the whole run (build + windows + finalize)
    wall_clock: float
    #: number of barrier windows executed (the barrier count)
    windows: int
    #: cross-shard messages exchanged at barriers
    cross_messages: int
    #: per-shard kernel event counts
    events: Dict[int, int] = field(default_factory=dict)
    #: worker processes actually used (1 = in-process reference engine)
    workers: int = 1
    #: barrier protocol used ("adaptive" or "fixed"; windowed runs only)
    horizon: str = "adaptive"
    #: bytes framed onto the worker pipes, both directions (0 in-process)
    ipc_bytes: int = 0
    #: frames exchanged with the workers, both directions (0 in-process)
    ipc_messages: int = 0
    #: seconds spent inside ``segment_sink`` (reactive merge ingest)
    merge_stage_s: float = 0.0
    #: portion of :attr:`merge_stage_s` that ran while workers were still
    #: executing the next window (overlapped, i.e. off the critical path)
    merge_overlap_s: float = 0.0
    #: windows a worker was not woken for (horizon beyond the window end)
    worker_windows_skipped: int = 0

    @property
    def total_events(self) -> int:
        """Events executed across every shard."""
        return sum(self.events.values())

    @property
    def barrier_count(self) -> int:
        """Alias of :attr:`windows`, the number of barriers executed."""
        return self.windows

    @property
    def merge_overlap_fraction(self) -> float:
        """Fraction of merge-stage time hidden behind worker execution."""
        if self.merge_stage_s <= 0.0:
            return 0.0
        return self.merge_overlap_s / self.merge_stage_s


# ---------------------------------------------------------------------------
# Worker-side execution (shared by the in-process and subprocess paths)
# ---------------------------------------------------------------------------

class _ShardSet:
    """Builds and steps a set of shards, in ascending shard-id order."""

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        self.harnesses: Dict[int, ShardHarness] = {}
        for spec in sorted(specs, key=lambda s: s.shard_id):
            self.harnesses[spec.shard_id] = spec.build(spec.payload)

    def actor_sites(self) -> Dict[int, Dict[str, str]]:
        return {sid: h.actor_sites() for sid, h in self.harnesses.items()}

    def set_routes(self, routes_by_shard: Dict[int, Dict[str, str]]) -> None:
        for sid, routes in routes_by_shard.items():
            self.harnesses[sid].set_remote_routes(routes)

    def start(self) -> Tuple[
        Dict[int, List[RemoteMessage]],
        Dict[int, Optional[float]],
        Dict[int, Any],
    ]:
        """Start every shard; returns (t=0 cross messages, horizons, segments)."""
        outbound: Dict[int, List[RemoteMessage]] = {}
        horizons: Dict[int, Optional[float]] = {}
        segments: Dict[int, Any] = {}
        for sid in sorted(self.harnesses):
            harness = self.harnesses[sid]
            harness.start()
            out = harness.drain_outbox()
            if out:
                outbound[sid] = out
            horizons[sid] = harness.next_event_time()
            shipped = harness.drain_segments()
            if shipped is not None:
                segments[sid] = shipped
        return outbound, horizons, segments

    def run_window(
        self,
        end: Optional[float],
        inbound: Dict[int, List[RemoteMessage]],
    ) -> Tuple[
        Dict[int, List[RemoteMessage]],
        Dict[int, int],
        Dict[int, Optional[float]],
        Dict[int, Any],
    ]:
        outbound: Dict[int, List[RemoteMessage]] = {}
        events: Dict[int, int] = {}
        horizons: Dict[int, Optional[float]] = {}
        segments: Dict[int, Any] = {}
        for sid in sorted(self.harnesses):
            harness = self.harnesses[sid]
            harness.inject(inbound.get(sid, ()))
            harness.run_window(end)
            out = harness.drain_outbox()
            if out:
                outbound[sid] = out
            events[sid] = harness.processed_events
            horizons[sid] = harness.next_event_time()
            shipped = harness.drain_segments()
            if shipped is not None:
                segments[sid] = shipped
        return outbound, events, horizons, segments

    def finalize(self) -> Dict[int, Any]:
        return {sid: h.finalize() for sid, h in self.harnesses.items()}


#: Shared empty inbound map for the ``("window", end)`` fast path — windows
#: with no inbound traffic allocate nothing on either side of the pipe.
_NO_INBOUND: Dict[int, List[RemoteMessage]] = {}


def _worker_main(conn, specs: Sequence[ShardSpec], wire_codec: bool = True) -> None:
    """Entry point of one worker process: build shards, serve barrier rounds.

    Frames every reply as one explicit byte blob (``send_bytes``) so the
    parent can count IPC volume exactly; the payload encoding is the compact
    wire codec (default) or plain default-protocol pickling (the codec
    differential's legacy baseline).
    """
    dumps = encode_wire if wire_codec else pickle.dumps
    loads = pickle.loads
    try:
        shard_set = _ShardSet(specs)
        conn.send_bytes(dumps(("ready", shard_set.actor_sites())))
        while True:
            command = loads(conn.recv_bytes())
            op = command[0]
            if op == "window":
                # ("window", end) is the empty fast path: no inbound dict on
                # the wire, none allocated here.
                inbound = command[2] if len(command) > 2 else _NO_INBOUND
                outbound, events, horizons, segments = shard_set.run_window(
                    command[1], inbound
                )
                conn.send_bytes(dumps(("out", outbound, events, horizons, segments)))
            elif op == "routes":
                shard_set.set_routes(command[1])
                conn.send_bytes(dumps(("ok",)))
            elif op == "start":
                outbound, horizons, segments = shard_set.start()
                conn.send_bytes(dumps(("out", outbound, {}, horizons, segments)))
            elif op == "finish":
                conn.send_bytes(dumps(("result", shard_set.finalize())))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown command {op!r}")
    except Exception as exc:  # surface worker crashes with their traceback
        import traceback

        try:
            conn.send_bytes(pickle.dumps(("error", f"{exc}\n{traceback.format_exc()}")))
        except Exception:  # pragma: no cover - parent already gone
            pass


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------

def _build_routing(
    sites_by_shard: Dict[int, Dict[str, str]],
    require_unique: bool,
) -> Tuple[Dict[str, int], Dict[int, Dict[str, str]]]:
    """Global actor→shard map plus, per shard, the remote actor→site routes.

    Actor names appearing in several shards are unroutable; that is fine for
    embarrassingly parallel runs (no cross traffic) but an error as soon as a
    lookahead — and therefore routing — is requested.
    """
    owner: Dict[str, int] = {}
    ambiguous = set()
    for sid in sorted(sites_by_shard):
        for name in sites_by_shard[sid]:
            if name in owner:
                ambiguous.add(name)
            else:
                owner[name] = sid
    if ambiguous and require_unique:
        raise SimulationError(
            "cross-shard routing needs globally unique actor names; duplicated: "
            f"{sorted(ambiguous)[:5]}"
        )
    for name in ambiguous:
        owner.pop(name, None)
    routes_by_shard: Dict[int, Dict[str, str]] = {}
    for sid in sorted(sites_by_shard):
        routes_by_shard[sid] = {
            name: sites_by_shard[other][name]
            for name, other in owner.items()
            if other != sid
        }
    return owner, routes_by_shard


def _route_outbound(
    outbound_by_shard: Dict[int, List[RemoteMessage]],
    owner: Dict[str, int],
) -> Tuple[Dict[int, List[RemoteMessage]], int]:
    """Turn per-source outboxes into per-destination inboxes, canonically.

    Messages are processed in ascending source-shard order, preserving each
    shard's send order — the same total order regardless of how shards were
    spread over workers, which keeps injection (and simultaneous-event tie
    breaks) independent of the worker count.
    """
    inbound: Dict[int, List[RemoteMessage]] = {}
    count = 0
    for sid in sorted(outbound_by_shard):
        for record in outbound_by_shard[sid]:
            dst_shard = owner.get(record[2])
            if dst_shard is None:
                raise SimulationError(
                    f"cross-shard message to unknown actor {record[2]!r}"
                )
            inbound.setdefault(dst_shard, []).append(record)
            count += 1
    return inbound, count


def run_sharded(
    specs: Sequence[ShardSpec],
    until: Optional[float] = None,
    workers: int = 1,
    lookahead: Optional[float] = None,
    mp_context: Optional[str] = None,
    horizon: str = "adaptive",
    segment_interval: Optional[float] = None,
    segment_sink: Optional[Callable[[Dict[int, Any]], None]] = None,
    wire_codec: bool = True,
) -> ParallelRunResult:
    """Execute shards under conservative barrier synchronisation.

    Parameters
    ----------
    specs:
        One :class:`ShardSpec` per shard; shard ids must be unique.
    until:
        Simulation horizon.  Required when ``lookahead`` is set; with no
        lookahead it may be ``None`` (each shard runs its queue dry — the
        embarrassingly parallel case).
    workers:
        Worker processes.  ``1`` runs every shard sequentially in-process —
        the *single-process reference engine* used by the differential tests;
        higher counts fork workers and balance shards over them by
        :attr:`ShardSpec.weight`, heaviest first to the least-loaded worker.
        Clamped to the shard count.
    lookahead:
        Safe window length in simulated seconds — must not exceed the minimum
        cross-shard message latency (see
        :func:`repro.multiring.sharding.plan_shards`, which computes it from
        the topology).  ``None`` means the shards exchange no messages and
        run in a single window.
    mp_context:
        ``multiprocessing`` start method; defaults to ``fork`` when
        available.
    horizon:
        Barrier protocol for windowed runs.  ``"adaptive"`` (default)
        advances every barrier to the global event horizon —
        ``min(next local event, next cross-shard arrival) + lookahead`` —
        skipping idle stretches in one hop; ``"fixed"`` steps by exactly one
        lookahead per barrier (the textbook protocol).  Both execute the
        identical event schedule; only the barrier count differs.
    segment_interval:
        Streaming cadence in simulated seconds for shard sets that exchange
        **no** cross-shard messages: barriers are run purely so shards can
        ship their decision-stream segments (any interval is safe — nothing
        is in flight to be late — and windowed execution runs the exact same
        events as a single window).  Requires ``until``; ignored when a
        ``lookahead`` already drives barriers.  Cross-shard traffic without
        a lookahead still raises, exactly as in the single-window case.
    segment_sink:
        Callback invoked in the parent at every barrier that shipped
        segments, with ``{shard_id: payload}`` where ``payload`` is whatever
        each shard's :meth:`ShardHarness.drain_segments` returned.  The sink
        runs between windows — the place to feed a streaming merge cursor /
        reactive service replicas.  Shards are always presented in ascending
        id order downstream of the canonical routing, so the sink sees a
        worker-count-independent sequence.  The sink for one barrier's
        segments runs *while* the workers execute the next window (the
        overlapped merge stage); the segment application order is untouched.
    wire_codec:
        Encode barrier traffic with the compact wire codec
        (:func:`repro.sim.network.encode_wire`, the default) or with plain
        default-protocol pickling.  Both encodings carry identical payloads
        — ``False`` exists as the measured baseline of the codec
        differential tests and benchmarks.

    Returns
    -------
    ParallelRunResult
        Per-shard ``finalize()`` results plus run accounting
        (:attr:`ParallelRunResult.windows` is the barrier count).
    """
    specs = list(specs)
    if not specs:
        raise ValueError("need at least one shard")
    ids = [spec.shard_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate shard ids: {sorted(ids)}")
    if horizon not in ("adaptive", "fixed"):
        raise ValueError(f"horizon must be 'adaptive' or 'fixed', not {horizon!r}")
    if lookahead is not None:
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        if until is None:
            raise ValueError("windowed execution needs an explicit horizon (until=...)")
    if segment_interval is not None:
        if segment_interval <= 0:
            raise ValueError("segment_interval must be positive")
        if until is None:
            raise ValueError("segment streaming needs an explicit horizon (until=...)")
    for spec in specs:
        if spec.weight <= 0:
            raise ValueError(
                f"shard {spec.shard_id} has non-positive weight {spec.weight!r}"
            )
    workers = max(1, min(int(workers), len(specs)))

    start = time.perf_counter()
    if workers == 1:
        results, windows, cross, events, stats = _run_inprocess(
            specs, until, lookahead, horizon, segment_interval, segment_sink
        )
    else:
        results, windows, cross, events, stats = _run_multiprocess(
            specs, until, lookahead, horizon, workers, mp_context,
            segment_interval, segment_sink, wire_codec,
        )
    wall = time.perf_counter() - start
    return ParallelRunResult(
        results=results,
        wall_clock=wall,
        windows=windows,
        cross_messages=cross,
        events=events,
        workers=workers,
        horizon=horizon,
        **stats,
    )


def _min_horizon(
    horizons: Dict[int, Optional[float]],
    inbound: Dict[int, List[RemoteMessage]],
) -> Optional[float]:
    """Earliest pending work anywhere: local events or in-flight arrivals.

    ``None`` means the whole deployment is drained and nothing is in flight —
    no event can ever fire again.
    """
    minimum: Optional[float] = None
    for t in horizons.values():
        if t is not None and (minimum is None or t < minimum):
            minimum = t
    for records in inbound.values():
        for record in records:
            if minimum is None or record[0] < minimum:
                minimum = record[0]
    return minimum


def _check_unwindowed_leftovers(
    inbound: Dict[int, List[RemoteMessage]],
    lookahead: Optional[float],
) -> None:
    """Reject cross-shard traffic that a lookahead-less run could not deliver.

    With a lookahead, messages still in flight after the final window are
    simply due beyond the horizon — the merged run would not deliver them
    either.  Without one the windows (a single one, or the streaming cadence
    of ``segment_interval``) give no timeliness guarantee, so *any* routed
    message means a misconfigured plan (shards that talk need a lookahead),
    and losing or reordering history silently is the one thing this engine
    promises never to do.
    """
    if lookahead is None and inbound:
        total = sum(len(records) for records in inbound.values())
        example = next(iter(inbound.values()))[0]
        raise SimulationError(
            f"{total} cross-shard message(s) were sent but the run has no "
            f"lookahead, e.g. {example[1]}->{example[2]} due "
            f"at t={example[0]:.6f}; pass lookahead= to run_sharded or plan "
            "shards so they do not communicate"
        )


def _execute_rounds(
    transport,
    owner: Dict[str, int],
    until: Optional[float],
    lookahead: Optional[float],
    horizon: str,
    segment_interval: Optional[float] = None,
    segment_sink: Optional[Callable[[Dict[int, Any]], None]] = None,
) -> Tuple[int, int, Dict[int, int], float]:
    """Drive the barrier protocol over an abstract shard transport.

    ``transport`` provides ``start() -> (outbound, horizons, segments)`` and
    ``window(end, inbound, ship, final) -> (outbound, events, horizons,
    segments)``; the in-process and multiprocessing engines differ only in
    how those rounds are executed, so the barrier planning — and therefore
    the window schedule — is shared verbatim between them (a prerequisite
    for worker-count invariance).

    Segments are double-buffered: the ones shipped at barrier ``N`` are held
    in ``staged`` and handed to the transport as the ``ship`` thunk of
    window ``N+1``, which every transport invokes exactly once — *after*
    dispatching the window to the workers (pipe transport: ingest overlaps
    worker execution) but before absorbing any window-``N+1`` reply.  The
    in-process transport ships first and then runs the window, which is the
    same sink-call sequence the pre-overlap engine produced (run ``N``,
    sink ``N``, run ``N+1``, ...).  Either way the sink sees each barrier's
    segments exactly once, in barrier order, one barrier behind the shards.
    Returns the cumulative seconds spent inside the sink as the last tuple
    element (``merge_stage_s``).
    """
    merge_s = 0.0
    #: the previous barrier's shipped segments, awaiting the sink
    staged: List[Optional[Dict[int, Any]]] = [None]

    def ship() -> float:
        """Feed the staged segments to the sink; returns seconds spent."""
        nonlocal merge_s
        segments = staged[0]
        staged[0] = None
        if not segments or segment_sink is None:
            return 0.0
        begin = time.perf_counter()
        segment_sink(segments)
        spent = time.perf_counter() - begin
        merge_s += spent
        return spent

    outbound, horizons, segments = transport.start()
    staged[0] = segments
    inbound, cross = _route_outbound(outbound, owner)
    windows = 0
    events: Dict[int, int] = {}

    # The window pitch: with cross-shard traffic the lookahead bounds how far
    # a window may safely reach past the event frontier; without it, barriers
    # exist only as a segment-streaming cadence and any pitch is safe.
    pitch = lookahead if lookahead is not None else segment_interval
    if pitch is None:
        # Single window: the embarrassingly parallel case (until may be None).
        outbound, events, horizons, segments = transport.window(
            until, inbound, ship, final=True
        )
        staged[0] = segments
        inbound, moved = _route_outbound(outbound, owner)
        cross += moved
        windows = 1
        _check_unwindowed_leftovers(inbound, lookahead)
        ship()
        return windows, cross, events, merge_s

    now = 0.0  # every shard's kernel starts at t=0 and lands exactly on `now`
    while now < until:
        if horizon == "fixed":
            end = min(now + pitch, until)
        else:
            frontier = _min_horizon(horizons, inbound)
            if frontier is None:
                # Nothing pending anywhere: land every clock on the horizon.
                end = until
            else:
                # Nothing can execute — and therefore nothing can send —
                # before `frontier`, so a window reaching frontier+lookahead
                # is exactly as safe as a fixed window of one lookahead.
                end = min(max(frontier, now) + pitch, until)
        outbound, events, horizons, segments = transport.window(
            end, inbound, ship, final=end >= until
        )
        staged[0] = segments
        inbound, moved = _route_outbound(outbound, owner)
        cross += moved
        _check_unwindowed_leftovers(inbound, lookahead)
        windows += 1
        now = end
    # The final barrier's segments have no next window to overlap with.
    ship()
    return windows, cross, events, merge_s


class _InProcessTransport:
    """Round executor running every shard sequentially in this process.

    The ``ship`` thunk runs *before* the window here: with one process there
    is nothing to overlap with, and shipping first reproduces the serial
    engine's exact sink-call sequence (run ``N``, sink ``N``, run ``N+1``).
    """

    def __init__(self, shard_set: _ShardSet) -> None:
        self._shards = shard_set

    def start(self):
        return self._shards.start()

    def window(self, end, inbound, ship, final=False):
        ship()
        return self._shards.run_window(end, inbound)


def _run_inprocess(specs, until, lookahead, horizon, segment_interval, segment_sink):
    shard_set = _ShardSet(specs)
    sites = shard_set.actor_sites()
    owner, routes = _build_routing(sites, require_unique=lookahead is not None)
    shard_set.set_routes(routes)
    windows, cross, events, merge_s = _execute_rounds(
        _InProcessTransport(shard_set), owner, until, lookahead, horizon,
        segment_interval, segment_sink,
    )
    stats = {"merge_stage_s": merge_s}
    return shard_set.finalize(), windows, cross, events, stats


def _assign_shards(
    specs: Sequence[ShardSpec], workers: int
) -> List[List[ShardSpec]]:
    """Balance shards over workers by weight, heaviest first.

    Greedy longest-processing-time assignment: shards sorted by
    ``(-weight, shard_id)`` each go to the currently least-loaded worker
    (ties broken by worker index), so the schedule is deterministic and a
    heavyweight shard never shares a worker while a lighter-loaded worker
    exists.  Each worker's shard list is returned in ascending shard-id
    order (the execution order inside the worker).
    """
    assignment: List[List[ShardSpec]] = [[] for _ in range(workers)]
    loads = [0.0] * workers
    for spec in sorted(specs, key=lambda s: (-s.weight, s.shard_id)):
        widx = min(range(workers), key=lambda w: (loads[w], w))
        assignment[widx].append(spec)
        loads[widx] += spec.weight
    for worker_specs in assignment:
        worker_specs.sort(key=lambda s: s.shard_id)
    return assignment


class _PipeTransport:
    """Round executor broadcasting barrier rounds to worker processes.

    * frames every command/reply as one explicit byte blob per worker per
      round (compact wire codec by default), counting ``ipc_bytes`` and
      ``ipc_messages`` in both directions;
    * broadcasts a window *before* running the staged merge sink, so
      reactive ingest overlaps worker execution (``overlap_s`` credits sink
      time only when at least one worker had not replied when the sink
      finished — a conservative measure);
    * skips workers whose cached horizons lie strictly beyond the window end
      when they have no inbound traffic (adaptive windows, no streaming
      sink, non-final window only — see the module docstring for the safety
      argument);
    * absorbs replies in arrival order via ``connection.wait`` — a pipe that
      hits EOF mid-round surfaces as an immediate error naming the dead
      worker and its shards instead of blocking the round.
    """

    def __init__(
        self,
        pipes: Sequence[Any],
        procs: Sequence[Any],
        wire_codec: bool,
        allow_skip: bool,
    ) -> None:
        self._pipes = list(pipes)
        self._procs = list(procs)
        self._dumps = encode_wire if wire_codec else pickle.dumps
        self._allow_skip = allow_skip
        #: shard id → worker index, and its inverse (bound after the ready
        #: handshake, once the parent knows which shards each worker built)
        self._shard_worker: Dict[int, int] = {}
        self._worker_shards: Dict[int, List[int]] = {}
        #: freshest per-shard state from worker replies; shards of a skipped
        #: worker keep their previous values, which stay exact because a
        #: skipped window executes nothing (no events, no horizon movement)
        self._horizons: Dict[int, Optional[float]] = {}
        self._events: Dict[int, int] = {}
        self.ipc_bytes = 0
        self.ipc_messages = 0
        self.overlap_s = 0.0
        self.windows_skipped = 0

    # ------------------------------------------------------------- plumbing
    def bind(self, shard_worker: Dict[int, int]) -> None:
        """Install the shard→worker map once the ready handshake finished."""
        self._shard_worker = dict(shard_worker)
        self._worker_shards = {widx: [] for widx in range(len(self._pipes))}
        for sid, widx in shard_worker.items():
            self._worker_shards[widx].append(sid)
        self._events = {sid: 0 for sid in shard_worker}

    def send(self, widx: int, payload: Any) -> None:
        frame = self._dumps(payload)
        try:
            self._pipes[widx].send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            self._raise_dead(widx, exc)
        self.ipc_bytes += len(frame)
        self.ipc_messages += 1

    def recv(self, widx: int) -> Any:
        try:
            frame = self._pipes[widx].recv_bytes()
        except (EOFError, OSError) as exc:
            self._raise_dead(widx, exc)
        self.ipc_bytes += len(frame)
        self.ipc_messages += 1
        reply = pickle.loads(frame)
        if reply[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        return reply

    def _raise_dead(self, widx: int, exc: BaseException) -> None:
        proc = self._procs[widx]
        proc.join(timeout=1)
        shards = sorted(self._worker_shards.get(widx, []))
        raise RuntimeError(
            f"shard worker {widx} (shards {shards}) died mid-run "
            f"(exit code {proc.exitcode}); its pipe reported {exc!r}"
        ) from exc

    def _absorb(
        self,
        pending: Dict[Any, int],
        outbound: Dict[int, List[RemoteMessage]],
        segments: Dict[int, Any],
    ) -> None:
        """Merge replies as workers finish (arrival order, not pipe order).

        Determinism is unaffected: outboxes are routed canonically by
        :func:`_route_outbound` afterwards, horizon minima are
        order-independent, and the per-shard dicts are disjoint across
        workers.  A dead worker's pipe becomes readable at EOF, so the
        failure surfaces here immediately instead of wedging ``recv`` on an
        earlier pipe.
        """
        while pending:
            for conn in mp_connection.wait(list(pending)):
                widx = pending.pop(conn)
                _, worker_out, worker_events, worker_horizons, worker_segments = (
                    self.recv(widx)
                )
                outbound.update(worker_out)
                self._events.update(worker_events)
                self._horizons.update(worker_horizons)
                segments.update(worker_segments)

    # --------------------------------------------------------------- rounds
    def start(self):
        for widx in range(len(self._pipes)):
            self.send(widx, ("start",))
        outbound: Dict[int, List[RemoteMessage]] = {}
        segments: Dict[int, Any] = {}
        pending = {self._pipes[widx]: widx for widx in range(len(self._pipes))}
        self._absorb(pending, outbound, segments)
        return outbound, dict(self._horizons), segments

    def _beyond_window(self, widx: int, end: float) -> bool:
        """Whether every shard of ``widx`` has its horizon strictly past ``end``.

        An unknown horizon (shard never reported — cannot happen after
        ``start``, but stay safe) counts as "has work now".
        """
        horizons = self._horizons
        for sid in self._worker_shards[widx]:
            t = horizons.get(sid, 0.0)
            if t is not None and t <= end:
                return False
        return True

    def window(self, end, inbound, ship, final=False):
        outbound: Dict[int, List[RemoteMessage]] = {}
        segments: Dict[int, Any] = {}
        pending: Dict[Any, int] = {}
        for widx, conn in enumerate(self._pipes):
            worker_inbound = {
                sid: msgs for sid, msgs in inbound.items()
                if self._shard_worker[sid] == widx
            }
            if (
                self._allow_skip
                and not final
                and not worker_inbound
                and self._beyond_window(widx, end)
            ):
                # Lightweight skip: an empty window is a pure no-op for this
                # worker (nothing executes, sends or cuts before its horizon)
                # and run_window is monotonic, so its next real window
                # catches up identically.  No wake-up, no reply.
                self.windows_skipped += 1
                continue
            if worker_inbound:
                self.send(widx, ("window", end, worker_inbound))
            else:
                # Empty fast path: two-tuple frame, no inbound dict shipped.
                self.send(widx, ("window", end))
            pending[conn] = widx
        # Overlapped merge stage: the workers are running the window we just
        # broadcast while the parent ingests the *previous* barrier's
        # segments.  Credit the sink time as overlapped only if at least one
        # worker was still busy when the sink finished (conservative: a
        # partially overlapped sink counts fully or not at all).
        ship_s = ship()
        if ship_s > 0.0 and pending:
            ready = mp_connection.wait(list(pending), timeout=0)
            if len(ready) < len(pending):
                self.overlap_s += ship_s
        self._absorb(pending, outbound, segments)
        return outbound, dict(self._events), dict(self._horizons), segments


def _run_multiprocess(
    specs, until, lookahead, horizon, workers, mp_context,
    segment_interval, segment_sink, wire_codec,
):
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(mp_context)

    assignment = _assign_shards(specs, workers)

    # Horizon-aware skips need adaptive planning and a lookahead (fixed mode
    # must run every window everywhere; segment-interval-only runs have no
    # horizon exchange), and no streaming sink — a skipped worker ships no
    # segment cut, but a sink consumer relies on every barrier's coverage
    # for its joint watermark.
    allow_skip = (
        horizon == "adaptive" and lookahead is not None and segment_sink is None
    )

    pipes = []
    procs = []
    try:
        for worker_specs in assignment:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, worker_specs, wire_codec)
            )
            proc.daemon = True
            proc.start()
            child_conn.close()
            pipes.append(parent_conn)
            procs.append(proc)

        transport = _PipeTransport(pipes, procs, wire_codec, allow_skip)

        sites: Dict[int, Dict[str, str]] = {}
        shard_worker: Dict[int, int] = {}
        for widx in range(len(pipes)):
            _, worker_sites = transport.recv(widx)
            sites.update(worker_sites)
            for sid in worker_sites:
                shard_worker[sid] = widx
        transport.bind(shard_worker)
        owner, routes = _build_routing(sites, require_unique=lookahead is not None)
        for widx in range(len(pipes)):
            transport.send(widx, ("routes", {
                sid: routes[sid] for sid, w in shard_worker.items() if w == widx
            }))
        for widx in range(len(pipes)):
            transport.recv(widx)

        windows, cross, events, merge_s = _execute_rounds(
            transport, owner, until, lookahead, horizon,
            segment_interval, segment_sink,
        )

        results: Dict[int, Any] = {}
        for widx in range(len(pipes)):
            transport.send(widx, ("finish",))
        for widx in range(len(pipes)):
            _, worker_results = transport.recv(widx)
            results.update(worker_results)
        stats = {
            "ipc_bytes": transport.ipc_bytes,
            "ipc_messages": transport.ipc_messages,
            "merge_stage_s": merge_s,
            "merge_overlap_s": transport.overlap_s,
            "worker_windows_skipped": transport.windows_skipped,
        }
        return results, windows, cross, events, stats
    finally:
        for conn in pipes:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
