"""Actor abstraction on top of the discrete-event kernel.

Every process of the paper's system (proposers, acceptors, learners,
coordinators, replicas, clients, baseline servers) is modelled as an
:class:`Actor`: it receives messages through :meth:`Actor.on_message`, sends
messages through the environment's network, and sets timers.

The :class:`Environment` bundles the pieces every actor needs — the kernel,
the network, the topology, the metric registry and the seeded RNG streams —
so that constructing an experiment is a single object graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from .cpu import CpuAccount
from .kernel import EventHandle, Simulator
from .metrics import MetricRegistry
from .random import SeededStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .network import Network
    from .topology import Topology

__all__ = ["Actor", "Environment", "Timer"]


class Environment:
    """Shared simulation context: kernel, network, metrics, RNG, topology.

    Parameters
    ----------
    simulator:
        The event kernel.  A fresh one is created when omitted.
    seed:
        Experiment seed used to derive every random stream.
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator or Simulator()
        self.streams = SeededStreams(seed)
        sim = self.simulator
        # Instruments read the clock on every sample; go straight to the
        # kernel's time attribute instead of through the ``now`` property.
        self.metrics = MetricRegistry(clock=lambda: sim._now)
        self.network: Optional["Network"] = None
        self.topology: Optional["Topology"] = None
        self._actors: Dict[str, "Actor"] = {}
        self._disks: List[Any] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.simulator.now

    # ---------------------------------------------------------------- actors
    def register(self, actor: "Actor") -> None:
        """Register an actor so it can be addressed by name."""
        if actor.name in self._actors:
            raise ValueError(f"actor name already registered: {actor.name}")
        self._actors[actor.name] = actor

    def actor(self, name: str) -> "Actor":
        """Look up a registered actor by name."""
        return self._actors[name]

    def get_actor(self, name: str) -> Optional["Actor"]:
        """Look up a registered actor, returning ``None`` when unknown.

        Fast-path variant of :meth:`actor` used by the network so a miss does
        not pay for exception handling.
        """
        return self._actors.get(name)

    def actors(self) -> List["Actor"]:
        """All registered actors (registration order)."""
        return list(self._actors.values())

    def has_actor(self, name: str) -> bool:
        """Whether an actor with this name is registered."""
        return name in self._actors

    # ----------------------------------------------------------------- disks
    def register_disk(self, disk: Any) -> None:
        """Track a storage device (fault injection targets them by name)."""
        self._disks.append(disk)

    def disks(self) -> List[Any]:
        """Every storage device created in this environment."""
        return list(self._disks)

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (delegates to the kernel)."""
        return self.simulator.run(until=until)


class Timer:
    """A cancellable, optionally periodic timer owned by an actor."""

    def __init__(
        self,
        actor: "Actor",
        interval: float,
        callback: Callable[[], None],
        periodic: bool = False,
    ) -> None:
        self._actor = actor
        self._interval = interval
        self._callback = callback
        self._periodic = periodic
        self._simulator = actor.env.simulator
        self._handle: Optional[EventHandle] = None
        self._cancelled = False

    def start(self) -> "Timer":
        """Arm the timer."""
        self._cancelled = False
        self._schedule()
        return self

    def cancel(self) -> None:
        """Disarm the timer; pending fires are dropped."""
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def active(self) -> bool:
        """Whether the timer is armed and not cancelled."""
        return not self._cancelled and self._handle is not None

    def _schedule(self) -> None:
        self._handle = self._simulator.call_later(self._interval, self._fire)

    def _fire(self) -> None:
        if self._cancelled or not self._actor.alive:
            return
        self._callback()
        if self._periodic and not self._cancelled and self._actor.alive:
            self._schedule()


class Actor:
    """Base class for every simulated process.

    Subclasses implement :meth:`on_message` and optionally :meth:`on_start`.
    An actor lives at a :class:`~repro.sim.topology.Site`; message latency to
    other actors is determined by the network from the two sites involved.

    Crash/recovery: :meth:`crash` makes the actor drop every incoming message
    and cancels its timers; :meth:`restart` brings it back (subclasses reset
    their volatile state by overriding :meth:`on_restart`).  This mirrors the
    crash-recovery failure model of the paper (Section 2).
    """

    def __init__(self, env: Environment, name: str, site: str = "dc1") -> None:
        self.env = env
        self.name = name
        self.site = site
        self.alive = True
        self.cpu = CpuAccount(name, clock=lambda: env.simulator.now)
        self._timers: List[Timer] = []
        #: cached bound ``Network.send`` (resolved lazily: the network is
        #: usually attached to the environment after actors are constructed)
        self._cached_network: Optional["Network"] = None
        self._network_send: Optional[Callable[[str, str, Any], None]] = None
        env.register(self)

    # ----------------------------------------------------------------- hooks
    def on_start(self) -> None:
        """Called once when the experiment starts (override as needed)."""

    def on_message(self, sender: str, message: Any) -> None:
        """Handle a delivered message (override)."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Called when the actor crashes (override to drop volatile state)."""

    def on_restart(self) -> None:
        """Called when the actor restarts after a crash (override)."""

    # ------------------------------------------------------------- messaging
    def send(self, dest: str, message: Any) -> None:
        """Send ``message`` to the actor named ``dest`` through the network."""
        if not self.alive:
            return
        network = self.env.network
        if network is not self._cached_network:
            # First send, or the environment's network was swapped (tests do
            # this): rebind the cached send entry point.
            if network is None:
                raise RuntimeError("environment has no network attached")
            self._cached_network = network
            self._network_send = network.send
        self._network_send(self.name, dest, message)

    def deliver(self, sender: str, message: Any) -> None:
        """Entry point used by the network; drops messages while crashed."""
        if not self.alive:
            return
        self.on_message(sender, message)

    # ---------------------------------------------------------------- timers
    def set_timer(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` once after ``delay`` seconds (cancellable)."""
        timer = Timer(self, delay, callback, periodic=False).start()
        self._timers.append(timer)
        return timer

    def set_periodic_timer(self, interval: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` every ``interval`` seconds until cancelled."""
        timer = Timer(self, interval, callback, periodic=True).start()
        self._timers.append(timer)
        return timer

    # --------------------------------------------------------- crash/restart
    def crash(self) -> None:
        """Crash the actor: timers cancelled, messages dropped until restart."""
        if not self.alive:
            return
        self.alive = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.on_crash()

    def restart(self) -> None:
        """Restart a crashed actor."""
        if self.alive:
            return
        self.alive = True
        self.on_restart()

    # ------------------------------------------------------------------ misc
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.env.simulator.now

    def rng(self, purpose: str = "default"):
        """A seeded random stream private to this actor and purpose."""
        return self.env.streams.stream(f"{self.name}:{purpose}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.name}@{self.site} {status}>"
