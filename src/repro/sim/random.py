"""Seeded random-number streams for reproducible experiments.

Every stochastic component (network jitter, disk latency variation, workload
key choice, client think time) draws from its own named stream derived from a
single experiment seed.  This keeps experiments reproducible while ensuring
that, say, changing the workload does not perturb the network jitter sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, TypeVar

__all__ = ["SeededStreams", "ZipfianGenerator", "LatestGenerator", "UniformIntGenerator"]

T = TypeVar("T")


class SeededStreams:
    """Factory of independent, named :class:`random.Random` streams.

    >>> streams = SeededStreams(42)
    >>> a = streams.stream("network")
    >>> b = streams.stream("workload")
    >>> a is streams.stream("network")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The experiment-level seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).hexdigest()
            self._streams[name] = random.Random(int(digest[:16], 16))
        return self._streams[name]

    def spawn(self, name: str) -> "SeededStreams":
        """Derive a child factory, e.g. one per simulated site."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode()).hexdigest()
        return SeededStreams(int(digest[:16], 16))


class UniformIntGenerator:
    """Uniform integer key generator over ``[lo, hi]`` inclusive."""

    def __init__(self, lo: int, hi: int, rng: random.Random) -> None:
        if hi < lo:
            raise ValueError("hi must be >= lo")
        self._lo = lo
        self._hi = hi
        self._rng = rng

    def next(self) -> int:
        """Draw the next key."""
        return self._rng.randint(self._lo, self._hi)


class ZipfianGenerator:
    """Zipfian-distributed integer generator as used by YCSB.

    This is the classic Gray et al. rejection-free algorithm also used by the
    YCSB reference implementation: item 0 is the most popular.  The skew
    constant defaults to YCSB's 0.99.
    """

    def __init__(self, item_count: int, rng: random.Random, theta: float = 0.99) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self._items = item_count
        self._theta = theta
        self._rng = rng
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        # For item_count <= 2 the classic eta expression degenerates (at
        # n == 2, zeta(2) == zeta(n) zeroes the denominator; at n == 1 it goes
        # negative).  Those keyspaces never reach the eta branch of next() —
        # every draw lands in the first two analytic branches — so eta only
        # needs a well-defined placeholder there.
        if self._zetan == self._zeta2:
            self._eta = 0.0
        else:
            self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        """Draw the next key (0 is the hottest)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return 1
        key = int(self._items * (self._eta * u - self._eta + 1) ** self._alpha)
        # Floating-point round-off at u → 1 can land exactly on item_count;
        # clamp so the YCSB semantics (keys in [0, item_count)) always hold.
        return key if key < self._items else self._items - 1


class LatestGenerator:
    """YCSB's "latest" distribution: recently inserted keys are the hottest.

    The underlying zipfian is rebuilt lazily (only once the key space has
    grown by ten percent) because rebuilding the zeta constants is O(n) and
    workload D performs many inserts.
    """

    def __init__(self, item_count: int, rng: random.Random, theta: float = 0.99) -> None:
        self._count = max(item_count, 1)
        self._rng = rng
        self._theta = theta
        self._zipf_items = self._count
        self._zipf = ZipfianGenerator(self._count, rng, theta)

    def next(self) -> int:
        """Draw a key, biased towards the most recent insert."""
        offset = self._zipf.next()
        key = self._count - 1 - offset
        return max(key, 0)

    def record_insert(self) -> None:
        """Tell the generator a new key was inserted (grows the hot end)."""
        self._count += 1
        if self._count > self._zipf_items * 1.1:
            self._zipf_items = self._count
            self._zipf = ZipfianGenerator(self._count, self._rng, self._theta)


def weighted_choice(rng: random.Random, weighted: Sequence[tuple]) -> T:
    """Pick one item from ``[(item, weight), ...]`` proportionally to weight."""
    total = sum(w for _, w in weighted)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    acc = 0.0
    for item, weight in weighted:
        acc += weight
        if point <= acc:
            return item
    return weighted[-1][0]
