"""Frozen seed-snapshot of the kernel and network (pre-fast-path).

This module preserves the original, straightforward implementations of
:class:`~repro.sim.kernel.Simulator` and :class:`~repro.sim.network.Network`
exactly as they shipped in the seed commit, for two purposes:

* **differential testing** — ``tests/sim/test_kernel_fastpath.py`` runs the
  same seeded workload on both implementations and asserts bit-identical
  delivery sequences, proving the fast path changed no observable semantics;
* **benchmarking** — ``benchmarks/bench_kernel.py`` measures the fast path's
  speedup against this snapshot and records it in ``BENCH_kernel.json``.

Do not "optimise" this module: its value is that it stays identical to the
seed.  The only addition is :meth:`LegacySimulator.call_later`, a shim that
routes the fast-path entry point through the original ``schedule`` (with its
per-call kwargs dict) so seed-era costs are measured faithfully when newer
call sites run against the snapshot.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .topology import Topology

__all__ = ["LegacyEvent", "LegacyEventHandle", "LegacySimulator", "LegacyNetwork"]


class SimulationError(RuntimeError):
    """Seed-snapshot copy of :class:`repro.sim.kernel.SimulationError`."""


@dataclass(order=True)
class LegacyEvent:
    """Seed-snapshot event: an ``order=True`` dataclass compared per sift."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)


class LegacyEventHandle:
    """Seed-snapshot cancellation handle."""

    __slots__ = ("_event",)

    def __init__(self, event: LegacyEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class LegacySimulator:
    """Seed-snapshot simulator: heap of dataclass events, peek-then-step loop."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[LegacyEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> LegacyEventHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = LegacyEvent(
            time=self._now + delay,
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
            kwargs=kwargs,
        )
        heapq.heappush(self._queue, event)
        return LegacyEventHandle(event)

    def call_later(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> LegacyEventHandle:
        """Compatibility shim: the seed had no fast path — route to schedule."""
        return self.schedule(delay, callback, *args, priority=priority)

    def _post(self, delay: float, callback: Callable[..., None], args: tuple = ()) -> None:
        """Compatibility shim for the fire-and-forget fast path."""
        self.schedule(delay, callback, *args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> LegacyEventHandle:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self.schedule(time - self._now, callback, *args, priority=priority, **kwargs)

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                next_event = self._peek_next()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None and self._now < until and not self._stopped:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        self._stopped = True

    def _peek_next(self) -> Optional[LegacyEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def drain(self, horizon: float) -> None:
        if horizon < self._now:
            raise SimulationError("cannot drain to a time in the past")
        self._queue.clear()
        self._now = horizon


def _message_size(message: Any, default: int = 128) -> int:
    size = getattr(message, "size_bytes", None)
    if size is None:
        return default
    return int(size)


class LegacyNetwork:
    """Seed-snapshot network: per-send actor/topology lookups, no caches."""

    HEADER_BYTES = 66

    def __init__(
        self,
        env: Any,
        topology: Topology,
        jitter_fraction: float = 0.05,
    ) -> None:
        from .network import MessageStats

        self.env = env
        self.topology = topology
        self.stats = MessageStats()
        self._jitter = jitter_fraction
        self._rng = env.streams.stream("network.jitter")
        self._channel_free_at: Dict[Tuple[str, str], float] = {}
        self._last_delivery_at: Dict[Tuple[str, str], float] = {}
        self._cut_links: Set[Tuple[str, str]] = set()
        self._isolated_sites: Set[str] = set()
        env.network = self
        env.topology = topology

    def send(self, src: str, dst: str, message: Any) -> None:
        if not self.env.has_actor(dst):
            self.stats.record_drop()
            return
        src_actor = self.env.actor(src)
        dst_actor = self.env.actor(dst)
        src_site, dst_site = src_actor.site, dst_actor.site

        if self._blocked(src_site, dst_site):
            self.stats.record_drop()
            return

        size = _message_size(message) + self.HEADER_BYTES
        delay = self._delivery_delay(src_site, dst_site, size)
        now = self.env.simulator.now
        connection = (src, dst)
        delivery_at = max(now + delay, self._last_delivery_at.get(connection, 0.0))
        self._last_delivery_at[connection] = delivery_at
        self.stats.record(size)
        self.env.simulator.schedule(delivery_at - now, self._deliver, src, dst, message)

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        if not self.env.has_actor(dst):
            self.stats.record_drop()
            return
        actor = self.env.actor(dst)
        if not actor.alive:
            self.stats.record_drop()
            return
        actor.deliver(src, message)

    def _delivery_delay(self, src_site: str, dst_site: str, size_bytes: int) -> float:
        propagation = self.topology.latency(src_site, dst_site)
        bandwidth = self.topology.bandwidth(src_site, dst_site)
        transmission = (size_bytes * 8.0) / bandwidth
        jitter = 0.0
        if self._jitter > 0:
            jitter = propagation * self._jitter * self._rng.random()

        key = (src_site, dst_site)
        now = self.env.simulator.now
        free_at = max(self._channel_free_at.get(key, now), now)
        start = free_at
        finish = start + transmission
        self._channel_free_at[key] = finish
        return (finish - now) + propagation + jitter

    def _blocked(self, src_site: str, dst_site: str) -> bool:
        if src_site in self._isolated_sites or dst_site in self._isolated_sites:
            return True
        return (src_site, dst_site) in self._cut_links

    def partition(self, site_a: str, site_b: str, bidirectional: bool = True) -> None:
        self._cut_links.add((site_a, site_b))
        if bidirectional:
            self._cut_links.add((site_b, site_a))

    def heal(self, site_a: str, site_b: str) -> None:
        self._cut_links.discard((site_a, site_b))
        self._cut_links.discard((site_b, site_a))

    def isolate_site(self, site: str) -> None:
        self._isolated_sites.add(site)

    def rejoin_site(self, site: str) -> None:
        self._isolated_sites.discard(site)

    def heal_all(self) -> None:
        self._cut_links.clear()
        self._isolated_sites.clear()
