"""Recovering-replica protocol (Section 5.2).

When a replica resumes after a failure it must rebuild a state consistent
with the replicas that did not crash:

1. it contacts the replicas of its own *partition* (same group subscriptions)
   and waits for a recovery quorum ``Q_R`` of answers, each carrying the
   identifier of the peer's most recent checkpoint;
2. it selects the most up-to-date checkpoint available in ``Q_R`` (``K_R``,
   Predicate 3) and downloads the state from that peer — a bulk transfer that
   costs real bandwidth in the simulation, which is what produces the
   recovery dip of Figure 8;
3. it installs the checkpoint, fast-forwards its ring learners and merge
   position, and asks the acceptors of every subscribed ring to retransmit
   the instances decided after the checkpoint;
4. once every ring's retransmission has been applied the replica is caught up
   and keeps running off the live ring traffic.

Because the trim protocol used the *minimum* over a quorum ``Q_T`` that
intersects ``Q_R`` (Predicate 2), the instances missing from the selected
checkpoint are guaranteed not to have been trimmed (Predicates 4-5).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ..paxos.messages import (
    CheckpointReply,
    CheckpointRequest,
    RetransmitReply,
    RetransmitRequest,
)
from ..sim.actor import Actor
from ..storage.checkpoint import Checkpoint, CheckpointId

__all__ = ["RecoveryManager", "RecoveryPhase"]


class RecoveryPhase(Enum):
    """Where a recovering replica currently stands."""

    IDLE = "idle"
    COLLECTING_IDS = "collecting-checkpoint-ids"
    FETCHING_STATE = "fetching-state"
    RETRANSMITTING = "retransmitting"
    DONE = "done"


class RecoveryManager:
    """Orchestrates one replica's recovery exchange.

    Parameters
    ----------
    host:
        The replica actor (used to send messages and read the clock).
    group_ids:
        Groups the replica subscribes to.
    partition_peers:
        Names of the replicas in the same partition.
    acceptors_by_group:
        For each group, the acceptor processes able to serve retransmissions.
    recovery_quorum:
        ``|Q_R|``; defaults to a majority of the partition (peers + self).
    install_state:
        Callback ``(state, checkpoint_id)`` installing a downloaded snapshot
        into the service and fast-forwarding the ordering layer.
    inject_decided:
        Callback ``(group_id, instance, value)`` feeding a retransmitted
        decision back into the ordering layer.
    on_complete:
        Called once recovery finished.
    """

    def __init__(
        self,
        host: Actor,
        group_ids: List[int],
        partition_peers: List[str],
        acceptors_by_group: Dict[int, List[str]],
        install_state: Callable[[Any, CheckpointId], None],
        inject_decided: Callable[[int, int, Any], None],
        on_complete: Optional[Callable[[], None]] = None,
        recovery_quorum: Optional[int] = None,
    ) -> None:
        self.host = host
        self._groups = sorted(group_ids)
        self._peers = list(partition_peers)
        self._acceptors_by_group = {g: list(a) for g, a in acceptors_by_group.items()}
        self._install_state = install_state
        self._inject_decided = inject_decided
        self._on_complete = on_complete or (lambda: None)
        partition_size = len(self._peers) + 1
        # A majority of the partition (peers + self), capped at the number of
        # peers that can actually answer: the recovering replica cannot reply
        # to itself, so a two-replica partition must make progress on the
        # single peer's answer instead of waiting forever for a second one.
        majority = partition_size // 2 + 1
        self._quorum = recovery_quorum or max(1, min(majority, len(self._peers)))
        self.phase = RecoveryPhase.IDLE
        self._id_replies: Dict[str, Optional[CheckpointId]] = {}
        self._chosen_peer: Optional[str] = None
        self._pending_groups: set = set()
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Begin recovery by polling partition peers for their checkpoints."""
        self._started_at = self.host.now
        self._id_replies.clear()
        self.phase = RecoveryPhase.COLLECTING_IDS
        if not self._peers:
            # Nothing to install; recover purely from the acceptors' logs.
            self._begin_retransmission(from_positions={g: -1 for g in self._groups})
            return
        for peer in self._peers:
            self.host.send(peer, CheckpointRequest(requester=self.host.name))

    # -------------------------------------------------------------- messages
    def handle_checkpoint_reply(self, reply: CheckpointReply) -> None:
        """Process a peer's answer (either an id or the full state)."""
        if self.phase is RecoveryPhase.COLLECTING_IDS and not reply.includes_state:
            self._id_replies[reply.replica] = reply.checkpoint_id
            if len(self._id_replies) >= self._quorum:
                self._choose_checkpoint()
        elif self.phase is RecoveryPhase.FETCHING_STATE and reply.includes_state:
            self._install(reply)

    def handle_retransmit_reply(self, reply: RetransmitReply) -> None:
        """Apply a batch of retransmitted decisions from an acceptor."""
        if self.phase is not RecoveryPhase.RETRANSMITTING:
            return
        for instance, value in reply.decided:
            self._inject_decided(reply.ring_id, instance, value)
        self._pending_groups.discard(reply.ring_id)
        if not self._pending_groups:
            self._finish()

    # ------------------------------------------------------------- internals
    def _choose_checkpoint(self) -> None:
        best_peer: Optional[str] = None
        best_id: Optional[CheckpointId] = None
        for peer, checkpoint_id in self._id_replies.items():
            if checkpoint_id is None:
                continue
            if best_id is None or self._newer(checkpoint_id, best_id):
                best_peer, best_id = peer, checkpoint_id
        if best_peer is None or best_id is None:
            # No peer has a checkpoint: everything must come from the acceptors.
            self._begin_retransmission(from_positions={g: -1 for g in self._groups})
            return
        self._chosen_peer = best_peer
        self.phase = RecoveryPhase.FETCHING_STATE
        self.host.send(best_peer, CheckpointRequest(requester=self.host.name, include_state=True))

    @staticmethod
    def _newer(a: CheckpointId, b: CheckpointId) -> bool:
        """Whether checkpoint ``a`` is more up to date than ``b``.

        Checkpoints of one partition are totally ordered (Predicate 1), so
        comparing the instance tuples lexicographically by group id is
        sufficient.
        """
        return tuple(i for _, i in a.entries) > tuple(i for _, i in b.entries)

    def _install(self, reply: CheckpointReply) -> None:
        assert reply.checkpoint_id is not None
        self._install_state(reply.state, reply.checkpoint_id)
        positions = {
            g: reply.checkpoint_id.instance_for(g) for g in self._groups
        }
        self._begin_retransmission(from_positions=positions)

    def _begin_retransmission(self, from_positions: Dict[int, int]) -> None:
        self.phase = RecoveryPhase.RETRANSMITTING
        self._pending_groups = set(self._groups)
        for group in self._groups:
            acceptors = [
                a for a in self._acceptors_by_group.get(group, [])
                if not self.host.env.has_actor(a) or self.host.env.actor(a).alive
            ]
            if not acceptors:
                # Nobody can serve this group right now; consider it complete
                # so recovery does not hang (the live stream will fill gaps).
                self._pending_groups.discard(group)
                continue
            self.host.send(
                acceptors[0],
                RetransmitRequest(
                    ring_id=group,
                    from_instance=from_positions.get(group, -1) + 1,
                    to_instance=-1,
                    requester=self.host.name,
                ),
            )
        if not self._pending_groups:
            self._finish()

    def _finish(self) -> None:
        self.phase = RecoveryPhase.DONE
        self._finished_at = self.host.now
        self._on_complete()

    # ------------------------------------------------------------ inspection
    @property
    def duration(self) -> Optional[float]:
        """Wall-clock (simulated) duration of the last recovery, if finished."""
        if self._started_at is None or self._finished_at is None:
            return None
        return self._finished_at - self._started_at

    @property
    def chosen_peer(self) -> Optional[str]:
        """Peer whose checkpoint was installed (``None`` if none was)."""
        return self._chosen_peer
