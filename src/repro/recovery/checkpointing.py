"""Replica checkpointing (Section 5.2).

A Multi-Ring Paxos replica periodically snapshots its service state to stable
storage.  Because the state depends on commands delivered from every group the
replica subscribes to, the checkpoint is identified by a *tuple* of consensus
instances — one entry per group (:class:`repro.storage.checkpoint.CheckpointId`).

Predicate 1 of the paper requires ``x < y  =>  k[x] >= k[y]``: since learners
deliver groups in round-robin order of group id, the snapshot must not reflect
a later instance of a higher-numbered group than of a lower-numbered one.  The
checkpointer guarantees this (and keeps recovery simple) by only materialising
checkpoints at *round boundaries* of the deterministic merge: a checkpoint
request made mid-round is deferred until the merge finishes the round.

The checkpointer also supplies the replica's answer to the coordinator's trim
query — its *safe instance* per group, i.e. the highest instance of that group
already covered by a durable checkpoint.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..storage.checkpoint import Checkpoint, CheckpointId, CheckpointStore

__all__ = ["ReplicaCheckpointer"]

StateSnapshotFn = Callable[[], Tuple[Any, int]]
RoundBoundaryFn = Callable[[], bool]


class ReplicaCheckpointer:
    """Drives periodic checkpoints of one replica.

    Parameters
    ----------
    store:
        Durable checkpoint store (synchronous device writes, as in §7.2).
    snapshot_fn:
        Returns ``(state, size_bytes)`` — a deep snapshot of the service state.
    group_ids:
        Groups the replica subscribes to (its partition signature).
    at_round_boundary:
        Predicate telling whether the deterministic merge currently sits at a
        round boundary; checkpoints are deferred until it does.
    """

    def __init__(
        self,
        store: CheckpointStore,
        snapshot_fn: StateSnapshotFn,
        group_ids: List[int],
        at_round_boundary: Optional[RoundBoundaryFn] = None,
    ) -> None:
        if not group_ids:
            raise ValueError("a replica must subscribe to at least one group")
        self.store = store
        self._snapshot_fn = snapshot_fn
        self._groups = sorted(group_ids)
        self._at_round_boundary = at_round_boundary or (lambda: True)
        self._delivered: Dict[int, int] = {g: -1 for g in self._groups}
        self._pending_request = False
        self._checkpoints_taken = 0
        self._on_checkpoint: List[Callable[[Checkpoint], None]] = []

    # -------------------------------------------------------------- tracking
    def mark_delivered(self, group_id: int, instance: int) -> None:
        """Record that the replica applied ``instance`` of ``group_id``."""
        if group_id not in self._delivered:
            raise KeyError(f"unknown group {group_id}")
        if instance > self._delivered[group_id]:
            self._delivered[group_id] = instance

    def delivered_positions(self) -> Dict[int, int]:
        """Current highest applied instance per group."""
        return dict(self._delivered)

    # ----------------------------------------------------------- checkpointing
    def request_checkpoint(self) -> bool:
        """Ask for a checkpoint; taken now if at a round boundary, else deferred.

        Returns ``True`` if the checkpoint was taken immediately.
        """
        if self._at_round_boundary():
            self._take_checkpoint()
            return True
        self._pending_request = True
        return False

    def maybe_take_deferred(self) -> bool:
        """Take a previously deferred checkpoint if now at a round boundary."""
        if self._pending_request and self._at_round_boundary():
            self._pending_request = False
            self._take_checkpoint()
            return True
        return False

    def _take_checkpoint(self) -> Checkpoint:
        checkpoint_id = CheckpointId.from_mapping(self._delivered)
        state, size = self._snapshot_fn()
        checkpoint = self.store.save(checkpoint_id, state, size)
        self._checkpoints_taken += 1
        for callback in self._on_checkpoint:
            callback(checkpoint)
        return checkpoint

    def on_checkpoint(self, callback: Callable[[Checkpoint], None]) -> None:
        """Register a callback fired after every completed checkpoint."""
        self._on_checkpoint.append(callback)

    # ---------------------------------------------------------------- queries
    def latest(self) -> Optional[Checkpoint]:
        """Most recent checkpoint (``None`` when none was ever taken)."""
        return self.store.latest()

    def safe_instance(self, group_id: int) -> int:
        """Highest instance of ``group_id`` covered by a durable checkpoint.

        This is the value the replica reports to the coordinator's trim query
        (``k[x]_p`` in the paper).  ``-1`` means nothing can be trimmed yet.
        """
        latest = self.store.latest()
        if latest is None:
            return -1
        return latest.checkpoint_id.instance_for(group_id)

    def install(self, checkpoint: Checkpoint) -> None:
        """Adopt a remote checkpoint's positions (state install happens in the replica)."""
        for group, instance in checkpoint.checkpoint_id.as_dict().items():
            if group in self._delivered and instance > self._delivered[group]:
                self._delivered[group] = instance

    @property
    def checkpoints_taken(self) -> int:
        """Number of checkpoints taken by this replica since it started."""
        return self._checkpoints_taken

    @property
    def groups(self) -> List[int]:
        """Groups covered by this checkpointer."""
        return list(self._groups)
