"""Recovery protocol: checkpointing, quorum-based log trimming, replica recovery."""

from .checkpointing import ReplicaCheckpointer
from .recover import RecoveryManager, RecoveryPhase
from .trim import compute_trim_point, predicates_hold, trim_quorum_size

__all__ = [
    "ReplicaCheckpointer",
    "RecoveryManager",
    "RecoveryPhase",
    "compute_trim_point",
    "predicates_hold",
    "trim_quorum_size",
]
