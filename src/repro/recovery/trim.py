"""Coordinator-driven acceptor log trimming (Section 5.2).

Periodically the coordinator of multicast group ``x`` asks the replicas that
subscribe to ``x`` for the highest consensus instance each has safely
checkpointed (``k[x]_p``).  After collecting a *trim quorum* ``Q_T`` of
answers it computes

    K[x]_T = min over the quorum of k[x]_p          (Predicate 2)

and instructs the acceptors of ring ``x`` to delete data about every instance
up to ``K[x]_T``.  Taking the minimum over a quorum — rather than, say, the
maximum — is what makes recovery safe: combined with the requirement that the
recovery quorum ``Q_R`` intersects ``Q_T``, a recovering replica that picks
the most recent checkpoint available in ``Q_R`` is guaranteed the acceptors
still hold every instance the checkpoint is missing (Predicates 3-5).

The message exchange lives in :class:`repro.ringpaxos.node.RingNode`; this
module holds the pure quorum computation so it can be property-tested against
the predicates directly.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = ["compute_trim_point", "trim_quorum_size", "predicates_hold"]


def trim_quorum_size(replica_count: int) -> int:
    """Default trim quorum: a majority of the group's replicas."""
    if replica_count <= 0:
        raise ValueError("replica_count must be positive")
    return replica_count // 2 + 1


def compute_trim_point(reports: Mapping[str, int], quorum: int) -> Optional[int]:
    """``K[x]_T`` from the collected ``k[x]_p`` reports, or ``None`` if below quorum.

    Parameters
    ----------
    reports:
        ``{replica_name: safe_instance}`` as received so far.
    quorum:
        The trim quorum size ``|Q_T|``.
    """
    if quorum <= 0:
        raise ValueError("quorum must be positive")
    if len(reports) < quorum:
        return None
    trim_point = min(reports.values())
    if trim_point < 0:
        return None
    return trim_point


def predicates_hold(
    trim_quorum: Mapping[str, int],
    recovery_quorum: Mapping[str, int],
) -> bool:
    """Check Predicate 5 (``K_T <= K_R``) for one group given the two quorums.

    ``trim_quorum`` maps replica name to the ``k[x]_p`` it reported when the
    coordinator trimmed; ``recovery_quorum`` maps replica name to the
    checkpointed instance it offered to the recovering replica.  When the two
    quorums intersect, the trim point (min over ``Q_T``) cannot exceed the best
    checkpoint available in ``Q_R`` (max over ``Q_R``) — which is exactly what
    guarantees the recovering replica can fetch everything newer than its
    chosen checkpoint from the acceptors.
    """
    if not trim_quorum or not recovery_quorum:
        return True
    if not set(trim_quorum) & set(recovery_quorum):
        # The guarantee only holds for intersecting quorums.
        raise ValueError("trim and recovery quorums do not intersect")
    return min(trim_quorum.values()) <= max(recovery_quorum.values())
