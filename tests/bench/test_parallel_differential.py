"""Seed-differential tests of sharded execution (the acceptance bar of the
parallel substrate): for the same seed, the sharded engine must produce the
identical per-learner delivery sequence as the single-process engine.

Two comparisons, from strongest to broadest:

* **merged-simulator equivalence** — a two-ring deployment built once on one
  shared simulator and once as two shards; with deterministic latencies
  (jitter off) and site-disjoint rings the delivery sequences are
  bit-identical.  This pins the conservative-window engine to the semantics
  of the original kernel.
* **worker-count invariance** — the full Figure 6 sharded deployment (real
  service stack: dLog replicas, batching coordinators, dedicated disks) run
  with ``workers=1`` (the in-process single-process engine) and ``workers=2``
  (two forked workers); every replica's full delivery sequence and every
  measured rate must match.
"""

from __future__ import annotations

from repro.bench.parallel import run_fig6_sharded, run_fig7_sharded
from repro.core import AtomicMulticast, ChurnSpec, MultiRingConfig
from repro.multiring import MultiRingProcess
from repro.sim import ShardHarness, ShardSpec, Topology, run_sharded
from repro.workloads.arrival import flash_crowd

RING_PROCESSES = 3
MESSAGES_PER_RING = 12
HORIZON = 1.5


def _config() -> MultiRingConfig:
    return MultiRingConfig(
        rate_interval=0.005,
        max_rate=1000.0,
        checkpoint_interval=None,
        trim_interval=None,
    )


def _two_site_topology() -> Topology:
    # One site per ring; no inter-site link is defined because the rings
    # never talk to each other (that is what makes them shardable).
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    return topo


class RecordingProcess(MultiRingProcess):
    def __init__(self, env, name, site):
        super().__init__(env, name, site)
        self.delivered = []

    def on_deliver(self, group_id, instance, value):
        self.delivered.append((group_id, instance, value.payload))


def _build_ring(system: AtomicMulticast, ring_id: int):
    """One ring: three pal processes on the ring's own site, plus traffic."""
    site = f"s{ring_id}"
    processes = [
        RecordingProcess(system.env, f"r{ring_id}n{i}", site)
        for i in range(RING_PROCESSES)
    ]
    system.create_ring(ring_id, [(p.name, "pal") for p in processes])
    sim = system.env.simulator
    for index in range(MESSAGES_PER_RING):
        proposer = processes[index % RING_PROCESSES]
        sim.call_later(
            0.01 + 0.02 * index,
            proposer.multicast,
            ring_id,
            f"g{ring_id}-m{index}",
            128,
        )
    return processes


class _RingShard(ShardHarness):
    def __init__(self, system, processes):
        super().__init__(system.env)
        self.system = system
        self.processes = processes

    def start(self):
        self.system.start()

    def run_window(self, end):
        self.system.run(until=HORIZON)

    def finalize(self):
        return {p.name: p.delivered for p in self.processes}


def _build_ring_shard(ring_id: int) -> _RingShard:
    system = AtomicMulticast(
        topology=_two_site_topology(), config=_config(), seed=42, jitter_fraction=0.0
    )
    return _RingShard(system, _build_ring(system, ring_id))


def _run_merged():
    system = AtomicMulticast(
        topology=_two_site_topology(), config=_config(), seed=42, jitter_fraction=0.0
    )
    processes = _build_ring(system, 0) + _build_ring(system, 1)
    system.start()
    system.run(until=HORIZON)
    return {p.name: p.delivered for p in processes}


def test_sharded_matches_merged_single_simulator():
    """Shards reproduce the merged single-simulator run bit for bit."""
    reference = _run_merged()
    assert any(reference.values()), "merged run delivered nothing"
    run = run_sharded(
        [ShardSpec(r, _build_ring_shard, r) for r in range(2)], workers=1
    )
    sharded = {**run.results[0], **run.results[1]}
    assert sharded == reference
    # Every ring delivered its full message sequence, in proposal order.
    payloads = [p for (_, _, p) in sharded["r0n0"]]
    assert payloads == [f"g0-m{i}" for i in range(MESSAGES_PER_RING)]


def test_sharded_workers_match_merged_single_simulator():
    """The multiprocessing path agrees with the merged reference too."""
    reference = _run_merged()
    run = run_sharded(
        [ShardSpec(r, _build_ring_shard, r) for r in range(2)], workers=2
    )
    assert {**run.results[0], **run.results[1]} == reference


def test_fig6_sharded_seed_differential():
    """Figure 6 sharded point: workers=2 == the single-process engine.

    Full service stack (dLog replicas, batching coordinators, dedicated
    disks, closed-loop clients); the comparison covers every replica's entire
    delivery sequence and every measured rate.
    """
    kwargs = dict(warmup=0.2, duration=0.6, record_deliveries=True)
    single = run_fig6_sharded(2, workers=1, **kwargs)
    sharded = run_fig6_sharded(2, workers=2, **kwargs)
    assert single.series["deliveries"] == sharded.series["deliveries"]
    assert single.metrics["aggregate_ops"] == sharded.metrics["aggregate_ops"]
    assert single.metrics["events_total"] == sharded.metrics["events_total"]
    deliveries = single.series["deliveries"]
    assert set(deliveries) == {0, 1}
    assert all(sequences["dlog-replica0"] for sequences in deliveries.values())


def test_fig6_original_configuration_sharded_differential():
    """Figure 6's *original* deployment (shared learner + common ring) shards.

    One shard per log ring plus the common-ring shard; a parent-hosted
    **reactive** dLog replica applies the merged round-robin order barrier by
    barrier as the shards stream their decision-stream segments.  The
    complete reactively-applied sequence, every per-ring stream and every
    measured rate must be bit-identical between ``workers=1`` (the
    single-process reference engine) and ``workers=2`` — and the reactive
    order must equal the offline ``replay_streams`` of the same streams.
    """
    kwargs = dict(
        warmup=0.2, duration=0.6, record_deliveries=True, configuration="shared"
    )
    single = run_fig6_sharded(2, workers=1, **kwargs)
    sharded = run_fig6_sharded(2, workers=2, **kwargs)
    assert single.series["merged_deliveries"] == sharded.series["merged_deliveries"]
    assert single.series["ring_streams"] == sharded.series["ring_streams"]
    assert single.series["deliveries"] == sharded.series["deliveries"]
    assert single.metrics["aggregate_ops"] == sharded.metrics["aggregate_ops"]
    assert single.metrics["events_total"] == sharded.metrics["events_total"]
    # Streaming == offline: the reactive replica applied exactly the sequence
    # the offline replay reconstructs from the concatenated segments.
    for result in (single, sharded):
        assert (
            result.series["merged_deliveries"]
            == result.series["merged_deliveries_offline"]
        ), "reactive merge diverged from the offline replay"
    # The deployment really is the original shape: both log rings plus the
    # rate-leveled common ring feed the merge, and the merged order
    # interleaves the log rings' appends.
    assert set(single.series["ring_streams"]) == {0, 1, 99}
    assert single.series["ring_streams"][99], "common ring recorded no stream"
    merged = single.series["merged_deliveries"]["dlog-replica0"]
    assert merged, "merge stage delivered nothing"
    assert {group for group, _, _ in merged} == {0, 1}  # common ring: skips only
    # Reactive service accounting: the run is windowed (streaming barriers),
    # the hosted replica executed every merged command, and client-visible
    # merge latency was recorded — identically across worker counts.
    for result in (single, sharded):
        assert result.metrics["barrier_count"] > 1
        assert result.metrics["reactive_commands_applied"] == float(len(merged))
        assert result.metrics["reactive_latency_count"] > 0
        assert result.metrics["reactive_latency_mean_ms"] > 0.0
        assert result.metrics["merge_stage_s"] >= 0.0
        assert (
            result.metrics["shard_wall_clock_s"]
            == result.metrics["wall_clock_s"] - result.metrics["merge_stage_s"]
        )
    assert (
        single.metrics["reactive_latency_mean_ms"]
        == sharded.metrics["reactive_latency_mean_ms"]
    )


def test_fig6_faulted_crash_schedule_differential():
    """A fixed crash schedule leaves the faulted run bit-identical.

    The shared learner's in-shard mirrors crash at a scheduled simulated
    instant and restart later; the restarted incarnations re-emit their
    stream prefixes, the barrier cuts omit the down rings (the reactive
    hosts' joint watermark stalls), and the incarnation-aware merge dedups
    the re-emission.  The reactively merged state must still be
    bit-identical between ``workers=1`` and ``workers=2``, and equal to the
    offline ``effective_streams``/``replay_streams`` anchor.
    """
    kwargs = dict(
        warmup=0.3,
        duration=1.2,
        record_deliveries=True,
        configuration="shared",
        crash_schedule=[(0.7, "dlog-replica0", 0.4)],
    )
    single = run_fig6_sharded(2, workers=1, **kwargs)
    sharded = run_fig6_sharded(2, workers=2, **kwargs)
    assert single.series["merged_deliveries"] == sharded.series["merged_deliveries"]
    assert single.series["ring_streams"] == sharded.series["ring_streams"]
    assert single.metrics["events_total"] == sharded.metrics["events_total"]
    for result in (single, sharded):
        assert result.params["faulted"] is True
        assert (
            result.series["merged_deliveries"]
            == result.series["merged_deliveries_offline"]
        ), "faulted reactive merge diverged from the offline anchor"
        # The crash opened a stall window at the reactive stage, and it is
        # reported identically whatever the worker count.
        assert result.metrics["reactive_stall_count"] >= 1.0
        assert result.metrics["reactive_stalled_ms"] > 0.0
    assert (
        single.metrics["reactive_stalled_ms"]
        == sharded.metrics["reactive_stalled_ms"]
    )
    merged = single.series["merged_deliveries"]["dlog-replica0"]
    assert merged, "faulted merge stage delivered nothing"
    assert {group for group, _, _ in merged} == {0, 1}


def test_fig7_original_configuration_sharded_differential():
    """Figure 7's *original* deployment (partition rings + global ring) shards.

    One shard per region plus the global-ring shard (dedicated global
    acceptors, so the rings share learners only); the merge stage
    reconstructs each replica's round-robin order over its partition ring
    and the global ring.  Bit-identical between ``workers=1`` and
    ``workers=2`` on the complete merged sequences and streams.
    """
    kwargs = dict(
        warmup=0.3, duration=0.7, record_deliveries=True, configuration="shared"
    )
    single = run_fig7_sharded(2, workers=1, **kwargs)
    sharded = run_fig7_sharded(2, workers=2, **kwargs)
    assert single.series["merged_deliveries"] == sharded.series["merged_deliveries"]
    assert single.series["ring_streams"] == sharded.series["ring_streams"]
    assert single.series["deliveries"] == sharded.series["deliveries"]
    assert single.metrics["aggregate_ops"] == sharded.metrics["aggregate_ops"]
    assert single.metrics["events_total"] == sharded.metrics["events_total"]
    for result in (single, sharded):
        assert (
            result.series["merged_deliveries"]
            == result.series["merged_deliveries_offline"]
        ), "reactive merge diverged from the offline replay"
        assert result.metrics["barrier_count"] > 1
        assert result.metrics["reactive_latency_count"] > 0
    assert set(single.series["ring_streams"]) == {0, 1, 50}
    assert single.series["ring_streams"][50], "global ring recorded no stream"
    merged = single.series["merged_deliveries"]
    assert set(merged) == {"kv0-replica0", "kv1-replica0"}
    for group, sequence in enumerate([merged["kv0-replica0"], merged["kv1-replica0"]]):
        assert sequence, "merge stage delivered nothing"
        # Each replica's application deliveries come from its own partition
        # (the global ring carries rate-leveled skips only).
        assert {g for g, _, _ in sequence} == {group}


def test_fig7_swarm_engine_matches_individual_actors():
    """The sharded swarm engine == individual client actors, workers 1 and 2.

    ``client_engine="swarm"`` with ``users_per_region=K`` must drive each
    region shard exactly like ``K`` individual :class:`OpenLoopClient`
    actors: identical per-replica delivery digests (which pin issuing client
    names, operations, arguments and ``created_at`` timestamps) and identical
    measured rates — and the swarm run itself must be worker-count invariant.
    """
    kwargs = dict(
        warmup=0.3,
        duration=0.7,
        key_count=100,
        offered_rate_per_region=120.0,
        users_per_region=3,
        record_deliveries=True,
    )
    actors = run_fig7_sharded(2, workers=1, client_engine="actors", **kwargs)
    swarm = run_fig7_sharded(2, workers=1, client_engine="swarm", **kwargs)
    assert swarm.series["deliveries"] == actors.series["deliveries"]
    assert swarm.metrics["aggregate_ops"] == actors.metrics["aggregate_ops"]
    assert swarm.metrics["swarm_completed"] > 0
    deliveries = actors.series["deliveries"]
    issuers = {
        command[3]
        for shard in deliveries.values()
        for sequence in shard.values()
        for (_, _, payload_key) in sequence
        for command in (payload_key if isinstance(payload_key[0], tuple) else (payload_key,))
    }
    assert any(name.startswith("fig7-client-") and name.endswith("-0") for name in issuers)
    sharded = run_fig7_sharded(2, workers=2, client_engine="swarm", **kwargs)
    assert sharded.series["deliveries"] == swarm.series["deliveries"]
    assert sharded.metrics["aggregate_ops"] == swarm.metrics["aggregate_ops"]
    assert sharded.metrics["events_total"] == swarm.metrics["events_total"]


def test_fig7_flash_crowd_swarm_trace_deterministic():
    """Flash crowd + churn: the swarm's command trace is fully deterministic.

    The same seed must yield a byte-identical issued-command trace —
    ``(client, sequence, op, args, group, created_at)`` tuples — across
    repeated runs *and* across worker counts, with the offered load following
    a flash-crowd arrival curve and clients churning off and back on.
    """
    kwargs = dict(
        warmup=0.2,
        duration=1.0,
        key_count=100,
        offered_rate_per_region=60.0,
        client_engine="swarm",
        users_per_region=20,
        arrival=flash_crowd(base=60.0, peak=600.0, at=0.5, ramp=0.2, hold=0.3, decay=0.2),
        churn=ChurnSpec(rate=10.0, downtime=0.2),
        stagger=True,
        record_swarm_trace=True,
    )
    first = run_fig7_sharded(2, workers=1, **kwargs)
    second = run_fig7_sharded(2, workers=1, **kwargs)
    sharded = run_fig7_sharded(2, workers=2, **kwargs)
    traces = first.series["swarm_traces"]
    assert set(traces) == {0, 1}
    assert all(trace for trace in traces.values()), "swarm issued nothing"
    assert second.series["swarm_traces"] == traces
    assert sharded.series["swarm_traces"] == traces
    assert sharded.metrics["events_total"] == first.metrics["events_total"]
    # The flash crowd actually ramped: the second half of the window issues
    # far more than the first (peak is 10x base).
    for trace in traces.values():
        times = [entry[5] for entry in trace]
        midpoint = 0.2 + 0.5  # warmup + flash onset
        early = sum(1 for t in times if t < midpoint)
        late = sum(1 for t in times if t >= midpoint)
        assert late > early


def test_fig6_wire_codec_differential():
    """The compact wire codec is invisible to results and visible to the wire.

    The shared-learner deployment ships real protocol payloads (segments of
    ``ProposalValue``/``PackedValues``/``Command``) across the worker pipes
    every barrier: the reactively merged delivery sequence, the per-ring
    streams and every measured rate must be byte-identical with the codec on
    and off, while the codec run frames strictly fewer IPC bytes.
    """
    kwargs = dict(
        warmup=0.2, duration=0.6, record_deliveries=True, configuration="shared"
    )
    codec = run_fig6_sharded(2, workers=2, wire_codec=True, **kwargs)
    legacy = run_fig6_sharded(2, workers=2, wire_codec=False, **kwargs)
    assert codec.series["merged_deliveries"] == legacy.series["merged_deliveries"]
    assert codec.series["ring_streams"] == legacy.series["ring_streams"]
    assert codec.series["deliveries"] == legacy.series["deliveries"]
    assert codec.metrics["aggregate_ops"] == legacy.metrics["aggregate_ops"]
    assert codec.metrics["events_total"] == legacy.metrics["events_total"]
    assert codec.metrics["barrier_count"] == legacy.metrics["barrier_count"]
    assert 0 < codec.metrics["ipc_bytes"] < legacy.metrics["ipc_bytes"]
