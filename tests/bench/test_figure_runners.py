"""Smoke tests of the benchmark harness (tiny versions of every figure)."""

import pytest

from repro.bench import (
    ExperimentResult,
    MeasurementWindow,
    format_results,
    format_table,
    relative_increments,
    run_fig3_point,
    run_fig4_point,
    run_fig5_point,
    run_fig6_point,
    run_fig7_point,
    run_fig8,
)
from repro.sim.disk import StorageMode


class TestReporting:
    def test_format_table_aligns_columns(self):
        table = format_table(["a", "metric"], [["x", 1.5], ["longer", 12345.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "12,345" in table

    def test_format_results(self):
        results = [
            ExperimentResult(name="t", params={"p": 1}, metrics={"m": 2.0}),
            ExperimentResult(name="t", params={"p": 2}, metrics={"m": 4.0}),
        ]
        text = format_results(results, ["p"], ["m"], title="demo")
        assert text.startswith("demo")
        assert "4.00" in text

    def test_relative_increments(self):
        increments = relative_increments([100.0, 200.0, 290.0])
        assert increments[0] == 100.0
        assert increments[1] == pytest.approx(100.0)
        assert increments[2] == pytest.approx(90.0)
        assert relative_increments([]) == []

    def test_experiment_result_helpers(self):
        result = ExperimentResult(name="x", params={"a": 1}, metrics={"m": 3.0})
        assert result.metric("m") == 3.0
        assert result.metric("missing", default=7.0) == 7.0
        assert "a=1" in result.describe()

    def test_measurement_window(self):
        window = MeasurementWindow(warmup=1.0, duration=2.0)
        assert window.end == 3.0


@pytest.mark.slow
class TestFigureRunnersSmoke:
    """Each figure runner produces sane metrics at a tiny scale."""

    def test_fig3_runner(self):
        result = run_fig3_point(2048, StorageMode.IN_MEMORY, warmup=0.2, duration=0.8)
        assert result.metrics["ops_per_s"] > 0
        assert result.metrics["throughput_mbps"] > 0
        assert result.series["latency_cdf"]

    def test_fig4_runner(self):
        result = run_fig4_point("mysql", "C", client_threads=8, record_count=300,
                                warmup=0.2, duration=0.8)
        assert result.metrics["throughput_ops"] > 0

    def test_fig4_mrp_runner(self):
        result = run_fig4_point("mrp-store-indep", "A", client_threads=8, record_count=300,
                                warmup=0.2, duration=0.8)
        assert result.metrics["throughput_ops"] > 0

    def test_fig5_runner(self):
        result = run_fig5_point("bookkeeper", 8, warmup=0.2, duration=0.8)
        assert result.metrics["throughput_ops"] > 0
        assert result.metrics["latency_mean_ms"] > 0

    def test_fig6_runner(self):
        result = run_fig6_point(1, clients_per_ring=4, warmup=0.2, duration=0.8)
        assert result.metrics["aggregate_ops"] > 0

    def test_fig7_runner(self):
        result = run_fig7_point(1, clients_per_region=4, key_count=200, warmup=0.5, duration=1.5)
        assert result.metrics["aggregate_ops"] > 0

    def test_fig8_runner(self):
        result = run_fig8(time_scale=0.02, load_ops_per_s=500, key_count=200)
        assert result.metrics["victim_recovered"] == 1.0
        assert result.series["throughput_timeline"]

    def test_fig8_rejects_inconsistent_times(self):
        with pytest.raises(ValueError):
            run_fig8(duration=10.0, crash_at=8.0, restart_at=5.0)
