"""Property-style integration tests of the atomic multicast guarantees.

Section 2 of the paper defines atomic multicast by three properties:

* **agreement** — if a process delivers m, every correct subscriber of m's
  group delivers m;
* **validity** — a message multicast by a correct process is eventually
  delivered by every correct subscriber of the group;
* **order** — the relation "delivered before" is acyclic: any two processes
  deliver common messages in the same relative order.

These tests run whole deployments through randomized workloads and check the
properties on the recorded delivery sequences.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AtomicMulticast, MultiRingConfig

from tests.conftest import RecordingProcess


def build_system(group_count, process_specs, seed=1, rate=500.0):
    """``process_specs`` maps process name -> set of groups it subscribes to."""
    config = MultiRingConfig(rate_interval=0.005, max_rate=rate,
                             checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(seed=seed, config=config)
    processes = {
        name: RecordingProcess(system.env, name) for name in process_specs
    }
    for group in range(group_count):
        members = []
        for name, groups in process_specs.items():
            if group in groups:
                members.append((name, "pal"))
        system.create_ring(group, members)
    system.start()
    return system, processes


def relative_order(sequence, common):
    """The order of the elements of ``common`` inside ``sequence``."""
    return [item for item in sequence if item in common]


class TestAgreementAndValidity:
    def test_every_subscriber_delivers_every_multicast_message(self):
        specs = {"p0": {0, 1}, "p1": {0, 1}, "p2": {0}, "p3": {1}}
        system, processes = build_system(2, specs, seed=3)
        sent = {0: [], 1: []}
        rng = random.Random(3)
        for i in range(30):
            group = rng.choice([0, 1])
            sender = rng.choice([n for n, groups in specs.items() if group in groups])
            payload = f"g{group}-m{i}"
            processes[sender].multicast(group, payload=payload, size_bytes=64)
            sent[group].append(payload)
        system.run(until=3.0)
        for name, groups in specs.items():
            delivered = processes[name].delivered_payloads()
            for group in groups:
                for payload in sent[group]:
                    assert payload in delivered, f"{name} missed {payload}"
            # no spurious deliveries from groups the process does not subscribe to
            for group in set(sent) - groups:
                assert not any(p in delivered for p in sent[group])

    def test_no_duplicate_deliveries(self):
        specs = {"p0": {0}, "p1": {0}, "p2": {0}}
        system, processes = build_system(1, specs, seed=4)
        for i in range(25):
            processes["p0"].multicast(0, payload=f"m{i}", size_bytes=64)
        system.run(until=2.0)
        for process in processes.values():
            delivered = process.delivered_payloads()
            assert len(delivered) == len(set(delivered)) == 25


class TestTotalOrderWithinGroup:
    def test_all_subscribers_deliver_in_the_same_order(self):
        specs = {"p0": {0}, "p1": {0}, "p2": {0}, "p3": {0}}
        system, processes = build_system(1, specs, seed=5)
        rng = random.Random(5)
        for i in range(40):
            sender = rng.choice(list(specs))
            processes[sender].multicast(0, payload=i, size_bytes=64)
        system.run(until=3.0)
        sequences = [p.delivered_payloads() for p in processes.values()]
        assert all(seq == sequences[0] for seq in sequences)


class TestAcyclicOrderAcrossGroups:
    def test_pairwise_relative_order_is_consistent(self):
        """The paper's order property: < is acyclic across groups.

        p0/p1 subscribe to both groups, p2 only to group 0, p3 only to group 1:
        every pair of processes must agree on the relative order of the
        messages they both deliver.
        """
        specs = {"p0": {0, 1}, "p1": {0, 1}, "p2": {0}, "p3": {1}}
        system, processes = build_system(2, specs, seed=6)
        rng = random.Random(6)
        for i in range(30):
            group = rng.choice([0, 1])
            sender = rng.choice([n for n, groups in specs.items() if group in groups])
            processes[sender].multicast(group, payload=f"g{group}-m{i}", size_bytes=64)
        system.run(until=3.0)
        sequences = {name: p.delivered_payloads() for name, p in processes.items()}
        for (name_a, seq_a), (name_b, seq_b) in itertools.combinations(sequences.items(), 2):
            common = set(seq_a) & set(seq_b)
            assert relative_order(seq_a, common) == relative_order(seq_b, common), (
                f"{name_a} and {name_b} disagree on the order of common messages"
            )

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_order_property_holds_for_random_seeds(self, seed):
        specs = {"p0": {0, 1}, "p1": {0, 1}, "p2": {1}}
        system, processes = build_system(2, specs, seed=seed)
        rng = random.Random(seed)
        for i in range(15):
            group = rng.choice([0, 1])
            sender = rng.choice([n for n, groups in specs.items() if group in groups])
            processes[sender].multicast(group, payload=(group, i), size_bytes=64)
        system.run(until=3.0)
        sequences = [p.delivered_payloads() for p in processes.values()]
        for seq_a, seq_b in itertools.combinations(sequences, 2):
            common = set(seq_a) & set(seq_b)
            assert relative_order(seq_a, common) == relative_order(seq_b, common)


class TestDeterminism:
    def test_same_seed_reproduces_the_same_delivery_sequence(self):
        def run_once():
            specs = {"p0": {0, 1}, "p1": {0, 1}}
            system, processes = build_system(2, specs, seed=77)
            for i in range(20):
                processes["p0"].multicast(i % 2, payload=f"m{i}", size_bytes=64)
            system.run(until=2.0)
            return processes["p1"].delivered_payloads()

        assert run_once() == run_once()
