"""End-to-end scenarios combining services, failures and geo-distribution."""

import random

import pytest

from repro.core import AtomicMulticast, MultiRingConfig, global_config
from repro.dlog import DLogService
from repro.kvstore import MRPStoreService, RangePartitioner
from repro.sim.topology import ec2_global
from repro.workloads import preload_keys, update_only_workload


class TestGeoDistributedStore:
    def test_regional_partitions_with_global_ring(self):
        regions = ["us-west-2", "us-west-1"]
        config = global_config().with_(checkpoint_interval=None, trim_interval=None,
                                       batching_enabled=True)
        system = AtomicMulticast(topology=ec2_global(regions), config=config, seed=17)
        service = MRPStoreService(
            system,
            partition_groups=[0, 1],
            acceptors_per_partition=3,
            replicas_per_partition=1,
            site_for_partition={0: regions[0], 1: regions[1]},
            global_ring_id=50,
            config=config,
        )
        service.preload(preload_keys(100))
        rng = random.Random(17)
        client = service.create_client(
            "geo-client", update_only_workload(rng, key_count=100), concurrency=4,
            site=regions[0],
        )
        system.start()
        system.run(until=6.0)
        assert client.completed > 10
        # cross-region latency is visible but bounded by a couple of WAN rounds
        latency = system.env.metrics.latency("geo-client.latency")
        assert 0.001 < latency.mean() < 0.5

    def test_regions_progress_independently(self):
        regions = ["us-west-2", "us-east-1"]
        config = global_config().with_(checkpoint_interval=None, trim_interval=None)
        system = AtomicMulticast(topology=ec2_global(regions), config=config, seed=19)
        service = MRPStoreService(
            system,
            partition_groups=[0, 1],
            acceptors_per_partition=3,
            replicas_per_partition=1,
            site_for_partition={0: regions[0], 1: regions[1]},
            global_ring_id=50,
            config=config,
        )
        rng = random.Random(19)
        from repro.core.client import ClosedLoopClient
        from repro.kvstore.client import MRPStoreCommands, kv_request_factory
        from repro.kvstore.partitioning import HashPartitioner

        clients = []
        for group, region in enumerate(regions):
            commands = MRPStoreCommands(HashPartitioner([group]))
            factory = kv_request_factory(
                commands, update_only_workload(rng, key_count=50, key_prefix=f"r{group}-")
            )
            clients.append(ClosedLoopClient(
                system.env, f"client-{region}",
                frontends_by_group=service.frontend_map(preferred_site=region),
                request_factory=factory, concurrency=2, site=region,
                metric_prefix=f"client-{region}",
            ))
        system.start()
        system.run(until=6.0)
        assert all(c.completed > 5 for c in clients)


class TestMixedServiceDeployment:
    @pytest.mark.slow
    def test_kvstore_and_dlog_share_one_deployment(self):
        config = MultiRingConfig(rate_interval=0.005, max_rate=500.0,
                                 checkpoint_interval=None, trim_interval=None)
        system = AtomicMulticast(seed=23, config=config)
        store = MRPStoreService(system, partition_groups=[0], replicas_per_partition=2,
                                config=config)
        log = DLogService(system, log_ids=[10], acceptors_per_log=2, replica_count=2,
                          config=config)
        store.preload(preload_keys(50))
        rng = random.Random(23)
        kv_client = store.create_client("kv-client", update_only_workload(rng, key_count=50),
                                        concurrency=2)
        log_client = log.create_append_client("log-client", concurrency=2)
        system.start()
        system.run(until=3.0)
        assert kv_client.completed > 20
        assert log_client.completed > 20


class TestRangePartitionedStore:
    def test_range_scans_touch_only_covering_partitions(self):
        config = MultiRingConfig(rate_interval=0.005, max_rate=300.0,
                                 checkpoint_interval=None, trim_interval=None)
        system = AtomicMulticast(seed=29, config=config)
        partitioner = RangePartitioner([0, 1], splits=["m"])
        service = MRPStoreService(system, partition_groups=[0, 1], partitioner=partitioner,
                                  replicas_per_partition=1, config=config)
        service.preload({"apple": 64, "banana": 64, "melon": 64, "zebra": 64})

        def scan_low_half(sequence):
            return ("scan", "a", 0, "d")

        client = service.create_client("scanner", scan_low_half, concurrency=1, max_requests=5)
        system.start()
        system.run(until=2.0)
        assert client.completed == 5
        low_replica = service.replicas[0][0]
        high_replica = service.replicas[1][0]
        assert low_replica.commands_applied >= 5
        assert high_replica.commands_applied == 0
