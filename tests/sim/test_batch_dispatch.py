"""Kernel same-actor batch dispatch and learner batch drain: differentials.

The event-run dispatch (``Simulator(batch_dispatch=True)`` drains consecutive
heap entries destined for one actor in a single pass) and the learner-side
batch drain are pure mechanical optimisations: every differential here pins
the executed sequence, clock and protocol-level deliveries to the default
paths — and, with batching off, to the frozen seed substrate.
"""

import random

import pytest

import repro.core.amcast as amcast
import repro.sim.actor as actor_mod
from repro.core import AtomicMulticast, MultiRingConfig
from repro.multiring import MultiRingProcess
from repro.paxos.messages import SKIP, ProposalValue
from repro.ringpaxos.learner import RingLearner
from repro.sim.disk import StorageMode
from repro.sim.kernel import Simulator
from repro.sim.legacy import LegacyNetwork, LegacySimulator


def _post_heavy_trace(sim, seed: int, operations: int = 300):
    """A workload dominated by ``_post`` entries sharing one callback.

    Mimics the network's delivery pattern — one bound callback, the
    destination identified by the first argument — which is exactly the shape
    the batch dispatcher groups.  Interleaves plain scheduled events and
    posts to different targets so the group-breaking conditions are hit too.
    """
    rng = random.Random(seed)
    log = []
    targets = ["conn-a", "conn-b", "conn-c"]

    def deliver(target, tag):
        log.append(("deliver", round(sim.now, 9), target, tag))
        if rng.random() < 0.3:
            sim._post(rng.uniform(0.0, 0.5), deliver,
                      (rng.choice(targets), f"{tag}.n"))

    def fire(tag):
        log.append(("fire", round(sim.now, 9), tag))

    for i in range(operations):
        roll = rng.random()
        if roll < 0.7:
            sim._post(rng.uniform(0.0, 2.0), deliver, (rng.choice(targets), str(i)))
        else:
            sim.schedule(rng.uniform(0.0, 2.0), fire, str(i))
    sim.run(until=5.0)
    return log


class TestBatchDispatchKernel:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_post_heavy_workload_identical_to_default(self, seed):
        default = Simulator()
        batched = Simulator(batch_dispatch=True)
        assert _post_heavy_trace(default, seed) == _post_heavy_trace(batched, seed)
        assert default.now == batched.now
        assert default.processed_events == batched.processed_events

    def test_stop_inside_a_run_halts_the_drain(self):
        sim = Simulator(batch_dispatch=True)
        fired = []

        def deliver(target, tag):
            fired.append(tag)
            if tag == "b":
                sim.stop()

        for tag in ("a", "b", "c", "d"):
            sim._post(1.0, deliver, ("conn", tag))
        sim.run(until=5.0)
        assert fired == ["a", "b"]

    def test_max_events_stays_exact(self):
        sim = Simulator(batch_dispatch=True)
        fired = []
        for tag in ("a", "b", "c"):
            sim._post(1.0, fired.append, (tag,))
        sim.run(max_events=2)
        assert fired == ["a", "b"]


class _Recorder(MultiRingProcess):
    def __init__(self, env, name):
        super().__init__(env, name)
        self.delivered = []

    def on_deliver(self, group_id, instance, value):
        self.delivered.append((group_id, instance, value.payload, round(self.now, 12)))
        if len(self.delivered) < 40:
            self.multicast(0, payload=(self.name, len(self.delivered)), size_bytes=512)


def _run_stack(seed: int, kernel_batch_dispatch: bool):
    config = MultiRingConfig(
        storage_mode=StorageMode.IN_MEMORY,
        batching_enabled=False,
        kernel_batch_dispatch=kernel_batch_dispatch,
        rate_interval=None,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(config=config, seed=seed)
    processes = [_Recorder(system.env, f"n{i}") for i in range(3)]
    system.create_ring(0, [(p.name, "pal") for p in processes])
    system.start()
    for p in processes:
        p.multicast(0, payload=(p.name, 0), size_bytes=512)
    system.run(until=2.0)
    return [p.delivered for p in processes]


class TestBatchDispatchStack:
    @pytest.mark.parametrize("seed", [3, 11, 99])
    def test_protocol_deliveries_identical_to_default_dispatch(self, seed):
        assert _run_stack(seed, False) == _run_stack(seed, True)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_batching_off_stays_anchored_to_seed_substrate(self, monkeypatch, seed):
        """batching=off runs (the default) remain bit-identical to the frozen
        seed kernel + network, whatever the dispatch flag."""
        fast = _run_stack(seed, False)
        monkeypatch.setattr(actor_mod, "Simulator", LegacySimulator)
        monkeypatch.setattr(amcast, "Network", LegacyNetwork)
        legacy = _run_stack(seed, False)
        assert fast == legacy
        assert all(len(d) > 0 for d in fast)


def _feed_learner(batch_drain: bool, seed: int):
    """Feed a shuffled decision sequence; return the emission order."""
    rng = random.Random(seed)
    emitted = []
    learner = RingLearner(
        0, lambda ring, inst, value: emitted.append((inst, value.payload)),
        batch_drain=batch_drain,
    )
    instances = list(range(60))
    rng.shuffle(instances)
    for inst in instances:
        payload = SKIP if rng.random() < 0.2 else f"v{inst}"
        learner.observe_decision(
            inst, ProposalValue(payload=payload, size_bytes=64, proposer="p0",
                                proposal_id=inst),
        )
    return emitted, learner


class TestLearnerBatchDrain:
    @pytest.mark.parametrize("seed", [0, 5, 21])
    def test_emission_order_identical_to_default_drain(self, seed):
        plain, plain_learner = _feed_learner(False, seed)
        batched, batched_learner = _feed_learner(True, seed)
        assert plain == batched
        assert len(plain) == 60
        assert plain_learner.emitted_count == batched_learner.emitted_count
        assert plain_learner.skipped_count == batched_learner.skipped_count
        assert plain_learner.next_to_emit == batched_learner.next_to_emit
