"""Property-based tests for the latency-recorder statistics.

The swarm engine leans on :class:`LatencyRecorder` for every latency claim a
figure makes — and above the sketch threshold it swaps the exact sample list
for a log-bucket histogram.  Hypothesis pins the invariants on arbitrary
sample sets:

* ``percentile`` is monotone in the percentile, bounded by min/max, and
  exact at the endpoints (p0 = min, p100 = max) in *both* modes;
* ``cdf`` is monotone with a final cumulative fraction of 1.0;
* ``fraction_below`` agrees with the sample definition and is monotone in
  the threshold;
* the sketch preserves count/min/max/mean exactly and p50/p95/p99 to within
  the design bound of ~1% relative error (geometric bucket midpoints at
  growth 1.02).
"""

from hypothesis import given, settings, strategies as st

from repro.sim.metrics import LatencyRecorder

#: Positive latencies well clear of the sketch's 1e-9 underflow bucket.
samples_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

#: Geometric-midpoint representatives at growth 1.02 are at most
#: sqrt(1.02) - 1 ≈ 0.995% off any sample in their bucket.
SKETCH_RTOL = 0.0101


def _recorder(samples, sketch=None):
    recorder = LatencyRecorder("prop", sketch=sketch)
    for value in samples:
        recorder.record(value)
    return recorder


class TestExactPercentiles:
    @given(samples_strategy, st.floats(0, 100), st.floats(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_percentile_is_monotone_and_bounded(self, samples, p1, p2):
        recorder = _recorder(samples)
        lo, hi = sorted((p1, p2))
        assert recorder.percentile(lo) <= recorder.percentile(hi)
        assert min(samples) <= recorder.percentile(lo) <= max(samples)

    @given(samples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_percentile_endpoints_are_min_and_max(self, samples):
        recorder = _recorder(samples)
        assert recorder.percentile(0) == min(samples)
        assert recorder.percentile(100) == max(samples)

    @given(samples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cdf_is_monotone_and_complete(self, samples):
        cdf = _recorder(samples).cdf(points=20)
        fractions = [fraction for _, fraction in cdf]
        values = [value for value, _ in cdf]
        assert fractions == sorted(fractions)
        assert values == sorted(values)
        assert fractions[-1] == 1.0

    @given(samples_strategy, st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=60, deadline=None)
    def test_fraction_below_matches_sample_definition(self, samples, threshold):
        recorder = _recorder(samples)
        expected = sum(1 for s in samples if s < threshold) / len(samples)
        assert recorder.fraction_below(threshold) == expected

    @given(samples_strategy, st.floats(0.0, 100.0), st.floats(0.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_fraction_below_is_monotone(self, samples, t1, t2):
        recorder = _recorder(samples)
        lo, hi = sorted((t1, t2))
        assert recorder.fraction_below(lo) <= recorder.fraction_below(hi)


class TestSketchAgreement:
    @given(samples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sketch_preserves_exact_scalars(self, samples):
        exact = _recorder(samples)
        sketched = _recorder(samples, sketch=0)  # fold immediately
        assert sketched.sketching
        assert sketched.count == exact.count
        assert sketched.mean() == exact.mean()
        assert sketched.percentile(0) == min(samples)
        assert sketched.percentile(100) == max(samples)

    @given(samples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sketch_percentiles_within_one_percent(self, samples):
        exact = _recorder(samples)
        sketched = _recorder(samples, sketch=0)
        for pct in (50.0, 95.0, 99.0):
            reference = exact.percentile(pct)
            approximate = sketched.percentile(pct)
            assert abs(approximate - reference) <= SKETCH_RTOL * reference

    @given(samples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sketch_percentile_stays_monotone_and_bounded(self, samples):
        sketched = _recorder(samples, sketch=0)
        values = [sketched.percentile(p) for p in (0, 10, 50, 90, 95, 99, 100)]
        assert values == sorted(values)
        assert all(min(samples) <= v <= max(samples) for v in values)

    @given(samples_strategy)
    @settings(max_examples=60, deadline=None)
    def test_threshold_crossing_folds_exactly_once(self, samples):
        """Recording past the threshold must not lose or duplicate counts."""
        threshold = max(1, len(samples) // 2)
        recorder = _recorder(samples, sketch=threshold)
        assert recorder.count == len(samples)
        assert recorder.sketching == (len(samples) > threshold)
        cdf = recorder.cdf(points=10)
        assert cdf[-1][1] == 1.0
