"""Unit tests of the conservative parallel engine (`repro.sim.parallel`).

The load-bearing property: a sharded run is bit-identical for every worker
count, and — for deployments with deterministic latencies — bit-identical to
running the merged deployment on one shared simulator.  Builders live at
module level so the specs survive the ``multiprocessing`` boundary.
"""

from __future__ import annotations

import pytest

from repro.sim import Actor, Environment, Network, ShardHarness, ShardSpec, Topology, run_sharded
from repro.sim.kernel import SimulationError, Simulator


LINK_LATENCY = 0.010
ROUNDS = 30
HORIZON = 2.0


def two_site_topology() -> Topology:
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    topo.set_link("s0", "s1", one_way_latency=LINK_LATENCY, bandwidth_bps=1e9)
    return topo


class Pinger(Actor):
    """Bounces a counter to a peer; logs (time, value) on every receipt."""

    def __init__(self, env, name, site, peer, rounds):
        super().__init__(env, name, site)
        self.peer = peer
        self.rounds = rounds
        self.log = []

    def on_start(self):
        if self.name.endswith("0"):
            self.send(self.peer, {"n": 0, "size_bytes": 256})

    def on_message(self, sender, message):
        self.log.append((round(self.now, 9), message["n"]))
        if message["n"] < self.rounds:
            self.send(sender, {"n": message["n"] + 1, "size_bytes": 256})


class PingerHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):
        return self.actor.log


def build_pinger_shard(payload):
    index, rounds = payload
    env = Environment(seed=7)
    Network(env, two_site_topology(), jitter_fraction=0.0)
    actor = Pinger(env, f"p{index}", f"s{index}", f"p{1 - index}", rounds)
    return PingerHarness(env, actor)


def run_merged_pingpong(rounds):
    env = Environment(seed=7)
    Network(env, two_site_topology(), jitter_fraction=0.0)
    a = Pinger(env, "p0", "s0", "p1", rounds)
    b = Pinger(env, "p1", "s1", "p0", rounds)
    a.on_start()
    b.on_start()
    env.run(until=HORIZON)
    return {0: a.log, 1: b.log}


class CountingActor(Actor):
    """Self-contained shard workload: periodic local ticks, no messages."""

    def __init__(self, env, name, ticks):
        super().__init__(env, name)
        self.remaining = ticks
        self.fired = []

    def on_start(self):
        self.env.simulator.call_later(0.001, self._tick)

    def _tick(self):
        self.fired.append(round(self.now, 9))
        self.remaining -= 1
        if self.remaining:
            self.env.simulator.call_later(0.001, self._tick)

    def on_message(self, sender, message):  # pragma: no cover - never called
        raise AssertionError("independent shard received a message")


class CountingHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):
        return self.actor.fired


def build_counting_shard(payload):
    env = Environment(seed=payload)
    topo = Topology()
    topo.add_site("dc1")
    Network(env, topo, jitter_fraction=0.0)
    actor = CountingActor(env, f"counter{payload}", ticks=50)
    return CountingHarness(env, actor)


# ---------------------------------------------------------------------------
# Windowed cross-shard execution
# ---------------------------------------------------------------------------

def specs():
    return [ShardSpec(i, build_pinger_shard, (i, ROUNDS)) for i in range(2)]


def test_sharded_matches_merged_single_simulator():
    """Windowed shards reproduce the merged run's exact times and values."""
    reference = run_merged_pingpong(ROUNDS)
    run = run_sharded(specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY)
    assert run.results[0] == reference[0]
    assert run.results[1] == reference[1]
    assert run.cross_messages == ROUNDS + 1
    assert run.windows >= int(HORIZON / LINK_LATENCY)


def test_workers_do_not_change_results():
    """Multiprocessing execution is bit-identical to the in-process engine."""
    sequential = run_sharded(specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY)
    parallel = run_sharded(specs(), until=HORIZON, workers=2, lookahead=LINK_LATENCY)
    assert parallel.workers == 2
    assert parallel.results == sequential.results
    assert parallel.cross_messages == sequential.cross_messages
    assert parallel.events == sequential.events


def test_start_time_sends_cross_the_barrier():
    """The t=0 send from ``on_start`` reaches the other shard."""
    run = run_sharded(specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY)
    # p1 received the opening message (n=0) even though it was sent before
    # the first window ran.
    assert run.results[1][0][1] == 0


def test_lookahead_violation_raises():
    """A window longer than the minimum latency is rejected, not reordered."""
    with pytest.raises(SimulationError, match="lookahead violation"):
        run_sharded(specs(), until=HORIZON, workers=1, lookahead=5 * LINK_LATENCY)


# ---------------------------------------------------------------------------
# Embarrassingly parallel execution (no lookahead)
# ---------------------------------------------------------------------------

def test_independent_shards_single_window():
    seq = run_sharded(
        [ShardSpec(i, build_counting_shard, i) for i in range(3)], workers=1
    )
    par = run_sharded(
        [ShardSpec(i, build_counting_shard, i) for i in range(3)], workers=3
    )
    assert seq.windows == 1
    assert seq.results == par.results
    assert all(len(v) == 50 for v in seq.results.values())


# ---------------------------------------------------------------------------
# Validation and plumbing
# ---------------------------------------------------------------------------

def test_duplicate_shard_ids_rejected():
    with pytest.raises(ValueError, match="duplicate shard ids"):
        run_sharded([ShardSpec(0, build_counting_shard, 0),
                     ShardSpec(0, build_counting_shard, 1)])


def test_lookahead_requires_horizon():
    with pytest.raises(ValueError, match="horizon"):
        run_sharded(specs(), workers=1, lookahead=LINK_LATENCY)


def test_cross_traffic_without_lookahead_raises():
    """Shards that talk need windows; a single-window run must not lose mail."""
    with pytest.raises(SimulationError, match="no\\s+lookahead"):
        run_sharded(specs(), until=HORIZON, workers=1)


def test_worker_count_clamped_to_shards():
    run = run_sharded([ShardSpec(0, build_counting_shard, 0)], workers=8)
    assert run.workers == 1


def test_worker_exception_surfaces():
    with pytest.raises(RuntimeError, match="shard worker failed"):
        run_sharded(
            [ShardSpec(i, _build_broken_shard, i) for i in range(2)], workers=2
        )


def _build_broken_shard(payload):
    raise RuntimeError(f"builder exploded for shard {payload}")


def test_gateway_send_to_undeclared_actor_still_drops():
    env = Environment(seed=1)
    network = Network(env, two_site_topology(), jitter_fraction=0.0)
    actor = Pinger(env, "p0", "s0", "nobody", 1)
    network.set_remote_routes({"p1": "s1"})
    actor.send("nobody", {"n": 0, "size_bytes": 64})
    assert network.stats.dropped == 1
    assert network.drain_outbox() == []


# ---------------------------------------------------------------------------
# Kernel window primitives
# ---------------------------------------------------------------------------

def test_run_window_lands_exactly_on_end():
    sim = Simulator()
    fired = []
    sim.call_later(0.5, fired.append, 1)
    sim.call_later(1.5, fired.append, 2)
    assert sim.run_window(1.0) == 1
    assert sim.now == 1.0
    assert fired == [1]
    assert sim.run_window(2.0) == 1
    assert sim.now == 2.0
    with pytest.raises(SimulationError):
        sim.run_window(1.0)


def test_next_event_time_skips_cancelled():
    sim = Simulator()
    handle = sim.call_later(0.25, lambda: None)
    sim.call_later(0.75, lambda: None)
    assert sim.next_event_time() == 0.25
    handle.cancel()
    assert sim.next_event_time() == 0.75
    sim.run()
    assert sim.next_event_time() is None
