"""Unit tests of the conservative parallel engine (`repro.sim.parallel`).

The load-bearing property: a sharded run is bit-identical for every worker
count, and — for deployments with deterministic latencies — bit-identical to
running the merged deployment on one shared simulator.  Builders live at
module level so the specs survive the ``multiprocessing`` boundary.
"""

from __future__ import annotations

import pytest

from repro.sim import Actor, Environment, Network, ShardHarness, ShardSpec, Topology, run_sharded
from repro.sim.kernel import SimulationError, Simulator


LINK_LATENCY = 0.010
ROUNDS = 30
HORIZON = 2.0


def two_site_topology() -> Topology:
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    topo.set_link("s0", "s1", one_way_latency=LINK_LATENCY, bandwidth_bps=1e9)
    return topo


class Pinger(Actor):
    """Bounces a counter to a peer; logs (time, value) on every receipt."""

    def __init__(self, env, name, site, peer, rounds):
        super().__init__(env, name, site)
        self.peer = peer
        self.rounds = rounds
        self.log = []

    def on_start(self):
        if self.name.endswith("0"):
            self.send(self.peer, {"n": 0, "size_bytes": 256})

    def on_message(self, sender, message):
        self.log.append((round(self.now, 9), message["n"]))
        if message["n"] < self.rounds:
            self.send(sender, {"n": message["n"] + 1, "size_bytes": 256})


class PingerHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):
        return self.actor.log


def build_pinger_shard(payload):
    index, rounds = payload
    env = Environment(seed=7)
    Network(env, two_site_topology(), jitter_fraction=0.0)
    actor = Pinger(env, f"p{index}", f"s{index}", f"p{1 - index}", rounds)
    return PingerHarness(env, actor)


def run_merged_pingpong(rounds):
    env = Environment(seed=7)
    Network(env, two_site_topology(), jitter_fraction=0.0)
    a = Pinger(env, "p0", "s0", "p1", rounds)
    b = Pinger(env, "p1", "s1", "p0", rounds)
    a.on_start()
    b.on_start()
    env.run(until=HORIZON)
    return {0: a.log, 1: b.log}


class CountingActor(Actor):
    """Self-contained shard workload: periodic local ticks, no messages."""

    def __init__(self, env, name, ticks):
        super().__init__(env, name)
        self.remaining = ticks
        self.fired = []

    def on_start(self):
        self.env.simulator.call_later(0.001, self._tick)

    def _tick(self):
        self.fired.append(round(self.now, 9))
        self.remaining -= 1
        if self.remaining:
            self.env.simulator.call_later(0.001, self._tick)

    def on_message(self, sender, message):  # pragma: no cover - never called
        raise AssertionError("independent shard received a message")


class CountingHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):
        return self.actor.fired


def build_counting_shard(payload):
    env = Environment(seed=payload)
    topo = Topology()
    topo.add_site("dc1")
    Network(env, topo, jitter_fraction=0.0)
    actor = CountingActor(env, f"counter{payload}", ticks=50)
    return CountingHarness(env, actor)


# ---------------------------------------------------------------------------
# Windowed cross-shard execution
# ---------------------------------------------------------------------------

def specs():
    return [ShardSpec(i, build_pinger_shard, (i, ROUNDS)) for i in range(2)]


def test_sharded_matches_merged_single_simulator():
    """Windowed shards reproduce the merged run's exact times and values."""
    reference = run_merged_pingpong(ROUNDS)
    run = run_sharded(specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY)
    assert run.results[0] == reference[0]
    assert run.results[1] == reference[1]
    assert run.cross_messages == ROUNDS + 1


def test_fixed_horizon_grinds_through_every_window():
    """The textbook protocol barriers once per lookahead, work or not."""
    reference = run_merged_pingpong(ROUNDS)
    run = run_sharded(
        specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY, horizon="fixed"
    )
    assert run.results[0] == reference[0]
    assert run.results[1] == reference[1]
    assert run.windows >= int(HORIZON / LINK_LATENCY)


def test_adaptive_horizon_cuts_barriers_not_results():
    """Event-horizon windows skip idle stretches; the schedule is untouched.

    The ping-pong goes quiet after ~0.6s of a 2.0s horizon: the adaptive
    protocol barriers roughly once per message plus one final hop to the
    horizon, while the fixed protocol grinds through every lookahead window.
    """
    fixed = run_sharded(
        specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY, horizon="fixed"
    )
    adaptive = run_sharded(
        specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY, horizon="adaptive"
    )
    assert adaptive.results == fixed.results
    assert adaptive.events == fixed.events
    assert adaptive.cross_messages == fixed.cross_messages
    assert adaptive.windows < fixed.windows
    assert adaptive.horizon == "adaptive"
    assert fixed.horizon == "fixed"


def test_workers_do_not_change_results():
    """Multiprocessing execution is bit-identical to the in-process engine."""
    sequential = run_sharded(specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY)
    parallel = run_sharded(specs(), until=HORIZON, workers=2, lookahead=LINK_LATENCY)
    assert parallel.workers == 2
    assert parallel.results == sequential.results
    assert parallel.cross_messages == sequential.cross_messages
    assert parallel.events == sequential.events
    assert parallel.windows == sequential.windows


def test_invalid_horizon_mode_rejected():
    with pytest.raises(ValueError, match="horizon"):
        run_sharded(specs(), until=HORIZON, workers=1,
                    lookahead=LINK_LATENCY, horizon="eager")


def test_start_time_sends_cross_the_barrier():
    """The t=0 send from ``on_start`` reaches the other shard."""
    run = run_sharded(specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY)
    # p1 received the opening message (n=0) even though it was sent before
    # the first window ran.
    assert run.results[1][0][1] == 0


def test_lookahead_violation_raises():
    """A window longer than the minimum latency is rejected, not reordered."""
    with pytest.raises(SimulationError, match="lookahead violation"):
        run_sharded(specs(), until=HORIZON, workers=1, lookahead=5 * LINK_LATENCY)


# ---------------------------------------------------------------------------
# Embarrassingly parallel execution (no lookahead)
# ---------------------------------------------------------------------------

def test_independent_shards_single_window():
    seq = run_sharded(
        [ShardSpec(i, build_counting_shard, i) for i in range(3)], workers=1
    )
    par = run_sharded(
        [ShardSpec(i, build_counting_shard, i) for i in range(3)], workers=3
    )
    assert seq.windows == 1
    assert seq.results == par.results
    assert all(len(v) == 50 for v in seq.results.values())


# ---------------------------------------------------------------------------
# Validation and plumbing
# ---------------------------------------------------------------------------

def test_duplicate_shard_ids_rejected():
    with pytest.raises(ValueError, match="duplicate shard ids"):
        run_sharded([ShardSpec(0, build_counting_shard, 0),
                     ShardSpec(0, build_counting_shard, 1)])


def test_lookahead_requires_horizon():
    with pytest.raises(ValueError, match="horizon"):
        run_sharded(specs(), workers=1, lookahead=LINK_LATENCY)


def test_cross_traffic_without_lookahead_raises():
    """Shards that talk need windows; a single-window run must not lose mail."""
    with pytest.raises(SimulationError, match="no\\s+lookahead"):
        run_sharded(specs(), until=HORIZON, workers=1)


def test_worker_count_clamped_to_shards():
    run = run_sharded([ShardSpec(0, build_counting_shard, 0)], workers=8)
    assert run.workers == 1


def test_worker_exception_surfaces():
    with pytest.raises(RuntimeError, match="shard worker failed"):
        run_sharded(
            [ShardSpec(i, _build_broken_shard, i) for i in range(2)], workers=2
        )


def _build_broken_shard(payload):
    raise RuntimeError(f"builder exploded for shard {payload}")


def test_gateway_send_to_undeclared_actor_still_drops():
    env = Environment(seed=1)
    network = Network(env, two_site_topology(), jitter_fraction=0.0)
    actor = Pinger(env, "p0", "s0", "nobody", 1)
    network.set_remote_routes({"p1": "s1"})
    actor.send("nobody", {"n": 0, "size_bytes": 64})
    assert network.stats.dropped == 1
    assert network.drain_outbox() == []


# ---------------------------------------------------------------------------
# Window-boundary edges (binary-exact timing: every quantity is a multiple of
# 2^-8 seconds, so sums and the delivery arithmetic are exact — equality with
# barrier timestamps is meaningful, not a rounding accident)
# ---------------------------------------------------------------------------

EXACT_LATENCY = 1 / 64            # lookahead == the (only) link latency
EXACT_TX = 1 / 256                # (128 default + 66 header) bytes * 8 / bw
EXACT_BANDWIDTH = 194 * 8 * 256   # makes one default-size message transmit in 2^-8 s
EXACT_UNTIL = 16 / 64


def exact_topology() -> Topology:
    topo = Topology(local_latency=1 / 1024, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    topo.set_link(
        "s0", "s1", one_way_latency=EXACT_LATENCY, bandwidth_bps=EXACT_BANDWIDTH
    )
    return topo


class ScheduledSender(Actor):
    """Sends one fixed-size message to a remote peer at each scheduled time."""

    def __init__(self, env, name, site, peer, send_times):
        super().__init__(env, name, site)
        self.peer = peer
        self.send_times = list(send_times)
        self.log = []

    def on_start(self):
        for at in self.send_times:
            self.env.simulator.schedule_at(at, self._fire, at)

    def _fire(self, at):
        self.send(self.peer, {"sent_at": at, "size_bytes": 64})

    def on_message(self, sender, message):
        self.log.append((self.now, message["sent_at"]))


class SenderHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):
        return self.actor.log


def build_exact_shard(payload):
    index, send_times = payload
    env = Environment(seed=11)
    Network(env, exact_topology(), jitter_fraction=0.0)
    actor = ScheduledSender(
        env, f"x{index}", f"s{index}", f"x{1 - index}", send_times
    )
    return SenderHarness(env, actor)


def run_exact_merged(times_a, times_b):
    env = Environment(seed=11)
    Network(env, exact_topology(), jitter_fraction=0.0)
    a = ScheduledSender(env, "x0", "s0", "x1", times_a)
    b = ScheduledSender(env, "x1", "s1", "x0", times_b)
    a.on_start()
    b.on_start()
    env.run(until=EXACT_UNTIL)
    return {0: a.log, 1: b.log}


def run_exact_sharded(times_a, times_b, **kwargs):
    return run_sharded(
        [
            ShardSpec(0, build_exact_shard, (0, times_a)),
            ShardSpec(1, build_exact_shard, (1, times_b)),
        ],
        until=EXACT_UNTIL,
        lookahead=EXACT_LATENCY,
        **kwargs,
    )


def test_cross_shard_message_due_exactly_at_barrier_timestamp():
    """A delivery landing exactly on a barrier is delivered once, on time.

    Sent at t=3/256: transmission 1/256 + propagation 4/256 puts the delivery
    at t=8/256 = 2 lookaheads — bit-equal to the second barrier timestamp.
    The engine must deliver it in the window *after* that barrier at its
    exact computed time, identically for every worker count and horizon
    mode, and identically to the merged single-simulator run.
    """
    send = [3 / 256]
    reference = run_exact_merged(send, [])
    assert reference[1] == [(8 / 256, 3 / 256)]  # exactly the 2nd barrier
    for horizon in ("fixed", "adaptive"):
        for workers in (1, 2):
            run = run_exact_sharded(send, [], workers=workers, horizon=horizon)
            assert run.results[0] == reference[0], (horizon, workers)
            assert run.results[1] == reference[1], (horizon, workers)


def test_send_event_exactly_at_barrier_with_minimum_lookahead():
    """Events firing exactly on barrier timestamps stay safe at L == latency.

    The lookahead equals the minimum link latency (the off-by-one regime: any
    window even one event longer would violate).  Senders fire exactly at
    t = k*L — the barrier instants themselves — from both sides; every
    delivery must still happen at its exact merged-run time with no
    lookahead violation, for both horizon modes and worker counts.
    """
    times_a = [0.0, EXACT_LATENCY, 2 * EXACT_LATENCY]
    times_b = [EXACT_LATENCY, 3 * EXACT_LATENCY]
    reference = run_exact_merged(times_a, times_b)
    assert reference[0] and reference[1]
    for horizon in ("fixed", "adaptive"):
        for workers in (1, 2):
            run = run_exact_sharded(
                times_a, times_b, workers=workers, horizon=horizon
            )
            assert run.results[0] == reference[0], (horizon, workers)
            assert run.results[1] == reference[1], (horizon, workers)


def test_inject_remote_boundary_is_inclusive():
    """A record due exactly `now` injects fine; strictly earlier raises."""
    env = Environment(seed=3)
    network = Network(env, exact_topology(), jitter_fraction=0.0)
    receiver = ScheduledSender(env, "x1", "s1", "x0", [])
    env.simulator.run_window(0.5)
    network.inject_remote([(0.5, "x0", "x1", {"sent_at": 0.25, "size_bytes": 64})])
    env.run()
    assert receiver.log == [(0.5, 0.25)]
    with pytest.raises(SimulationError, match="lookahead violation"):
        network.inject_remote(
            [(0.4999, "x0", "x1", {"sent_at": 0.25, "size_bytes": 64})]
        )


def test_outbox_frontier_reports_earliest_departure():
    """The gateway frontier is the earliest undrained outbound delivery."""
    env = Environment(seed=5)
    network = Network(env, exact_topology(), jitter_fraction=0.0)
    sender = ScheduledSender(env, "x0", "s0", "x1", [])
    network.set_remote_routes({"x1": "s1"})
    assert network.outbox_frontier is None
    sender.send("x1", {"sent_at": 0.0, "size_bytes": 64})
    sender.send("x1", {"sent_at": 0.0, "size_bytes": 64})
    first = network.outbox_frontier
    assert first == EXACT_TX + EXACT_LATENCY
    records = network.drain_outbox()
    assert [r[0] for r in records][0] == first
    assert network.outbox_frontier is None


# ---------------------------------------------------------------------------
# Kernel window primitives
# ---------------------------------------------------------------------------

def test_run_window_lands_exactly_on_end():
    sim = Simulator()
    fired = []
    sim.call_later(0.5, fired.append, 1)
    sim.call_later(1.5, fired.append, 2)
    assert sim.run_window(1.0) == 1
    assert sim.now == 1.0
    assert fired == [1]
    assert sim.run_window(2.0) == 1
    assert sim.now == 2.0
    with pytest.raises(SimulationError):
        sim.run_window(1.0)


def test_next_event_time_skips_cancelled():
    sim = Simulator()
    handle = sim.call_later(0.25, lambda: None)
    sim.call_later(0.75, lambda: None)
    assert sim.next_event_time() == 0.25
    handle.cancel()
    assert sim.next_event_time() == 0.75
    sim.run()
    assert sim.next_event_time() is None


# ---------------------------------------------------------------------------
# Bursty barrier-count regression (adaptive event horizons earn their keep)
# ---------------------------------------------------------------------------

BURST_LATENCY = 0.010
BURST_GAP = 0.4          # idle stretches 40x the lookahead
BURST_COUNT = 3
BURST_SIZE = 5
BURST_SPACING = 0.001
BURST_UNTIL = BURST_COUNT * BURST_GAP + 0.1


class BurstActor(Actor):
    """Fires short cross-shard bursts separated by long idle stretches."""

    def __init__(self, env, name, site, peer):
        super().__init__(env, name, site)
        self.peer = peer
        self.received = []

    def on_start(self):
        for burst in range(BURST_COUNT):
            for index in range(BURST_SIZE):
                self.env.simulator.schedule_at(
                    burst * BURST_GAP + index * BURST_SPACING,
                    self._fire, burst, index,
                )

    def _fire(self, burst, index):
        self.send(self.peer, {"burst": burst, "index": index, "size_bytes": 64})

    def on_message(self, sender, message):
        self.received.append((round(self.now, 9), message["burst"], message["index"]))


class BurstHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):
        return self.actor.received


def build_burst_shard(index):
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    topo.set_link("s0", "s1", one_way_latency=BURST_LATENCY, bandwidth_bps=1e9)
    env = Environment(seed=13)
    Network(env, topo, jitter_fraction=0.0)
    actor = BurstActor(env, f"burst{index}", f"s{index}", f"burst{1 - index}")
    return BurstHarness(env, actor)


def test_adaptive_beats_fixed_on_bursty_topology():
    """Regression: adaptive horizons need strictly fewer barriers when bursts
    are separated by idle stretches far longer than the lookahead.

    This is the shape ``benchmarks/bench_parallel.py`` records in
    ``BENCH_parallel.json``; asserting it here keeps the property in tier 1
    instead of only in a benchmark artifact.
    """
    runs = {}
    for horizon in ("fixed", "adaptive"):
        runs[horizon] = run_sharded(
            [ShardSpec(i, build_burst_shard, i) for i in range(2)],
            until=BURST_UNTIL,
            workers=1,
            lookahead=BURST_LATENCY,
            horizon=horizon,
        )
    assert runs["adaptive"].results == runs["fixed"].results
    assert all(
        len(received) == BURST_COUNT * BURST_SIZE
        for received in runs["fixed"].results.values()
    )
    # The fixed protocol grinds through every lookahead window of every idle
    # stretch; the adaptive protocol hops each stretch in one barrier.
    assert runs["fixed"].barrier_count >= int(BURST_UNTIL / BURST_LATENCY)
    assert runs["adaptive"].barrier_count < runs["fixed"].barrier_count
    assert runs["adaptive"].barrier_count <= BURST_COUNT * (BURST_SIZE + 2) + 2


# ---------------------------------------------------------------------------
# Decision-stream segment shipping (the streaming-merge transport)
# ---------------------------------------------------------------------------

class SegmentTickHarness(ShardHarness):
    """Counting shard that ships its ticks as per-barrier segments."""

    def __init__(self, env, actor, shard_id):
        super().__init__(env)
        self.actor = actor
        self.shard_id = shard_id
        self._shipped = 0

    def start(self):
        self.actor.on_start()

    def drain_segments(self):
        fresh = self.actor.fired[self._shipped:]
        self._shipped = len(self.actor.fired)
        return (self.env.now, {self.shard_id: list(fresh)})

    def finalize(self):
        return self.actor.fired


def build_segment_shard(payload):
    env = Environment(seed=payload)
    topo = Topology()
    topo.add_site("dc1")
    Network(env, topo, jitter_fraction=0.0)
    actor = CountingActor(env, f"segcounter{payload}", ticks=40)
    return SegmentTickHarness(env, actor, payload)


def _collect_segments(workers):
    barriers = []

    def sink(segments_by_shard):
        barriers.append({
            sid: segments_by_shard[sid] for sid in sorted(segments_by_shard)
        })

    run = run_sharded(
        [ShardSpec(i, build_segment_shard, i) for i in range(2)],
        until=0.05,
        workers=workers,
        segment_interval=0.01,
        segment_sink=sink,
    )
    return run, barriers


def test_segments_ship_at_every_barrier_and_cover_the_run():
    """Each barrier ships exactly what ran since the last one, watermarked."""
    run, barriers = _collect_segments(workers=1)
    assert run.windows > 1, "segment_interval must drive windowed execution"
    # Concatenating the per-barrier segments reproduces each shard's full
    # tick sequence — nothing lost, nothing duplicated, order preserved.
    for sid in (0, 1):
        shipped = [
            tick
            for barrier in barriers
            for tick in barrier.get(sid, (None, {}))[1].get(sid, [])
        ]
        assert shipped == run.results[sid]
    # Watermarks are the barrier times: non-decreasing, and every tick in a
    # barrier's segment is at or before that barrier's watermark.
    for sid in (0, 1):
        last = -1.0
        for barrier in barriers:
            if sid not in barrier:
                continue
            watermark, segments = barrier[sid]
            assert watermark >= last
            last = watermark
            assert all(tick <= watermark for tick in segments.get(sid, []))


def test_segment_stream_is_worker_count_invariant():
    """The sink sees the identical barrier sequence for every worker count."""
    run1, barriers1 = _collect_segments(workers=1)
    run2, barriers2 = _collect_segments(workers=2)
    assert run1.results == run2.results
    assert run1.windows == run2.windows
    assert barriers1 == barriers2


def test_segment_interval_requires_horizon():
    with pytest.raises(ValueError, match="segment"):
        run_sharded(
            [ShardSpec(i, build_segment_shard, i) for i in range(2)],
            workers=1,
            segment_interval=0.01,
        )


def test_cross_traffic_under_segment_windows_still_raises():
    """Segment barriers give no delivery guarantee: talking shards need a
    lookahead, and the engine refuses to lose their mail silently."""
    with pytest.raises(SimulationError, match="lookahead"):
        run_sharded(
            specs(), until=HORIZON, workers=1, segment_interval=0.05
        )

# ---------------------------------------------------------------------------
# Barrier-plane round 2: weighted placement, failure identity, skip windows,
# and the wire codec differential
# ---------------------------------------------------------------------------

from repro.sim.parallel import _assign_shards  # noqa: E402


def test_weighted_assignment_heaviest_first():
    """LPT placement: heaviest shards spread first, ties broken by shard id.

    Round-robin by list position — the old rule — would put shards [0, 2, 4]
    and [1, 3] together regardless of weight, loading one worker with 8 and
    the other with 4.  The weighted schedule is pinned exactly so a future
    tweak cannot silently regress placement determinism.
    """
    weights = {0: 5.0, 1: 1.0, 2: 1.0, 3: 3.0, 4: 2.0}
    specs = [
        ShardSpec(sid, build_counting_shard, sid, weight=weight)
        for sid, weight in weights.items()
    ]
    assignment = _assign_shards(specs, workers=2)
    placed = [[spec.shard_id for spec in worker] for worker in assignment]
    assert placed == [[0, 1], [2, 3, 4]]
    loads = [sum(weights[sid] for sid in worker) for worker in placed]
    assert loads == [6.0, 6.0]
    # Deterministic: a permuted input yields the identical schedule.
    assignment2 = _assign_shards(list(reversed(specs)), workers=2)
    assert [[s.shard_id for s in worker] for worker in assignment2] == placed


def test_nonpositive_shard_weight_rejected():
    with pytest.raises(ValueError, match="weight"):
        run_sharded(
            [ShardSpec(0, build_counting_shard, 0, weight=0.0)], workers=1
        )


class DyingActor(Actor):
    """Kills its whole worker process partway through the window."""

    def on_start(self):
        self.env.simulator.call_later(0.01, self._die)

    def _die(self):
        import os

        os._exit(17)

    def on_message(self, sender, message):  # pragma: no cover - never called
        raise AssertionError("unreachable")


class DyingHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):  # pragma: no cover - worker dies first
        return None


def build_dying_shard(payload):
    env = Environment(seed=payload)
    topo = Topology()
    topo.add_site("dc1")
    Network(env, topo, jitter_fraction=0.0)
    if payload == 1:
        return DyingHarness(env, DyingActor(env, f"dying{payload}"))
    return CountingHarness(env, CountingActor(env, f"counter{payload}", ticks=50))


def test_dead_worker_surfaces_with_identity():
    """A worker that dies mid-window raises immediately, naming the worker
    and its shards — instead of wedging the parent on a pipe read forever."""
    with pytest.raises(RuntimeError, match=r"died mid-run") as excinfo:
        run_sharded(
            [ShardSpec(i, build_dying_shard, i) for i in range(2)], workers=2
        )
    message = str(excinfo.value)
    assert "shards" in message and "exit code" in message


class OneWayReceiver(Actor):
    """Passive sink: logs receipts, never schedules or sends anything."""

    def __init__(self, env, name, site):
        super().__init__(env, name, site)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((round(self.now, 9), message["burst"], message["index"]))


def build_oneway_shard(index):
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    topo.set_link("s0", "s1", one_way_latency=BURST_LATENCY, bandwidth_bps=1e9)
    env = Environment(seed=13)
    Network(env, topo, jitter_fraction=0.0)
    if index == 0:
        actor = BurstActor(env, "burst0", "s0", "sink1")
        return BurstHarness(env, actor)
    actor = OneWayReceiver(env, "sink1", "s1")
    return BurstHarness(env, actor)


def test_one_way_bursts_skip_idle_receiver_windows():
    """Horizon-aware scheduling: the idle receiver's worker is skipped —
    no wake, no reply — for windows where it has no inbound and no local
    events, without changing a single delivery."""
    runs = {}
    for workers in (1, 2):
        runs[workers] = run_sharded(
            [ShardSpec(i, build_oneway_shard, i) for i in range(2)],
            until=BURST_UNTIL,
            workers=workers,
            lookahead=BURST_LATENCY,
            horizon="adaptive",
        )
    assert runs[1].results == runs[2].results
    assert runs[1].windows == runs[2].windows
    assert len(runs[1].results[1]) == BURST_COUNT * BURST_SIZE
    # The in-process reference engine never skips; the pipe transport must
    # have skipped the receiver during the sender-only stretches.
    assert runs[1].worker_windows_skipped == 0
    assert runs[2].worker_windows_skipped > 0


def test_wire_codec_engine_differential():
    """Delivery order is bit-identical with the codec on and off."""
    baseline = run_sharded(specs(), until=HORIZON, workers=1, lookahead=LINK_LATENCY)
    codec = run_sharded(
        specs(), until=HORIZON, workers=2, lookahead=LINK_LATENCY, wire_codec=True
    )
    legacy = run_sharded(
        specs(), until=HORIZON, workers=2, lookahead=LINK_LATENCY, wire_codec=False
    )
    assert codec.results == legacy.results == baseline.results
    assert codec.windows == legacy.windows == baseline.windows
    # IPC accounting: real for pipe transports, zero for the in-process one.
    assert codec.ipc_bytes > 0 and legacy.ipc_bytes > 0
    assert codec.ipc_messages > 0
    assert baseline.ipc_bytes == 0 and baseline.ipc_messages == 0
