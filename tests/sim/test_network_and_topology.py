"""Tests of the network model and the deployment topologies."""

import pytest

from repro.net.message import Message
from repro.sim.actor import Actor, Environment
from repro.sim.network import Network, message_size
from repro.sim.topology import EC2_REGIONS, Topology, ec2_global, single_datacenter


class Sink(Actor):
    """Records every delivered (sender, message, time) triple."""

    def __init__(self, env, name, site="dc1"):
        super().__init__(env, name, site)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message, self.now))


def make_env(topology=None):
    env = Environment(seed=1)
    Network(env, topology or single_datacenter(), jitter_fraction=0.0)
    return env


class TestTopology:
    def test_single_datacenter_rtt(self):
        topo = single_datacenter(rtt=0.0001)
        assert topo.rtt("dc1", "dc1") == pytest.approx(0.0001)

    def test_ec2_global_has_all_regions_and_links(self):
        topo = ec2_global()
        assert {s.name for s in topo.sites()} == set(EC2_REGIONS)
        for a in EC2_REGIONS:
            for b in EC2_REGIONS:
                assert topo.latency(a, b) > 0

    def test_ec2_subset(self):
        topo = ec2_global(["us-west-2", "us-east-1"])
        assert len(topo.sites()) == 2
        assert topo.latency("us-west-2", "us-east-1") == pytest.approx(0.035)

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError):
            ec2_global(["mars-central-1"])

    def test_wan_latency_exceeds_lan_latency(self):
        topo = ec2_global()
        assert topo.latency("eu-west-1", "us-west-2") > topo.latency("eu-west-1", "eu-west-1")

    def test_missing_link_raises(self):
        topo = Topology()
        topo.add_site("a")
        topo.add_site("b")
        with pytest.raises(KeyError):
            topo.latency("a", "b")

    def test_duplicate_site_rejected(self):
        topo = Topology()
        topo.add_site("a")
        with pytest.raises(ValueError):
            topo.add_site("a")

    def test_regions_and_sites_in_region(self):
        topo = Topology()
        topo.add_site("a1", region="r1")
        topo.add_site("a2", region="r1")
        topo.add_site("b1", region="r2")
        assert topo.regions() == ["r1", "r2"]
        assert [s.name for s in topo.sites_in_region("r1")] == ["a1", "a2"]


class TestMessageSize:
    def test_message_declares_size(self):
        assert message_size(Message(payload_bytes=100)) == 148

    def test_unknown_object_uses_default(self):
        assert message_size(object(), default=99) == 99


class TestNetworkDelivery:
    def test_local_delivery_has_small_latency(self):
        env = make_env()
        a = Sink(env, "a")
        b = Sink(env, "b")
        a.send("b", Message(payload_bytes=100))
        env.run()
        assert len(b.received) == 1
        assert 0 < b.received[0][2] < 0.001

    def test_wan_delivery_pays_propagation(self):
        env = make_env(ec2_global(["us-west-2", "eu-west-1"]))
        a = Sink(env, "a", site="us-west-2")
        b = Sink(env, "b", site="eu-west-1")
        a.send("b", Message(payload_bytes=100))
        env.run()
        assert b.received[0][2] >= 0.070

    def test_fifo_per_channel(self):
        env = make_env()
        a = Sink(env, "a")
        b = Sink(env, "b")
        for i in range(10):
            a.send("b", Message(payload_bytes=32 * 1024))
        env.run()
        assert [m.payload_bytes for _, m, _ in b.received] == [32 * 1024] * 10
        times = [t for _, _, t in b.received]
        assert times == sorted(times)

    def test_large_messages_queue_behind_each_other(self):
        env = make_env()
        a = Sink(env, "a")
        b = Sink(env, "b")
        a.send("b", Message(payload_bytes=10_000_000))
        a.send("b", Message(payload_bytes=100))
        env.run()
        first, second = b.received[0][2], b.received[1][2]
        assert second > first

    def test_unknown_destination_is_counted_as_drop(self):
        env = make_env()
        a = Sink(env, "a")
        a.send("ghost", Message())
        env.run()
        assert env.network.stats.dropped == 1

    def test_crashed_destination_drops_messages(self):
        env = make_env()
        a = Sink(env, "a")
        b = Sink(env, "b")
        b.crash()
        a.send("b", Message())
        env.run()
        assert b.received == []

    def test_statistics_count_messages_and_bytes(self):
        env = make_env()
        a = Sink(env, "a")
        b = Sink(env, "b")
        a.send("b", Message(payload_bytes=1000))
        env.run()
        assert env.network.stats.messages == 1
        assert env.network.stats.bytes > 1000


class TestFaultInjection:
    def test_partition_blocks_and_heal_restores(self):
        topo = ec2_global(["us-west-2", "us-east-1"])
        env = make_env(topo)
        a = Sink(env, "a", site="us-west-2")
        b = Sink(env, "b", site="us-east-1")
        env.network.partition("us-west-2", "us-east-1")
        a.send("b", Message())
        env.run()
        assert b.received == []
        env.network.heal("us-west-2", "us-east-1")
        a.send("b", Message())
        env.run()
        assert len(b.received) == 1

    def test_isolate_site(self):
        env = make_env()
        a = Sink(env, "a")
        b = Sink(env, "b")
        env.network.isolate_site("dc1")
        a.send("b", Message())
        env.run()
        assert b.received == []
        env.network.rejoin_site("dc1")
        a.send("b", Message())
        env.run()
        assert len(b.received) == 1

    def test_heal_all(self):
        env = make_env()
        env.network.partition("dc1", "dc1")
        env.network.isolate_site("dc1")
        env.network.heal_all()
        a = Sink(env, "a")
        b = Sink(env, "b")
        a.send("b", Message())
        env.run()
        assert len(b.received) == 1
