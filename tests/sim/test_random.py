"""Tests of the seeded random streams and the YCSB key distributions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.random import (
    LatestGenerator,
    SeededStreams,
    UniformIntGenerator,
    ZipfianGenerator,
    weighted_choice,
)


class TestSeededStreams:
    def test_same_seed_same_sequence(self):
        a = SeededStreams(7).stream("net")
        b = SeededStreams(7).stream("net")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = SeededStreams(7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_stream_identity_is_cached(self):
        streams = SeededStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_derives_child_seed(self):
        parent = SeededStreams(3)
        child1 = parent.spawn("site1")
        child2 = parent.spawn("site2")
        assert child1.seed != child2.seed
        assert SeededStreams(3).spawn("site1").seed == child1.seed


class TestUniformGenerator:
    def test_values_in_range(self):
        gen = UniformIntGenerator(5, 10, random.Random(1))
        values = [gen.next() for _ in range(200)]
        assert all(5 <= v <= 10 for v in values)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniformIntGenerator(10, 5, random.Random(1))


class TestZipfianGenerator:
    def test_values_are_within_bounds(self):
        gen = ZipfianGenerator(1000, random.Random(2))
        values = [gen.next() for _ in range(2000)]
        assert all(0 <= v < 1000 for v in values)

    def test_distribution_is_skewed_towards_low_keys(self):
        gen = ZipfianGenerator(1000, random.Random(3))
        values = [gen.next() for _ in range(5000)]
        hot = sum(1 for v in values if v < 100)
        assert hot > len(values) * 0.4

    def test_empty_keyspace_rejected(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, random.Random(1))

    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_always_in_range(self, items, seed):
        gen = ZipfianGenerator(items, random.Random(seed))
        assert all(0 <= gen.next() < items for _ in range(50))


class TestZipfianRankFrequency:
    """The generator's rank-frequency curve matches the analytic Zipf mass.

    The swarm's skewed key draws inherit whatever bias this generator has,
    so the draw frequencies are checked against the analytic distribution
    ``p(r) = (1/(r+1)^θ) / H_{n,θ}`` — not just "low keys are hot".
    """

    ITEMS = 50
    DRAWS = 20_000

    @staticmethod
    def _analytic_mass(items, theta):
        harmonic = sum(1.0 / (i ** theta) for i in range(1, items + 1))
        return [1.0 / ((rank + 1) ** theta) / harmonic for rank in range(items)]

    @pytest.mark.parametrize("theta", [0.3, 0.7, 0.99])
    def test_empirical_frequencies_match_analytic_mass(self, theta):
        gen = ZipfianGenerator(self.ITEMS, random.Random(97), theta=theta)
        counts = [0] * self.ITEMS
        for _ in range(self.DRAWS):
            counts[gen.next()] += 1
        expected = self._analytic_mass(self.ITEMS, theta)
        for rank, probability in enumerate(expected):
            if probability < 0.01:
                continue  # too few expected draws for a tight bound
            empirical = counts[rank] / self.DRAWS
            # ~6 sigma of the binomial: deterministic seed, no flakes.
            sigma = (probability * (1 - probability) / self.DRAWS) ** 0.5
            assert abs(empirical - probability) < 6 * sigma + 0.002, (
                f"theta={theta} rank={rank}: {empirical:.4f} vs {probability:.4f}"
            )

    def test_single_item_keyspace_always_draws_zero(self):
        """Regression: item_count=1 degenerates the eta expression."""
        gen = ZipfianGenerator(1, random.Random(5))
        assert all(gen.next() == 0 for _ in range(500))

    def test_two_item_keyspace_matches_analytic_split(self):
        """Regression: at item_count=2, zeta(2) == zeta(n) zeroes eta's
        denominator; the draws must still follow the two-point Zipf mass."""
        theta = 0.99
        gen = ZipfianGenerator(2, random.Random(6), theta=theta)
        draws = [gen.next() for _ in range(20_000)]
        assert set(draws) <= {0, 1}
        p0 = 1.0 / (1.0 + 0.5 ** theta)
        empirical = draws.count(0) / len(draws)
        sigma = (p0 * (1 - p0) / len(draws)) ** 0.5
        assert abs(empirical - p0) < 6 * sigma + 0.002


class TestLatestGenerator:
    def test_prefers_recent_keys(self):
        gen = LatestGenerator(1000, random.Random(4))
        values = [gen.next() for _ in range(3000)]
        recent = sum(1 for v in values if v > 900)
        assert recent > len(values) * 0.4

    def test_record_insert_extends_keyspace(self):
        gen = LatestGenerator(10, random.Random(5))
        for _ in range(50):
            gen.record_insert()
        values = [gen.next() for _ in range(500)]
        assert max(values) > 10
        assert all(v >= 0 for v in values)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(6)
        picks = [weighted_choice(rng, [("a", 0.9), ("b", 0.1)]) for _ in range(1000)]
        assert picks.count("a") > 700

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(1), [("a", 0.0)])
