"""Tests of the compact cross-shard wire codec (`repro.sim.network`).

The codec's contract: ``decode_wire(encode_wire(x)) == x`` for every payload
the barrier plane ships — registered protocol dataclasses in positional tuple
form, the ``RingSegment`` columnar/run-length form, and arbitrary unregistered
objects via pickle's default path — while never aliasing distinct mutable
instances on the receiving side and always preserving the ``SKIP`` sentinel's
identity.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import Command
from repro.multiring.merge import RingSegment
from repro.net.message import Batch, ClientRequest, Message
from repro.paxos.messages import SKIP, Decision, ProposalValue
from repro.ringpaxos.coordinator import PackedValues
from repro.sim.network import decode_wire, encode_wire, wire_fields


# ---------------------------------------------------------------------------
# Hypothesis strategies building the nested payload shapes barrier traffic
# actually carries: Command leaves wrapped in ProposalValue / PackedValues,
# rides inside RingSegments and RemoteMessage tuples.
# ---------------------------------------------------------------------------

_names = st.text(alphabet="abcdefgh0123", max_size=8)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_ints = st.integers(min_value=0, max_value=2**31)


def _commands():
    return st.builds(
        Command,
        op=st.sampled_from(["append", "update", "scan", "read"]),
        args=st.tuples(_ints),
        group_id=st.integers(min_value=0, max_value=7),
        size_bytes=_ints,
        client=_names,
        command_id=_ints,
        created_at=_floats,
        response_size=_ints,
    )


def _skip_values():
    return st.builds(
        ProposalValue,
        payload=st.just(SKIP),
        size_bytes=st.just(0),
        proposer=st.just(""),
        proposal_id=st.just(0),
        created_at=st.just(0.0),
    )


def _value_payloads():
    packed = st.builds(
        PackedValues,
        values=st.lists(
            st.builds(
                ProposalValue,
                payload=_commands(),
                size_bytes=_ints,
                proposer=_names,
                proposal_id=_ints,
                created_at=_floats,
            ),
            max_size=3,
        ),
    )
    return st.one_of(st.just(SKIP), _commands(), packed)


def _proposal_values():
    return st.builds(
        ProposalValue,
        payload=_value_payloads(),
        size_bytes=_ints,
        proposer=_names,
        proposal_id=_ints,
        created_at=_floats,
    )


def _segments():
    # Mix consecutive and arbitrary instance numbering, skip bursts included.
    entries = st.lists(st.tuples(_ints, st.one_of(_proposal_values(), _skip_values())))
    return st.builds(
        RingSegment,
        incarnation=st.integers(min_value=0, max_value=3),
        start=_ints,
        entries=entries,
    )


def _remote_messages():
    message = st.one_of(
        _proposal_values(),
        st.builds(Batch, messages=st.lists(st.builds(ClientRequest), max_size=3)),
        st.builds(Decision, ring_id=_ints, instance=_ints, value=_proposal_values()),
    )
    return st.tuples(_floats, _names, _names, message)


@settings(max_examples=150, deadline=None)
@given(
    st.one_of(
        _segments(),
        st.lists(_remote_messages(), max_size=4),
        st.dictionaries(st.integers(0, 7), st.lists(_remote_messages(), max_size=3), max_size=3),
    )
)
def test_roundtrip_equals_original(payload):
    assert decode_wire(encode_wire(payload)) == payload


@settings(max_examples=60, deadline=None)
@given(_segments())
def test_segment_wire_form_roundtrip(segment):
    decoded = decode_wire(encode_wire(segment))
    assert decoded == segment
    # Run-length expansion must never alias: distinct entries stay distinct
    # objects, safe for consumers that mutate delivered values in place.
    ids = {id(value) for _, value in decoded.entries}
    assert len(ids) == len(decoded.entries)


def test_skip_identity_survives_the_wire():
    segment = RingSegment(
        entries=[(i, ProposalValue(SKIP, 0, "", 0, 0.0)) for i in range(8)]
    )
    decoded = decode_wire(encode_wire(segment))
    assert all(value.payload is SKIP for _, value in decoded.entries)
    assert all(value.is_skip() for _, value in decoded.entries)


def test_equal_instances_intern_without_aliasing():
    # Distinct-but-equal hashable-field instances (the rate-leveled skip
    # stream shape) must encode compactly — interned argument tuples — yet
    # decode to fresh objects.
    values = [ProposalValue(SKIP, 0, "", 0, 0.0) for _ in range(500)]
    wire = encode_wire(values)
    legacy = pickle.dumps(values)
    assert len(wire) < len(legacy) / 2
    decoded = decode_wire(wire)
    assert decoded == values
    assert len({id(v) for v in decoded}) == len(values)


def test_identical_objects_stay_interned():
    shared = ProposalValue(Command(op="append", args=(1,)), 64, "p", 9, 1.5)
    wire = encode_wire([shared] * 100)
    assert len(wire) < len(encode_wire([shared])) + 400  # memo back-references


def test_segment_consecutive_instances_compress():
    dense = RingSegment(
        entries=[(i, ProposalValue(SKIP, 0, "", 0, 0.0)) for i in range(1000)]
    )
    assert len(encode_wire(dense)) < len(pickle.dumps(dense)) / 10
    # Non-consecutive numbering still round-trips exactly.
    sparse = RingSegment(
        entries=[(i * 3 + 1, ProposalValue(SKIP, 0, "", 0, 0.0)) for i in range(10)]
    )
    assert decode_wire(encode_wire(sparse)) == sparse


def test_unregistered_payloads_pass_through():
    payload = {"arbitrary": [1, 2.5, ("nested", None)], "set": frozenset({1, 2})}
    assert decode_wire(encode_wire(payload)) == payload


def test_protocol_classes_are_registered():
    for cls in (Message, Batch, ClientRequest, Command, ProposalValue, Decision, PackedValues):
        names = wire_fields(cls)
        assert names, f"{cls.__name__} is not wire-registered"
        # The frozen field order must cover cached derived fields too, so
        # positional rebuild restores them without re-running __post_init__.
        assert all(isinstance(name, str) for name in names)


def test_cached_sizes_survive_positional_rebuild():
    batch = Batch(messages=[ClientRequest(client="c0"), ClientRequest(client="c1")])
    decoded = decode_wire(encode_wire(batch))
    assert decoded.size_bytes == batch.size_bytes
    assert decoded.payload_bytes == batch.payload_bytes
