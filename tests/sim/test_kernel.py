"""Unit tests of the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator, ms, us


class TestScheduling:
    def test_run_executes_callbacks_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 2.0

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties_before_sequence(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "low", priority=1)
        sim.schedule(1.0, fired.append, "high", priority=0)
        sim.run()
        assert fired == ["high", "low"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.5, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 3.5

    def test_schedule_at_past_time_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_runs_after_current_event(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("nested"))
            order.append("still-first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "still-first", "nested"]


class TestRunControl:
    def test_run_until_stops_the_clock_at_the_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert fired == ["a", "b"]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_stop_interrupts_the_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, lambda: sim.stop())
        sim.schedule(3.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]
        assert sim.pending_events == 1

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1.0, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_processed_events_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_drain_discards_pending_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.drain(5.0)
        sim.run()
        assert fired == []
        assert sim.now == 5.0

    def test_drain_backwards_rejected(self):
        sim = Simulator(start_time=3.0)
        with pytest.raises(SimulationError):
            sim.drain(1.0)


class TestTimeHelpers:
    def test_ms_and_us_conversions(self):
        assert ms(5) == 0.005
        assert us(250) == 0.00025
