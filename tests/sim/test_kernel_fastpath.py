"""Fast-path kernel tests: seed-differential determinism and compaction.

The fast-path rewrite (tuple heap entries, handle-free ``_post`` events, lazy
cancellation with compaction, connection caches in the network) must be
observably identical to the seed implementation preserved in
:mod:`repro.sim.legacy`: same seeds produce the same event orders and the
same protocol-level delivery sequences.
"""

import random

import pytest

import repro.core.amcast as amcast
import repro.sim.actor as actor_mod
from repro.core import AtomicMulticast, MultiRingConfig
from repro.multiring import MultiRingProcess
from repro.sim.disk import StorageMode
from repro.sim.kernel import Simulator
from repro.sim.legacy import LegacyNetwork, LegacySimulator
from repro.sim.network import Network


def _random_kernel_trace(sim, seed: int, operations: int = 400):
    """Drive a seeded random schedule/cancel program; return the firing log."""
    rng = random.Random(seed)
    log = []
    handles = []

    def fire(tag):
        log.append((round(sim.now, 9), tag))
        if rng.random() < 0.4:
            handles.append(sim.schedule(rng.uniform(0.0, 2.0), fire, f"{tag}.n"))
        if handles and rng.random() < 0.3:
            handles[rng.randrange(len(handles))].cancel()

    for i in range(operations):
        delay = rng.uniform(0.0, 5.0)
        priority = rng.choice([0, 0, 0, 1])
        handles.append(sim.schedule(delay, fire, str(i), priority=priority))
    sim.run(until=10.0)
    return log


class TestSeedDifferentialKernel:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_random_workload_fires_identically_to_seed_kernel(self, seed):
        fast_log = _random_kernel_trace(Simulator(), seed)
        legacy_log = _random_kernel_trace(LegacySimulator(), seed)
        assert fast_log == legacy_log
        assert len(fast_log) > 0

    def test_post_orders_like_schedule(self):
        """_post entries interleave with schedule/call_later in seq order."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim._post(1.0, fired.append, ("b",))
        sim.call_later(1.0, fired.append, "c")
        sim._post(0.5, fired.append, ("early",))
        sim.run()
        assert fired == ["early", "a", "b", "c"]

    def test_post_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(Exception):
            sim._post(-0.1, lambda: None, ())

    def test_step_executes_post_entries(self):
        sim = Simulator()
        fired = []
        sim._post(0.2, fired.append, ("x",))
        assert sim.step() is True
        assert fired == ["x"]
        assert sim.now == 0.2


class _Recorder(MultiRingProcess):
    def __init__(self, env, name):
        super().__init__(env, name)
        self.delivered = []

    def on_deliver(self, group_id, instance, value):
        self.delivered.append((group_id, instance, value.payload, round(self.now, 12)))
        if len(self.delivered) < 40:
            self.multicast(0, payload=(self.name, len(self.delivered)), size_bytes=512)


def _run_stack(seed: int):
    """A small self-propelling ring workload; returns per-process deliveries."""
    config = MultiRingConfig(
        storage_mode=StorageMode.IN_MEMORY,
        batching_enabled=False,
        rate_interval=None,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(config=config, seed=seed)
    processes = [_Recorder(system.env, f"n{i}") for i in range(3)]
    system.create_ring(0, [(p.name, "pal") for p in processes])
    system.start()
    for p in processes:
        p.multicast(0, payload=(p.name, 0), size_bytes=512)
    system.run(until=2.0)
    return [p.delivered for p in processes]


class TestSeedDifferentialStack:
    @pytest.mark.parametrize("seed", [3, 11, 99])
    def test_delivery_sequences_match_seed_substrate(self, monkeypatch, seed):
        """Same seed → identical delivery sequence on the pre- and
        post-refactor substrate (kernel + network swapped via injection)."""
        fast = _run_stack(seed)
        monkeypatch.setattr(actor_mod, "Simulator", LegacySimulator)
        monkeypatch.setattr(amcast, "Network", LegacyNetwork)
        legacy = _run_stack(seed)
        assert fast == legacy
        assert all(len(d) > 0 for d in fast)

    def test_all_learners_agree(self):
        deliveries = _run_stack(5)
        orders = [[(g, i, p) for g, i, p, _ in d] for d in deliveries]
        assert orders[0] == orders[1] == orders[2]


class TestCancellationCompaction:
    def test_cancelled_events_are_compacted_out_of_the_heap(self):
        sim = Simulator()
        handles = [sim.schedule(10.0 + i, lambda: None) for i in range(1000)]
        survivor_fired = []
        sim.schedule(5.0, survivor_fired.append, "ok")
        for h in handles:
            h.cancel()
        # Compaction keeps the heap bounded by the trigger threshold instead
        # of letting all 1000 dead entries pile up for lazy pop-skipping.
        assert len(sim._queue) <= 2 * Simulator.COMPACT_MIN_CANCELLED
        assert sim.pending_events == 1
        sim.run()
        assert survivor_fired == ["ok"]
        assert sim.processed_events == 1

    def test_compaction_preserves_order_of_survivors(self):
        sim = Simulator()
        fired = []
        keep = []
        for i in range(500):
            h = sim.schedule(float(i), fired.append, i)
            if i % 10 == 0:
                keep.append(i)
            else:
                h.cancel()
        sim.run()
        assert fired == keep

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(float(i), fired.append, i) for i in range(100)]
        sim.run()
        for h in handles:
            h.cancel()  # cancelling after the fact is a no-op on the queue
        assert fired == list(range(100))
        # Fired events must not count toward the compaction trigger.
        assert sim._cancelled == 0
        later = sim.schedule(1.0, fired.append, "later")
        sim.run()
        assert fired[-1] == "later"
        assert not later.cancelled

    def test_drain_resets_cancellation_state(self):
        sim = Simulator()
        handles = [sim.schedule(1.0 + i, lambda: None) for i in range(200)]
        for h in handles[:50]:
            h.cancel()
        sim.drain(100.0)
        assert sim.pending_events == 0
        assert sim.now == 100.0
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]


def _run_faulted_stack(seed: int):
    """A two-site ring workload with partitions and isolation active mid-run.

    Exercises the `_has_faults` guard differentially: sends issued while
    links are cut or a site is isolated must be dropped (and delivery times
    of everything else unchanged) identically on both substrates.
    """
    from repro.sim.topology import Topology

    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("a")
    topo.add_site("b")
    topo.set_link("a", "b", one_way_latency=0.002, bandwidth_bps=1e9)
    config = MultiRingConfig(
        storage_mode=StorageMode.IN_MEMORY,
        batching_enabled=False,
        rate_interval=None,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(topology=topo, config=config, seed=seed)
    processes = [
        _Recorder(system.env, f"n{i}") for i in range(4)
    ]
    for process, site in zip(processes, ["a", "a", "b", "b"]):
        process.site = site
    system.create_ring(0, [(p.name, "pal") for p in processes])
    network = system.network
    sim = system.env.simulator
    sim.call_later(0.011, network.partition, "a", "b")
    sim.call_later(0.016, network.heal, "a", "b")
    sim.call_later(0.020, network.isolate_site, "b")
    sim.call_later(0.024, network.rejoin_site, "b")
    sim.call_later(0.027, network.partition, "b", "a", False)  # one-way cut
    sim.call_later(0.031, network.heal_all)
    system.start()
    for p in processes:
        p.multicast(0, payload=(p.name, 0), size_bytes=512)
    rng = random.Random(seed)
    for i in range(60):
        proposer = processes[rng.randrange(4)]
        sim.call_later(
            0.0005 * i,
            lambda p=proposer, i=i: p.multicast(0, payload=("x", i), size_bytes=256),
        )
    system.run(until=0.5)
    return (
        [p.delivered for p in processes],
        (system.network.stats.messages, system.network.stats.dropped),
    )


class TestSeedDifferentialFaultPath:
    @pytest.mark.parametrize("seed", [2, 13, 77])
    def test_partitions_and_isolation_behave_identically_to_seed(self, monkeypatch, seed):
        """Same seed, faults active → identical deliveries AND drop counts."""
        fast_deliveries, fast_stats = _run_faulted_stack(seed)
        monkeypatch.setattr(actor_mod, "Simulator", LegacySimulator)
        monkeypatch.setattr(amcast, "Network", LegacyNetwork)
        legacy_deliveries, legacy_stats = _run_faulted_stack(seed)
        assert fast_deliveries == legacy_deliveries
        assert fast_stats == legacy_stats
        assert fast_stats[1] > 0, "the fault window dropped nothing — dead test"
        assert any(len(d) > 0 for d in fast_deliveries)

    def test_fault_flag_tracks_partitions(self):
        from repro.sim.topology import Topology
        from repro.sim.actor import Environment

        topo = Topology()
        topo.add_site("a")
        topo.add_site("b")
        topo.set_link("a", "b", 0.001)
        network = Network(Environment(seed=1), topo)
        assert not network.has_active_faults
        network.partition("a", "b")
        assert network.has_active_faults
        network.heal("a", "b")
        assert not network.has_active_faults
        network.isolate_site("a")
        assert network.has_active_faults
        network.heal_all()
        assert not network.has_active_faults


class TestNetworkFastPathEquivalence:
    def test_connection_cache_matches_seed_network_delivery_times(self):
        """Bit-level: cached-connection sends vs the seed network's lookups."""
        from repro.net.message import Message
        from repro.sim.actor import Actor, Environment
        from repro.sim.topology import ec2_global

        class Sink(Actor):
            def __init__(self, env, name, site):
                super().__init__(env, name, site)
                self.received = []

            def on_message(self, sender, message):
                self.received.append((sender, message.payload_bytes, self.now))

        def run_network(net_cls, sim_cls):
            env = Environment(simulator=sim_cls(), seed=7)
            net_cls(env, ec2_global(["us-west-2", "us-east-1"]), jitter_fraction=0.05)
            a = Sink(env, "a", "us-west-2")
            b = Sink(env, "b", "us-east-1")
            for i in range(50):
                a.send("b", Message(payload_bytes=1000 + i))
                b.send("a", Message(payload_bytes=10 * i))
            env.simulator.run()
            return a.received, b.received

        fast = run_network(Network, Simulator)
        legacy = run_network(LegacyNetwork, LegacySimulator)
        assert fast == legacy
