"""The profiling harness: zero-perturbation guarantee and collector semantics.

``Simulator(profile=SimProfile())`` routes the run loop through an
instrumented twin.  The contract is that the instrumented loop executes the
*exact same* event sequence as the default loops — same order, same virtual
timestamps, same processed-event count — while attributing counts and wall
time per callback.  These tests run identically seeded workloads with and
without a profile installed (and across ``batch_dispatch`` / ``max_events``
loop variants) and require byte-identical trajectories, then pin the
collector's keying, injectable clock, and JSON summary shape.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.sim.profile import SimProfile, profile_function


def _fan_out_workload(sim: Simulator, log: list) -> None:
    """A small self-extending workload: timers scheduling timers."""

    def tick(label: str, depth: int) -> None:
        log.append((sim.now, label, depth))
        if depth < 3:
            sim.call_later(0.001 * (depth + 1), tick, f"{label}.l", depth + 1)
            sim.call_later(0.002, tick, f"{label}.r", depth + 1)

    def post_only() -> None:
        log.append((sim.now, "post", -1))

    sim.call_later(0.0, tick, "a", 0)
    sim.call_later(0.0005, tick, "b", 0)
    sim._post(0.0015, post_only)


def _run(profile=None, batch_dispatch=False, max_events=None, until=None):
    sim = Simulator(batch_dispatch=batch_dispatch, profile=profile)
    log: list = []
    _fan_out_workload(sim, log)
    end = sim.run(until=until, max_events=max_events)
    return log, end, sim.processed_events


class TestZeroPerturbation:
    def test_profiled_run_matches_default_loop(self):
        baseline, base_end, base_count = _run()
        profile = SimProfile()
        profiled, prof_end, prof_count = _run(profile=profile)
        assert profiled == baseline
        assert prof_end == base_end
        assert prof_count == base_count
        assert profile.total_events == base_count

    def test_profiled_run_matches_general_loop_variants(self):
        # max_events and batch_dispatch route the uninstrumented side
        # through _run_general; the profiled twin must still match both.
        for kwargs in (
            {"max_events": 9},
            {"batch_dispatch": True},
            {"batch_dispatch": True, "max_events": 9},
            {"until": 0.003},
        ):
            baseline, base_end, base_count = _run(**kwargs)
            profiled, prof_end, prof_count = _run(profile=SimProfile(), **kwargs)
            assert profiled == baseline, f"trajectory diverged for {kwargs}"
            assert prof_end == base_end
            assert prof_count == base_count

    def test_profile_property_exposes_installed_collector(self):
        profile = SimProfile()
        assert Simulator(profile=profile).profile is profile
        assert Simulator().profile is None


class TestSimProfileCollector:
    def test_counts_attribute_every_processed_event(self):
        profile = SimProfile()
        _, _, count = _run(profile=profile)
        assert profile.total_events == count
        # Both heap-entry layouts were attributed: Event callbacks (tick)
        # and bare _post callbacks (post_only).
        keys = set(profile.events)
        assert any("tick" in k for k in keys)
        assert any("post_only" in k for k in keys)

    def test_injectable_clock_yields_deterministic_wall_time(self):
        ticks = iter(range(10_000))
        profile = SimProfile(clock=lambda: float(next(ticks)))
        _, _, count = _run(profile=profile)
        # The fake clock advances by exactly 1.0 between the bracketing
        # reads of every event, so attributed wall time == event count.
        assert profile.total_wall_s == float(count)
        for key, events in profile.events.items():
            assert profile.wall[key] == float(events)

    def test_record_memoizes_bound_method_names(self):
        profile = SimProfile(clock=lambda: 0.0)

        class Thing:
            def cb(self):
                pass

        thing = Thing()
        profile.record(thing.cb, 0.5)
        profile.record(thing.cb, 0.25)  # a fresh bound-method object each time
        assert profile.events == {"TestSimProfileCollector.test_record_memoizes_bound_method_names.<locals>.Thing.cb": 2}
        assert profile.total_wall_s == 0.75

    def test_as_dict_is_json_able_and_sorted_by_wall(self):
        import json

        profile = SimProfile()
        _run(profile=profile)
        summary = profile.as_dict(top=5)
        json.dumps(summary)  # must not raise
        assert summary["total_events"] == profile.total_events
        rows = summary["events_by_callback"]
        assert len(rows) <= 5
        walls = [row["wall_s"] for row in rows]
        assert walls == sorted(walls, reverse=True)
        assert all({"callback", "events", "wall_s"} <= set(row) for row in rows)


class TestProfileFunction:
    def test_returns_result_and_hot_rows(self):
        def work(n):
            return sum(i * i for i in range(n))

        result, hot = profile_function(work, 1_000, top=5)
        assert result == sum(i * i for i in range(1_000))
        assert 0 < len(hot) <= 5
        for row in hot:
            assert {"function", "calls", "tottime_s", "cumtime_s"} <= set(row)
        # Sorted by exclusive time, descending.
        tottimes = [row["tottime_s"] for row in hot]
        assert tottimes == sorted(tottimes, reverse=True)
