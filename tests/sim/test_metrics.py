"""Unit tests of the measurement instruments."""

import pytest

from repro.sim.metrics import (
    Counter,
    LatencyRecorder,
    MetricRegistry,
    ThroughputTracker,
    summarize_latencies,
)


class TestCounter:
    def test_increment_accumulates(self):
        counter = Counter("ops")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("ops").increment(-1)

    def test_reset(self):
        counter = Counter("ops")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestLatencyRecorder:
    def test_mean_and_count(self):
        recorder = LatencyRecorder("lat")
        for value in (0.010, 0.020, 0.030):
            recorder.record(value)
        assert recorder.count == 3
        assert recorder.mean() == pytest.approx(0.020)
        assert recorder.mean_ms() == pytest.approx(20.0)

    def test_empty_recorder_returns_zero(self):
        recorder = LatencyRecorder("lat")
        assert recorder.mean() == 0.0
        assert recorder.percentile(99) == 0.0
        assert recorder.cdf() == []

    def test_percentiles_are_order_statistics(self):
        recorder = LatencyRecorder("lat")
        for i in range(1, 101):
            recorder.record(i / 1000.0)
        assert recorder.percentile(50) == pytest.approx(0.050)
        assert recorder.percentile(95) == pytest.approx(0.095)
        assert recorder.percentile(100) == pytest.approx(0.100)

    def test_percentile_bounds_checked(self):
        recorder = LatencyRecorder("lat")
        recorder.record(0.1)
        with pytest.raises(ValueError):
            recorder.percentile(150)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder("lat").record(-0.1)

    def test_cdf_is_monotonic_and_ends_at_one(self):
        recorder = LatencyRecorder("lat")
        for i in range(50):
            recorder.record(i / 100.0)
        cdf = recorder.cdf(points=10)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        latencies = [l for l, _ in cdf]
        assert latencies == sorted(latencies)

    def test_fraction_below(self):
        recorder = LatencyRecorder("lat")
        for value in (0.001, 0.005, 0.010, 0.050):
            recorder.record(value)
        assert recorder.fraction_below(0.010) == pytest.approx(0.5)
        assert recorder.fraction_below(1.0) == pytest.approx(1.0)

    def test_reset_drops_samples(self):
        recorder = LatencyRecorder("lat")
        recorder.record(0.1)
        recorder.reset()
        assert recorder.count == 0


class TestThroughputTracker:
    def test_rate_over_window(self):
        clock = {"now": 0.0}
        tracker = ThroughputTracker("tp", clock=lambda: clock["now"])
        for t in range(10):
            clock["now"] = float(t)
            tracker.record(2.0)
        assert tracker.total == 20.0
        assert tracker.rate(0.0, 10.0) == pytest.approx(2.0)
        assert tracker.total_between(0.0, 5.0) == 10.0

    def test_timeline_includes_empty_buckets(self):
        clock = {"now": 0.0}
        tracker = ThroughputTracker("tp", clock=lambda: clock["now"], bucket_seconds=1.0)
        clock["now"] = 0.5
        tracker.record(1.0)
        clock["now"] = 2.5
        tracker.record(3.0)
        timeline = tracker.timeline(0.0, 4.0)
        assert len(timeline) == 4
        assert timeline[0][1] == pytest.approx(1.0)
        assert timeline[1][1] == 0.0
        assert timeline[2][1] == pytest.approx(3.0)

    def test_rate_of_empty_window_is_zero(self):
        tracker = ThroughputTracker("tp", clock=lambda: 0.0)
        assert tracker.rate(5.0, 5.0) == 0.0
        assert tracker.timeline(3.0, 3.0) == []

    def test_events_exactly_on_bucket_boundaries(self):
        """An event at a bucket edge belongs to the bucket it *opens*.

        Buckets are half-open ``[start, start+b)``: an event at exactly t=1.0
        with 1-second buckets lands in bucket 1, never bucket 0, and an event
        at the window end is excluded entirely (the window is ``[start, end)``).
        """
        clock = {"now": 0.0}
        tracker = ThroughputTracker("tp", clock=lambda: clock["now"], bucket_seconds=1.0)
        for t in (0.0, 1.0, 2.0):
            clock["now"] = t
            tracker.record(1.0)
        timeline = tracker.timeline(0.0, 2.0)
        assert [units for _, units in timeline] == [1.0, 1.0]  # t=2.0 excluded
        assert tracker.total_between(0.0, 2.0) == 2.0
        assert tracker.total_between(1.0, 2.0) == 1.0  # start edge included
        assert tracker.rate(0.0, 2.0) == pytest.approx(1.0)

    def test_fractional_final_bucket_covers_the_window_end(self):
        """A window that is not a whole number of buckets still covers it:
        the final (short) bucket exists and its rate is units / bucket."""
        clock = {"now": 2.25}
        tracker = ThroughputTracker("tp", clock=lambda: clock["now"], bucket_seconds=1.0)
        tracker.record(4.0)
        timeline = tracker.timeline(0.0, 2.5)
        assert len(timeline) == 3
        assert timeline[-1][0] == pytest.approx(2.0)
        assert timeline[-1][1] == pytest.approx(4.0)

    def test_reset_drops_events_but_keeps_identity(self):
        clock = {"now": 0.5}
        tracker = ThroughputTracker("tp", clock=lambda: clock["now"])
        tracker.record(3.0)
        tracker.reset()
        assert tracker.total == 0.0
        assert tracker.rate(0.0, 1.0) == 0.0
        assert tracker.name == "tp"
        tracker.record(1.0)
        assert tracker.total == 1.0


class TestMetricRegistry:
    def test_instruments_are_singletons_by_name(self):
        registry = MetricRegistry(clock=lambda: 0.0)
        assert registry.counter("a") is registry.counter("a")
        assert registry.latency("b") is registry.latency("b")
        assert registry.throughput("c") is registry.throughput("c")

    def test_reset_all(self):
        registry = MetricRegistry(clock=lambda: 0.0)
        registry.counter("a").increment(5)
        registry.latency("b").record(0.1)
        registry.throughput("c").record(1.0)
        registry.reset_all()
        assert registry.counter("a").value == 0
        assert registry.latency("b").count == 0
        assert registry.throughput("c").total == 0

    def test_names_lists_all_instruments(self):
        registry = MetricRegistry(clock=lambda: 0.0)
        registry.counter("x")
        registry.latency("y")
        assert registry.names() == ["x", "y"]


def test_summarize_latencies():
    summary = summarize_latencies([0.001, 0.002, 0.003, 0.004])
    assert summary["count"] == 4
    assert summary["mean_ms"] == pytest.approx(2.5)
    assert summary["p99_ms"] >= summary["p50_ms"]
