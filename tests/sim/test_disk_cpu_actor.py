"""Tests of the disk models, CPU accounting and the actor layer."""

import pytest

from repro.sim.actor import Actor, Environment
from repro.sim.cpu import CpuAccount, CpuCostModel
from repro.sim.disk import (
    Disk,
    HDD_PROFILE,
    SSD_PROFILE,
    StorageMode,
    profile_for_mode,
)
from repro.sim.network import Network
from repro.sim.topology import single_datacenter


class TestStorageMode:
    def test_synchronous_flag(self):
        assert StorageMode.SYNC_HDD.synchronous
        assert StorageMode.SYNC_SSD.synchronous
        assert not StorageMode.ASYNC_HDD.synchronous
        assert not StorageMode.IN_MEMORY.synchronous

    def test_persistence_flag(self):
        assert not StorageMode.IN_MEMORY.persistent
        assert StorageMode.ASYNC_SSD.persistent

    def test_profile_for_mode(self):
        assert profile_for_mode(StorageMode.IN_MEMORY) is None
        assert profile_for_mode(StorageMode.SYNC_SSD) is SSD_PROFILE
        assert profile_for_mode(StorageMode.ASYNC_HDD) is HDD_PROFILE


class TestDisk:
    def test_write_time_includes_access_and_transfer(self):
        assert HDD_PROFILE.write_time(0) == pytest.approx(HDD_PROFILE.access_latency)
        assert HDD_PROFILE.write_time(120_000_000) > 1.0

    def test_writes_serialise(self):
        env = Environment()
        disk = Disk(env, SSD_PROFILE)
        first = disk.write(1024)
        second = disk.write(1024)
        assert second > first
        assert disk.write_count == 2
        assert disk.bytes_written == 2048

    def test_completion_callback_fires_at_durable_time(self):
        env = Environment()
        disk = Disk(env, SSD_PROFILE)
        done = []
        finish = disk.write(1024, on_complete=lambda: done.append(env.simulator.now))
        env.simulator.run()
        assert done and done[0] == pytest.approx(finish)

    def test_ssd_is_faster_than_hdd(self):
        assert SSD_PROFILE.write_time(4096) < HDD_PROFILE.write_time(4096)

    def test_negative_size_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Disk(env, SSD_PROFILE).write(-1)

    def test_queue_delay_reflects_backlog(self):
        env = Environment()
        disk = Disk(env, HDD_PROFILE)
        assert disk.queue_delay() == 0.0
        disk.write(1024)
        assert disk.queue_delay() > 0.0


class TestCpuAccounting:
    def test_charge_and_utilization(self):
        clock = {"now": 0.0}
        account = CpuAccount("p", clock=lambda: clock["now"])
        account.reset_window()
        account.charge(0.5)
        clock["now"] = 1.0
        assert account.utilization() == pytest.approx(0.5)
        assert account.utilization_percent() == pytest.approx(50.0)

    def test_utilization_can_exceed_one_core(self):
        clock = {"now": 0.0}
        account = CpuAccount("p", clock=lambda: clock["now"])
        account.reset_window()
        account.charge(2.0)
        clock["now"] = 1.0
        assert account.utilization() == pytest.approx(2.0)

    def test_charge_message_uses_model(self):
        model = CpuCostModel(per_message=1e-6, per_byte=1e-9)
        clock = {"now": 0.0}
        account = CpuAccount("p", clock=lambda: clock["now"])
        account.charge_message(model, size_bytes=1000, count=2)
        assert account.busy_seconds == pytest.approx(2e-6 + 1e-6)

    def test_negative_charge_rejected(self):
        account = CpuAccount("p", clock=lambda: 0.0)
        with pytest.raises(ValueError):
            account.charge(-1)

    def test_empty_window_utilization_is_zero(self):
        account = CpuAccount("p", clock=lambda: 0.0)
        account.reset_window()
        assert account.utilization() == 0.0


class Echo(Actor):
    def __init__(self, env, name):
        super().__init__(env, name)
        self.got = []

    def on_message(self, sender, message):
        self.got.append(message)


class TestActor:
    def _env(self):
        env = Environment(seed=2)
        Network(env, single_datacenter(), jitter_fraction=0.0)
        return env

    def test_duplicate_names_rejected(self):
        env = self._env()
        Echo(env, "a")
        with pytest.raises(ValueError):
            Echo(env, "a")

    def test_timers_fire_and_cancel(self):
        env = self._env()
        actor = Echo(env, "a")
        fired = []
        actor.set_timer(1.0, lambda: fired.append("once"))
        timer = actor.set_periodic_timer(0.5, lambda: fired.append("tick"))
        env.run(until=2.6)
        timer.cancel()
        env.run(until=5.0)
        assert fired.count("once") == 1
        assert fired.count("tick") == 5

    def test_crash_cancels_timers_and_drops_messages(self):
        env = self._env()
        a = Echo(env, "a")
        b = Echo(env, "b")
        ticks = []
        b.set_periodic_timer(0.5, lambda: ticks.append(1))
        b.crash()
        a.send("b", "hello")
        env.run(until=3.0)
        assert b.got == []
        assert ticks == []

    def test_restart_resumes_message_delivery(self):
        env = self._env()
        a = Echo(env, "a")
        b = Echo(env, "b")
        b.crash()
        b.restart()
        a.send("b", "hello")
        env.run()
        assert b.got == ["hello"]

    def test_rng_streams_are_stable_per_actor(self):
        env = self._env()
        a = Echo(env, "a")
        first = a.rng("x").random()
        env2 = Environment(seed=2)
        Network(env2, single_datacenter())
        a2 = Echo(env2, "a")
        assert a2.rng("x").random() == pytest.approx(first)

    def test_crashed_actor_does_not_send(self):
        env = self._env()
        a = Echo(env, "a")
        b = Echo(env, "b")
        a.crash()
        a.send("b", "msg")
        env.run()
        assert b.got == []
