"""Tests of message size accounting and batches."""

from repro.net.message import Batch, ClientRequest, ClientResponse, Message, next_message_id
from repro.paxos.messages import Decision, Phase2Ring, ProposalValue, RetransmitReply, SKIP


class TestMessageSizes:
    def test_base_message_size_includes_overhead(self):
        assert Message(payload_bytes=0).size_bytes == Message.OVERHEAD_BYTES
        assert Message(payload_bytes=100).size_bytes == 100 + Message.OVERHEAD_BYTES

    def test_client_request_and_response(self):
        request = ClientRequest(payload_bytes=512, client="c1", command="x")
        assert request.size_bytes > 512
        response = ClientResponse(payload_bytes=32, request_id=request.request_id)
        assert response.size_bytes > 32

    def test_message_ids_are_unique(self):
        assert next_message_id() != next_message_id()


class TestBatch:
    def test_batch_size_accumulates_members(self):
        batch = Batch(messages=[Message(payload_bytes=100), Message(payload_bytes=200)])
        assert len(batch) == 2
        assert batch.payload_bytes == sum(m.size_bytes for m in batch)

    def test_append_updates_size(self):
        batch = Batch()
        before = batch.size_bytes
        batch.append(Message(payload_bytes=500))
        assert batch.size_bytes > before
        assert len(batch) == 1


class TestPaxosMessageSizes:
    def test_phase2_carries_value_payload(self):
        value = ProposalValue(payload=b"x", size_bytes=4096)
        message = Phase2Ring(ring_id=0, instance=1, ballot=1, value=value)
        assert message.payload_bytes == 4096

    def test_skip_phase2_has_no_payload(self):
        skip = ProposalValue(payload=SKIP, size_bytes=0)
        message = Phase2Ring(ring_id=0, instance=1, ballot=1, value=skip, span=10)
        assert message.payload_bytes == 0
        assert message.last_instance == 10

    def test_with_vote_preserves_fields_and_appends(self):
        value = ProposalValue(payload=b"x", size_bytes=10)
        message = Phase2Ring(ring_id=3, instance=7, ballot=2, value=value, votes=("a",), origin="a", span=1)
        voted = message.with_vote("b")
        assert voted.votes == ("a", "b")
        assert voted.instance == 7 and voted.ring_id == 3 and voted.origin == "a"

    def test_decision_value_charged_only_when_carried(self):
        value = ProposalValue(payload=b"x", size_bytes=2048)
        carried = Decision(ring_id=0, instance=1, value=value, carries_value=True)
        bare = carried.without_value()
        assert carried.payload_bytes == 2048
        assert bare.payload_bytes == 0
        assert bare.value is value  # value object retained for local learning

    def test_retransmit_reply_size_sums_values(self):
        values = [(i, ProposalValue(payload=b"x", size_bytes=100)) for i in range(5)]
        reply = RetransmitReply(ring_id=0, decided=values)
        assert reply.payload_bytes == 500

    def test_skip_sentinel_identity(self):
        assert ProposalValue(payload=SKIP, size_bytes=0).is_skip()
        assert not ProposalValue(payload="SKIP", size_bytes=0).is_skip()
