"""Property tests: cached wire sizes equal their recomputed definitions.

``size_bytes`` is cached at construction everywhere on the message plane
(and maintained incrementally by ``Batch.append``); these properties pin the
cache to the recomputed definition for arbitrary nested shapes:

* a ``Batch`` — possibly containing batches — always reports framing
  overhead plus the sum of its members' wire sizes, however it was built
  (constructor, appends, or a mix);
* a ``ProposalValue`` wrapping ``PackedValues`` built the way the
  coordinator packs instances always reports the sum of its leaf values'
  sizes, packs-of-packs included.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.packing import iter_values
from repro.net.message import Batch, ClientRequest, ClientResponse, Message
from repro.paxos.messages import ProposalValue
from repro.ringpaxos.coordinator import PackedValues

#: Payload sizes from empty to the 32 KB client batching ceiling.
payload_sizes = st.integers(min_value=0, max_value=32_768)

leaf_messages = st.one_of(
    payload_sizes.map(lambda n: Message(payload_bytes=n)),
    payload_sizes.map(lambda n: ClientRequest(payload_bytes=n, client="c", command="x")),
    payload_sizes.map(lambda n: ClientResponse(payload_bytes=n, request_id=1)),
)

#: Batches of batches, up to three levels deep.
nested_batches = st.recursive(
    leaf_messages,
    lambda children: st.lists(children, max_size=5).map(lambda ms: Batch(messages=ms)),
    max_leaves=25,
)


def recomputed_size(message: Message) -> int:
    """The pre-caching definition: framing + recursive member sum."""
    if isinstance(message, Batch):
        return Message.OVERHEAD_BYTES + sum(recomputed_size(m) for m in message.messages)
    return message.payload_bytes + type(message).OVERHEAD_BYTES


@given(message=nested_batches)
@settings(max_examples=200)
def test_cached_size_equals_recomputed_definition(message):
    assert message.size_bytes == recomputed_size(message)


@given(members=st.lists(nested_batches, max_size=6), extra=st.lists(leaf_messages, max_size=4))
@settings(max_examples=200)
def test_append_keeps_cache_equal_to_definition(members, extra):
    batch = Batch(messages=list(members))
    assert batch.size_bytes == recomputed_size(batch)
    for message in extra:
        batch.append(message)
        assert batch.size_bytes == recomputed_size(batch)


# --------------------------------------------------------------- PackedValues
def _pack(values):
    """Pack values exactly like the coordinator: size is the member sum."""
    return ProposalValue(
        payload=PackedValues(values=list(values)),
        size_bytes=sum(v.size_bytes for v in values),
        proposer="coord",
        proposal_id=0,
    )


plain_values = st.builds(
    ProposalValue,
    payload=st.just("cmd"),
    size_bytes=payload_sizes,
    proposer=st.just("p0"),
    proposal_id=st.integers(min_value=0, max_value=1 << 20),
)

#: Packs of packs, mirroring what re-proposed repaired instances can produce.
nested_packs = st.recursive(
    plain_values,
    lambda children: st.lists(children, min_size=1, max_size=5).map(_pack),
    max_leaves=25,
)


@given(value=nested_packs)
@settings(max_examples=200)
def test_packed_value_size_is_sum_of_leaves(value):
    leaves = list(iter_values(value))
    assert value.size_bytes == sum(leaf.size_bytes for leaf in leaves)
