"""Tests of the ring overlay (membership, successors, quorums)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.ring import RingMember, RingOverlay


def make_ring(n=3, coordinator=None):
    members = [RingMember(name=f"p{i}", proposer=True, acceptor=True, learner=True) for i in range(n)]
    return RingOverlay(0, members, coordinator=coordinator)


class TestConstruction:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            RingOverlay(0, [])

    def test_requires_an_acceptor(self):
        members = [RingMember(name="p0", learner=True)]
        with pytest.raises(ValueError):
            RingOverlay(0, members)

    def test_member_needs_a_role(self):
        with pytest.raises(ValueError):
            RingMember(name="p0")

    def test_duplicate_names_rejected(self):
        members = [RingMember(name="p0", acceptor=True), RingMember(name="p0", acceptor=True)]
        with pytest.raises(ValueError):
            RingOverlay(0, members)

    def test_default_coordinator_is_first_acceptor(self):
        members = [
            RingMember(name="l0", learner=True, acceptor=False, proposer=False),
            RingMember(name="a0", acceptor=True),
            RingMember(name="a1", acceptor=True),
        ]
        overlay = RingOverlay(1, members)
        assert overlay.coordinator == "a0"

    def test_coordinator_must_be_acceptor(self):
        members = [
            RingMember(name="l0", learner=True),
            RingMember(name="a0", acceptor=True),
        ]
        with pytest.raises(ValueError):
            RingOverlay(0, members, coordinator="l0")

    def test_role_lists(self):
        members = [
            RingMember(name="p", proposer=True),
            RingMember(name="a", acceptor=True),
            RingMember(name="l", learner=True),
        ]
        overlay = RingOverlay(0, members)
        assert overlay.proposers == ["p"]
        assert overlay.acceptors == ["a"]
        assert overlay.learners == ["l"]
        assert overlay.size == 3


class TestTopology:
    def test_successor_wraps_around(self):
        overlay = make_ring(3)
        assert overlay.successor("p0") == "p1"
        assert overlay.successor("p2") == "p0"

    def test_predecessor(self):
        overlay = make_ring(3)
        assert overlay.predecessor("p0") == "p2"

    def test_distance(self):
        overlay = make_ring(4)
        assert overlay.distance("p0", "p3") == 3
        assert overlay.distance("p3", "p0") == 1
        assert overlay.distance("p1", "p1") == 0

    def test_walk_from_visits_everyone_once(self):
        overlay = make_ring(4)
        walk = overlay.walk_from("p1")
        assert walk == ["p2", "p3", "p0", "p1"]

    def test_contains(self):
        overlay = make_ring(2)
        assert "p0" in overlay
        assert "zz" not in overlay


class TestQuorums:
    def test_majority(self):
        assert make_ring(3).majority() == 2
        assert make_ring(5).majority() == 3
        assert make_ring(1).majority() == 1

    def test_last_acceptor_excludes_coordinator_when_possible(self):
        overlay = make_ring(3, coordinator="p0")
        assert overlay.last_acceptor_for() == "p2"

    def test_last_acceptor_with_learners_at_the_end(self):
        members = [
            RingMember(name="a0", acceptor=True),
            RingMember(name="a1", acceptor=True),
            RingMember(name="l0", learner=True),
        ]
        overlay = RingOverlay(0, members, coordinator="a0")
        assert overlay.last_acceptor_for() == "a1"

    def test_single_acceptor_is_its_own_last_acceptor(self):
        members = [RingMember(name="a0", acceptor=True), RingMember(name="l0", learner=True)]
        overlay = RingOverlay(0, members)
        assert overlay.last_acceptor_for() == "a0"

    def test_with_coordinator_copy(self):
        overlay = make_ring(3)
        other = overlay.with_coordinator("p1")
        assert other.coordinator == "p1"
        assert overlay.coordinator == "p0"


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_walk_covers_every_member_exactly_once(n):
    overlay = make_ring(n)
    for start in overlay.member_names:
        walk = overlay.walk_from(start)
        assert sorted(walk) == sorted(overlay.member_names)
        assert walk[-1] == start


@given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=9))
@settings(max_examples=30, deadline=None)
def test_successor_predecessor_inverse(n, idx):
    overlay = make_ring(n)
    name = f"p{idx % n}"
    assert overlay.predecessor(overlay.successor(name)) == name
