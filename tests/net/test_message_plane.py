"""Message-plane regressions: cached sizes and the network's size fallback.

``Batch.size_bytes`` used to be a property re-summing its members on every
access (O(n) per network send); it is now cached at construction and
maintained incrementally by ``append``.  The tests here pin the definition
(framing overhead + sum of member wire sizes) and — the part that matters —
that the simulated network charges *identical* transmission time for a batch
and for a plain message of the same recomputed wire size.

The second half covers the per-send fallback for payloads without a
``size_bytes`` attribute: charged the default size, memoized by class so the
``AttributeError`` is paid once per type rather than once per send.
"""

from __future__ import annotations

from repro.net.message import Batch, ClientRequest, Message
from repro.sim.actor import Actor, Environment
from repro.sim.network import Network, message_size
from repro.sim.topology import single_datacenter


class _Recorder(Actor):
    """Sink recording ``(delivery_time, message)`` pairs."""

    def __init__(self, env, name, site="dc1"):
        super().__init__(env, name, site)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.env.simulator.now, message))


def _pair(seed=0):
    env = Environment(seed=seed)
    sender = _Recorder(env, "a")
    receiver = _Recorder(env, "b")
    network = Network(env, single_datacenter())
    return env, network, sender, receiver


def _recomputed_wire_size(message: Message) -> int:
    """The pre-caching definition of a message's wire size."""
    if isinstance(message, Batch):
        return Message.OVERHEAD_BYTES + sum(
            _recomputed_wire_size(m) for m in message.messages
        )
    return message.payload_bytes + type(message).OVERHEAD_BYTES


class TestBatchSizeCaching:
    def test_cached_size_matches_recomputed_definition(self):
        batch = Batch(messages=[ClientRequest(payload_bytes=100), Message(payload_bytes=7)])
        assert batch.size_bytes == _recomputed_wire_size(batch)

    def test_append_maintains_the_cache(self):
        batch = Batch()
        for size in (0, 1, 512, 32_768):
            batch.append(ClientRequest(payload_bytes=size))
            assert batch.size_bytes == _recomputed_wire_size(batch)
            assert batch.payload_bytes == batch.size_bytes - Message.OVERHEAD_BYTES

    def test_network_charges_identical_transmission_time(self):
        # A batch and a plain message of the same recomputed wire size must
        # produce byte-identical delivery timestamps: transmission time is
        # charged from the cached size, and the cache must equal the old
        # re-summed definition.
        batch = Batch(messages=[ClientRequest(payload_bytes=900), Message(payload_bytes=31)])
        env_a, net_a, _, recv_a = _pair(seed=1)
        net_a.send("a", "b", batch)
        env_a.simulator.run()

        equivalent = Message(payload_bytes=_recomputed_wire_size(batch) - Message.OVERHEAD_BYTES)
        assert equivalent.size_bytes == batch.size_bytes
        env_b, net_b, _, recv_b = _pair(seed=1)
        net_b.send("a", "b", equivalent)
        env_b.simulator.run()

        assert len(recv_a.received) == len(recv_b.received) == 1
        assert recv_a.received[0][0] == recv_b.received[0][0]

    def test_mutating_members_after_construction_does_not_resum(self):
        # The cache is intentionally not invalidated by out-of-band member
        # mutation: the hot path relies on construction + append being the
        # only writers.
        inner = ClientRequest(payload_bytes=10)
        batch = Batch(messages=[inner])
        cached = batch.size_bytes
        inner.payload_bytes = 9999
        assert batch.size_bytes == cached


class _Unsized:
    """A payload without a ``size_bytes`` attribute."""


class _SelfSized:
    size_bytes = 500


class TestDefaultSizeFallback:
    def test_message_size_default_and_memo(self):
        from repro.sim import network as network_mod

        network_mod._UNSIZED_TYPES.discard(_Unsized)
        assert message_size(_Unsized()) == 128
        assert _Unsized in network_mod._UNSIZED_TYPES
        # Second call takes the memoized path (same answer, no exception).
        assert message_size(_Unsized()) == 128
        assert message_size(_Unsized(), default=64) == 64

    def test_message_size_prefers_declared_size(self):
        assert message_size(_SelfSized()) == 500
        assert message_size(Message(payload_bytes=100)) == 148

    def test_network_charges_default_size_for_unsized_payload(self):
        # An unsized payload is charged exactly like a message whose wire
        # size equals the 128-byte default.
        env_a, net_a, _, recv_a = _pair(seed=2)
        net_a.send("a", "b", _Unsized())
        env_a.simulator.run()

        stand_in = Message(payload_bytes=128 - Message.OVERHEAD_BYTES)
        assert stand_in.size_bytes == 128
        env_b, net_b, _, recv_b = _pair(seed=2)
        net_b.send("a", "b", stand_in)
        env_b.simulator.run()

        assert len(recv_a.received) == len(recv_b.received) == 1
        assert recv_a.received[0][0] == recv_b.received[0][0]
        # The miss was memoized per network instance.
        assert _Unsized in net_a._unsized_types

    def test_network_memoized_path_repeats_the_same_charge(self):
        env, net, _, recv = _pair(seed=3)
        net.send("a", "b", _Unsized())
        env.simulator.run()
        first = recv.received[0][0]
        net.send("a", "b", _Unsized())
        env.simulator.run()
        assert len(recv.received) == 2
        # Same charge both times; the second send took the memoized branch.
        assert recv.received[1][0] >= first
